#include "apps/association_rules.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace ivt::apps {

std::string AssociationRule::to_display_string() const {
  std::string out = "IF ";
  for (std::size_t i = 0; i < antecedents.size(); ++i) {
    if (i > 0) out += " AND ";
    out += antecedents[i].column + "=" + antecedents[i].value;
  }
  out += " THEN " + consequent.column + "=" + consequent.value;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  [sup=%.3f conf=%.3f lift=%.2f]", support,
                confidence, lift);
  out += buf;
  return out;
}

namespace {

using ItemSet = std::vector<std::size_t>;  // sorted item ids

struct ItemSpace {
  std::vector<Item> items;                 // id -> item
  std::map<Item, std::size_t> id_of;
};

/// Transactions as sorted item-id vectors.
std::vector<ItemSet> build_transactions(const dataflow::Table& state,
                                        const MinerConfig& config,
                                        ItemSpace& space) {
  const auto& schema = state.schema();
  std::vector<bool> use(schema.size(), true);
  for (std::size_t c = 0; c < schema.size(); ++c) {
    for (const std::string& ignored : config.ignore_columns) {
      if (schema.field(c).name == ignored) use[c] = false;
    }
  }
  std::vector<ItemSet> transactions;
  transactions.reserve(state.num_rows());
  state.for_each_row([&](const dataflow::RowView& row) {
    ItemSet txn;
    for (std::size_t c = 0; c < schema.size(); ++c) {
      if (!use[c] || row.is_null(c)) continue;
      Item item{schema.field(c).name, row.value_at(c).to_display_string()};
      auto [it, inserted] =
          space.id_of.try_emplace(std::move(item), space.items.size());
      if (inserted) space.items.push_back(it->first);
      txn.push_back(it->second);
    }
    std::sort(txn.begin(), txn.end());
    transactions.push_back(std::move(txn));
  });
  return transactions;
}

bool contains_all(const ItemSet& txn, const ItemSet& subset) {
  return std::includes(txn.begin(), txn.end(), subset.begin(), subset.end());
}

}  // namespace

std::vector<AssociationRule> mine_rules(const dataflow::Table& state,
                                        const MinerConfig& config) {
  ItemSpace space;
  const std::vector<ItemSet> transactions =
      build_transactions(state, config, space);
  const double n = static_cast<double>(transactions.size());
  if (transactions.empty()) return {};
  const std::size_t min_count = static_cast<std::size_t>(
      std::ceil(config.min_support * n));

  // Level 1: frequent single items.
  std::map<ItemSet, std::size_t> frequent;  // itemset -> count
  {
    std::vector<std::size_t> counts(space.items.size(), 0);
    for (const ItemSet& txn : transactions) {
      for (std::size_t id : txn) ++counts[id];
    }
    for (std::size_t id = 0; id < counts.size(); ++id) {
      if (counts[id] >= min_count && counts[id] > 0) {
        frequent.emplace(ItemSet{id}, counts[id]);
      }
    }
  }

  std::map<ItemSet, std::size_t> all_frequent = frequent;
  std::map<ItemSet, std::size_t> level = frequent;

  for (std::size_t k = 2;
       k <= config.max_itemset_size && !level.empty(); ++k) {
    // Candidate generation: join sets sharing a (k-2)-prefix.
    std::set<ItemSet> candidates;
    for (auto a = level.begin(); a != level.end(); ++a) {
      for (auto b = std::next(a); b != level.end(); ++b) {
        const ItemSet& sa = a->first;
        const ItemSet& sb = b->first;
        if (!std::equal(sa.begin(), sa.end() - 1, sb.begin(), sb.end() - 1)) {
          continue;
        }
        ItemSet candidate = sa;
        candidate.push_back(sb.back());
        std::sort(candidate.begin(), candidate.end());
        // Prune: all (k-1)-subsets must be frequent.
        bool ok = true;
        for (std::size_t drop = 0; drop < candidate.size() && ok; ++drop) {
          ItemSet subset;
          for (std::size_t i = 0; i < candidate.size(); ++i) {
            if (i != drop) subset.push_back(candidate[i]);
          }
          ok = level.contains(subset);
        }
        if (ok) candidates.insert(std::move(candidate));
      }
    }
    // Support counting.
    std::map<ItemSet, std::size_t> next_level;
    for (const ItemSet& candidate : candidates) {
      std::size_t count = 0;
      for (const ItemSet& txn : transactions) {
        if (contains_all(txn, candidate)) ++count;
      }
      if (count >= min_count) next_level.emplace(candidate, count);
    }
    for (const auto& [set, count] : next_level) {
      all_frequent.emplace(set, count);
    }
    level = std::move(next_level);
  }

  // Rule generation: single-item consequents.
  auto consequent_allowed = [&](const Item& item) {
    if (config.consequent_columns.empty()) return true;
    return std::find(config.consequent_columns.begin(),
                     config.consequent_columns.end(),
                     item.column) != config.consequent_columns.end();
  };
  std::vector<AssociationRule> rules;
  for (const auto& [set, count] : all_frequent) {
    if (set.size() < 2) continue;
    for (std::size_t pick = 0; pick < set.size(); ++pick) {
      const Item& consequent = space.items[set[pick]];
      if (!consequent_allowed(consequent)) continue;
      ItemSet antecedent;
      for (std::size_t i = 0; i < set.size(); ++i) {
        if (i != pick) antecedent.push_back(set[i]);
      }
      const auto ant_it = all_frequent.find(antecedent);
      if (ant_it == all_frequent.end()) continue;
      const double confidence = static_cast<double>(count) /
                                static_cast<double>(ant_it->second);
      if (confidence < config.min_confidence) continue;
      const auto cons_it = all_frequent.find(ItemSet{set[pick]});
      const double cons_support =
          cons_it != all_frequent.end()
              ? static_cast<double>(cons_it->second) / n
              : 0.0;
      AssociationRule rule;
      for (std::size_t id : antecedent) {
        rule.antecedents.push_back(space.items[id]);
      }
      rule.consequent = consequent;
      rule.support = static_cast<double>(count) / n;
      rule.confidence = confidence;
      rule.lift = cons_support > 0.0 ? confidence / cons_support : 0.0;
      rules.push_back(std::move(rule));
    }
  }
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.lift != b.lift) return a.lift > b.lift;
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.support > b.support;
            });
  return rules;
}

}  // namespace ivt::apps
