// Association Rule Mining on the state representation (paper Sec. 4.4).
//
// Each state row is an item-set of (column = value) items; Apriori finds
// frequent item-sets and IF-THEN rules such as
// "IF T < -10 and WiperActivated THEN WiperErrorBlocked".
#pragma once

#include <string>
#include <vector>

#include "dataflow/table.hpp"

namespace ivt::apps {

/// One (column = value) item.
struct Item {
  std::string column;
  std::string value;

  friend bool operator==(const Item&, const Item&) = default;
  friend auto operator<=>(const Item&, const Item&) = default;
};

struct AssociationRule {
  std::vector<Item> antecedents;  ///< IF part
  Item consequent;                ///< THEN part
  double support = 0.0;           ///< P(antecedents ∧ consequent)
  double confidence = 0.0;        ///< P(consequent | antecedents)
  double lift = 0.0;              ///< confidence / P(consequent)

  [[nodiscard]] std::string to_display_string() const;
};

struct MinerConfig {
  double min_support = 0.01;
  double min_confidence = 0.8;
  /// Frequent item-set size cap (antecedents = size - 1).
  std::size_t max_itemset_size = 3;
  /// Only emit rules whose consequent column is in this list (empty =
  /// any). Typical use: restrict to error/outlier columns.
  std::vector<std::string> consequent_columns;
  /// Columns to exclude from item generation (e.g. "t").
  std::vector<std::string> ignore_columns = {"t"};
};

/// Run Apriori over the wide state table. Rules are sorted by descending
/// lift, ties by descending confidence then support.
std::vector<AssociationRule> mine_rules(const dataflow::Table& state,
                                        const MinerConfig& config = {});

}  // namespace ivt::apps
