#include "apps/anomaly.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/schemas.hpp"

namespace ivt::apps {

std::vector<Anomaly> detect_state_anomalies(const dataflow::Table& state,
                                            const AnomalyConfig& config) {
  // Joint state = all non-"t" column values joined; count occurrences.
  std::vector<std::size_t> cols;
  for (std::size_t c = 0; c < state.schema().size(); ++c) {
    if (state.schema().field(c).name != "t") cols.push_back(c);
  }
  std::map<std::string, std::size_t> counts;
  std::map<std::string, std::int64_t> first_seen;
  const std::size_t t_col = state.schema().require("t");
  state.for_each_row([&](const dataflow::RowView& row) {
    std::string key;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) key += '|';
      key += row.is_null(cols[i]) ? "-"
                                  : row.value_at(cols[i]).to_display_string();
    }
    auto [it, inserted] = counts.try_emplace(std::move(key), 0);
    if (inserted) first_seen[it->first] = row.int64_at(t_col);
    ++it->second;
  });

  const double n = static_cast<double>(state.num_rows());
  std::vector<Anomaly> anomalies;
  if (n <= 0.0) return anomalies;
  for (const auto& [key, count] : counts) {
    const double freq = static_cast<double>(count) / n;
    if (freq > config.max_state_frequency) continue;
    Anomaly a;
    a.t_ns = first_seen.at(key);
    a.signal = "<joint-state>";
    a.description = key;
    a.severity = -std::log2(freq);
    a.occurrences = count;
    anomalies.push_back(std::move(a));
  }
  std::sort(anomalies.begin(), anomalies.end(),
            [](const Anomaly& a, const Anomaly& b) {
              return a.severity > b.severity;
            });
  if (anomalies.size() > config.top_k) anomalies.resize(config.top_k);
  return anomalies;
}

std::vector<Anomaly> detect_element_anomalies(const dataflow::Table& krep,
                                              const AnomalyConfig& config) {
  const std::size_t t_col = krep.schema().require("t");
  const std::size_t sid_col = krep.schema().require("s_id");
  const std::size_t value_col = krep.schema().require("value");
  const std::size_t num_col = krep.schema().require("v_num");
  const std::size_t kind_col = krep.schema().require("element_kind");

  std::vector<Anomaly> anomalies;
  krep.for_each_row([&](const dataflow::RowView& row) {
    const std::string& kind = row.string_at(kind_col);
    Anomaly a;
    a.t_ns = row.int64_at(t_col);
    a.signal = row.string_at(sid_col);
    a.description = row.string_at(value_col);
    if (kind == ivt::core::kElementOutlier) {
      // Outliers: severity grows with the magnitude of the value.
      const double v = row.is_null(num_col) ? 0.0 : row.float64_at(num_col);
      a.severity = 10.0 + std::log2(1.0 + std::fabs(v));
    } else if (kind == ivt::core::kElementValidity) {
      a.severity = 5.0;
    } else if (kind == ivt::core::kElementExtension &&
               a.description.rfind("violation", 0) == 0) {
      const double gap = row.is_null(num_col) ? 0.0 : row.float64_at(num_col);
      a.severity = 7.0 + std::log2(1.0 + gap);
    } else {
      return;  // regular state element
    }
    anomalies.push_back(std::move(a));
  });
  std::sort(anomalies.begin(), anomalies.end(),
            [](const Anomaly& a, const Anomaly& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              return a.t_ns < b.t_ns;
            });
  if (anomalies.size() > config.top_k) anomalies.resize(config.top_k);
  return anomalies;
}

ivt::core::ExtensionRule to_extension_rule(const Anomaly& anomaly,
                                           double center,
                                           double min_abs_dev) {
  ivt::core::ExtensionRule rule;
  rule.name = "anomaly_like";
  rule.signal_pattern = anomaly.signal;
  rule.apply = [center, min_abs_dev](const ivt::core::ConstraintContext& ctx,
                                     ivt::core::ExtensionEmitter& out) {
    const ivt::core::SequenceData& d = ctx.data;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (d.has_num[i] == 0) continue;
      const double dev = std::fabs(d.v_num[i] - center);
      if (dev >= min_abs_dev) {
        out.emit(d.t[i], d.v_num[i],
                 "similar-anomaly dev=" + std::to_string(dev));
      }
    }
  };
  return rule;
}

}  // namespace ivt::apps
