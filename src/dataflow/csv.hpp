// CSV import/export for tables (results database surrogate).
//
// The paper's pipeline "writes the results to the database"; in this repo
// the sink is a CSV/TSV file. Quoting follows RFC 4180 (quotes doubled,
// fields containing separator/quote/newline quoted).
#pragma once

#include <iosfwd>
#include <string>

#include "dataflow/table.hpp"

namespace ivt::dataflow {

struct CsvOptions {
  char separator = ',';
  bool header = true;
};

/// Write `table` to `out` in logical row order.
void write_csv(const Table& table, std::ostream& out,
               const CsvOptions& options = {});

/// Convenience: write to a file path. Throws std::runtime_error on I/O
/// failure.
void write_csv_file(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

/// Read a CSV with the given schema (header row validated when
/// options.header). Cells parse according to the schema field type; empty
/// cells become null. Throws std::runtime_error on malformed input.
Table read_csv(std::istream& in, const Schema& schema,
               const CsvOptions& options = {},
               std::size_t target_partition_rows = 0);

Table read_csv_file(const std::string& path, const Schema& schema,
                    const CsvOptions& options = {},
                    std::size_t target_partition_rows = 0);

}  // namespace ivt::dataflow
