// Cell value for the ivt::dataflow engine.
//
// A Value is a single cell of a table: null, a 64-bit integer, a double or
// a (byte-)string. Tables store cells in typed columns (see column.hpp);
// Value is the boxed form used at API boundaries (row views, predicates,
// builders) where genericity matters more than locality.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace ivt::dataflow {

/// Type tag for a Value / Column.
enum class ValueType : std::uint8_t {
  Null = 0,  ///< untyped null (only valid as a cell state, not a column type)
  Int64 = 1,
  Float64 = 2,
  String = 3,  ///< also used for raw byte payloads
};

/// Human-readable type name ("null", "int64", "float64", "string").
std::string_view to_string(ValueType type);

/// One boxed cell.
class Value {
 public:
  Value() = default;
  Value(std::int64_t v) : data_(v) {}  // NOLINT(google-explicit-constructor)
  Value(double v) : data_(v) {}        // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT
  Value(std::string_view v) : data_(std::string(v)) {}  // NOLINT
  // Guard against bool silently converting to int64.
  Value(bool) = delete;

  [[nodiscard]] ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  [[nodiscard]] bool is_null() const { return data_.index() == 0; }

  /// Typed accessors. Precondition: type() matches (checked in debug builds
  /// by std::get).
  [[nodiscard]] std::int64_t as_int64() const {
    return std::get<std::int64_t>(data_);
  }
  [[nodiscard]] double as_float64() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(data_);
  }

  /// Numeric view: int64 widened to double. Precondition: numeric type.
  [[nodiscard]] double as_number() const {
    if (type() == ValueType::Int64) return static_cast<double>(as_int64());
    return as_float64();
  }

  /// Render the cell for display / CSV. Null renders as empty string.
  [[nodiscard]] std::string to_display_string() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend auto operator<=>(const Value& a, const Value& b) {
    return a.data_ <=> b.data_;
  }

  /// Stable hash (used by hash joins and group-by).
  [[nodiscard]] std::size_t hash() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> data_;
};

}  // namespace ivt::dataflow
