#include "dataflow/thread_pool.hpp"

#include "errors/error.hpp"
#include "obs/obs.hpp"

namespace ivt::dataflow {

using support::MutexLock;

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
    // Wake workers (to drain and exit) and every submitter blocked on an
    // admission slot (to observe stop_ and throw instead of deadlocking),
    // then wait for the submitters to leave the critical section so the
    // mutex/condvars are not destroyed under them.
    cv_task_.notify_all();
    cv_slot_.notify_all();
    while (pending_submitters_ > 0) cv_shutdown_.wait(lock);
  }
  for (std::thread& t : threads_) t.join();
}

std::size_t ThreadPool::queue_depth() const {
  const MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    // Inline mode: nobody would ever drain the queue.
    OBS_COUNT("pool.tasks_executed", 1);
    run_task(task);
    return;
  }
  {
    const MutexLock lock(mutex_);
    if (stop_) {
      IVT_THROW(errors::Category::Internal,
                "ThreadPool::submit on a stopping pool");
    }
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  OBS_GAUGE_ADD("pool.queue_depth", 1);
  cv_task_.notify_one();
}

void ThreadPool::submit_bounded(std::function<void()> task, std::size_t limit) {
  if (limit == 0) limit = 1;
  if (threads_.empty()) {
    // Inline mode: the queue is always empty, so at most the one task we
    // are about to run is ever in flight — the bound holds for any limit.
    OBS_COUNT("pool.tasks_executed", 1);
    run_task(task);
    return;
  }
  MutexLock lock(mutex_);
  ++pending_submitters_;
  while (!stop_ && in_flight_ >= limit) {
    if (!queue_.empty()) {
      // Window full but work is queued: help drain it rather than sleep,
      // so a slow producer thread is never pure overhead.
      std::function<void()> helped = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      OBS_GAUGE_ADD("pool.queue_depth", -1);
      OBS_COUNT("pool.tasks_executed", 1);
      OBS_COUNT("pool.tasks_helped", 1);
      run_task(helped);
      lock.lock();
      if (--in_flight_ == 0) cv_idle_.notify_all();
      continue;
    }
    cv_slot_.wait(lock);
  }
  --pending_submitters_;
  if (stop_) {
    // The destructor is waiting for us in cv_shutdown_; workers only run
    // what is already queued, so pushing now could strand the task.
    cv_shutdown_.notify_all();
    IVT_THROW(errors::Category::Internal,
              "ThreadPool destroyed while submit_bounded was pending");
  }
  queue_.push_back(std::move(task));
  ++in_flight_;
  lock.unlock();
  OBS_GAUGE_ADD("pool.queue_depth", 1);
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  {
    MutexLock lock(mutex_);
    while (in_flight_ != 0) cv_idle_.wait(lock);
  }
  rethrow_if_failed();
}

void ThreadPool::help_until_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    OBS_GAUGE_ADD("pool.queue_depth", -1);
    OBS_COUNT("pool.tasks_executed", 1);
    OBS_COUNT("pool.tasks_helped", 1);
    run_task(task);
    lock.lock();
    cv_slot_.notify_all();
    if (--in_flight_ == 0) {
      cv_idle_.notify_all();
      lock.unlock();
      rethrow_if_failed();
      return;
    }
  }
  // Queue drained; a worker may still be running the final tasks.
  while (in_flight_ != 0) cv_idle_.wait(lock);
  lock.unlock();
  rethrow_if_failed();
}

std::size_t ThreadPool::tasks_failed() const {
  const MutexLock lock(mutex_);
  return tasks_failed_;
}

void ThreadPool::run_task(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    const MutexLock lock(mutex_);
    ++tasks_failed_;
    OBS_COUNT("pool.tasks_failed", 1);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::rethrow_if_failed() {
  std::exception_ptr error;
  {
    const MutexLock lock(mutex_);
    if (!first_error_) return;
    std::swap(error, first_error_);
  }
  std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
#if IVT_OBS_ENABLED
      const std::int64_t wait_start = obs::trace_now_ns();
#endif
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_task_.wait(lock);
      if (queue_.empty()) return;  // stop_ was set and the queue is drained
      task = std::move(queue_.front());
      queue_.pop_front();
#if IVT_OBS_ENABLED
      OBS_COUNT("pool.idle_ns", obs::trace_now_ns() - wait_start);
#endif
    }
    OBS_GAUGE_ADD("pool.queue_depth", -1);
#if IVT_OBS_ENABLED
    const std::int64_t task_start = obs::trace_now_ns();
#endif
    run_task(task);
#if IVT_OBS_ENABLED
    OBS_COUNT("pool.busy_ns", obs::trace_now_ns() - task_start);
#endif
    OBS_COUNT("pool.tasks_executed", 1);
    {
      const MutexLock lock(mutex_);
      cv_slot_.notify_all();
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace ivt::dataflow
