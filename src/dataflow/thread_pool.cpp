#include "dataflow/thread_pool.hpp"

#include "obs/obs.hpp"

namespace ivt::dataflow {

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    // Inline mode: nobody would ever drain the queue.
    OBS_COUNT("pool.tasks_executed", 1);
    run_task(task);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  OBS_GAUGE_ADD("pool.queue_depth", 1);
  cv_task_.notify_one();
}

void ThreadPool::submit_bounded(std::function<void()> task, std::size_t limit) {
  if (limit == 0) limit = 1;
  if (threads_.empty()) {
    // Inline mode: the queue is always empty, so at most the one task we
    // are about to run is ever in flight — the bound holds for any limit.
    OBS_COUNT("pool.tasks_executed", 1);
    run_task(task);
    return;
  }
  std::unique_lock lock(mutex_);
  while (in_flight_ >= limit) {
    if (!queue_.empty()) {
      // Window full but work is queued: help drain it rather than sleep,
      // so a slow producer thread is never pure overhead.
      std::function<void()> helped = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      OBS_GAUGE_ADD("pool.queue_depth", -1);
      OBS_COUNT("pool.tasks_executed", 1);
      OBS_COUNT("pool.tasks_helped", 1);
      run_task(helped);
      lock.lock();
      if (--in_flight_ == 0) cv_idle_.notify_all();
      continue;
    }
    cv_slot_.wait(lock, [&] { return in_flight_ < limit || !queue_.empty(); });
  }
  queue_.push_back(std::move(task));
  ++in_flight_;
  lock.unlock();
  OBS_GAUGE_ADD("pool.queue_depth", 1);
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  }
  rethrow_if_failed();
}

void ThreadPool::help_until_idle() {
  std::unique_lock lock(mutex_);
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    OBS_GAUGE_ADD("pool.queue_depth", -1);
    OBS_COUNT("pool.tasks_executed", 1);
    OBS_COUNT("pool.tasks_helped", 1);
    run_task(task);
    lock.lock();
    cv_slot_.notify_all();
    if (--in_flight_ == 0) {
      cv_idle_.notify_all();
      lock.unlock();
      rethrow_if_failed();
      return;
    }
  }
  // Queue drained; a worker may still be running the final tasks.
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  lock.unlock();
  rethrow_if_failed();
}

std::size_t ThreadPool::tasks_failed() const {
  std::lock_guard lock(mutex_);
  return tasks_failed_;
}

void ThreadPool::run_task(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    std::lock_guard lock(mutex_);
    ++tasks_failed_;
    OBS_COUNT("pool.tasks_failed", 1);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::rethrow_if_failed() {
  std::exception_ptr error;
  {
    std::lock_guard lock(mutex_);
    if (!first_error_) return;
    std::swap(error, first_error_);
  }
  std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
#if IVT_OBS_ENABLED
      const std::int64_t wait_start = obs::trace_now_ns();
#endif
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
#if IVT_OBS_ENABLED
      OBS_COUNT("pool.idle_ns", obs::trace_now_ns() - wait_start);
#endif
    }
    OBS_GAUGE_ADD("pool.queue_depth", -1);
#if IVT_OBS_ENABLED
    const std::int64_t task_start = obs::trace_now_ns();
#endif
    run_task(task);
#if IVT_OBS_ENABLED
    OBS_COUNT("pool.busy_ns", obs::trace_now_ns() - task_start);
#endif
    OBS_COUNT("pool.tasks_executed", 1);
    {
      std::lock_guard lock(mutex_);
      cv_slot_.notify_all();
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace ivt::dataflow
