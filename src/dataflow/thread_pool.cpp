#include "dataflow/thread_pool.hpp"

#include <algorithm>

namespace ivt::dataflow {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(num_threads, 1);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::help_until_idle() {
  std::unique_lock lock(mutex_);
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
    if (--in_flight_ == 0) {
      cv_idle_.notify_all();
      return;
    }
  }
  // Queue drained; a worker may still be running the final tasks.
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace ivt::dataflow
