#include "dataflow/ops.hpp"

#include "errors/error.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace ivt::dataflow {

namespace {

/// Hashable, comparable multi-column key (boxed; join/group keys are small).
struct RowKey {
  std::vector<Value> parts;

  friend bool operator==(const RowKey& a, const RowKey& b) {
    return a.parts == b.parts;
  }
};

struct RowKeyHash {
  std::size_t operator()(const RowKey& k) const {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : k.parts) {
      h ^= v.hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

RowKey make_key(const Partition& p, std::size_t row,
                const std::vector<std::size_t>& cols) {
  RowKey key;
  key.parts.reserve(cols.size());
  for (std::size_t c : cols) key.parts.push_back(p.columns[c].value_at(row));
  return key;
}

std::vector<std::size_t> resolve_columns(
    const Schema& schema, const std::vector<std::string>& names) {
  std::vector<std::size_t> idx;
  idx.reserve(names.size());
  for (const std::string& name : names) idx.push_back(schema.require(name));
  return idx;
}

void append_row(Partition& dst, const Partition& src, std::size_t row) {
  for (std::size_t c = 0; c < src.columns.size(); ++c) {
    dst.columns[c].append_from(src.columns[c], row);
  }
}

/// Three-way compare of two cells with nulls-first semantics.
int compare_cells(const Column& a, std::size_t ra, const Column& b,
                  std::size_t rb) {
  const bool na = a.is_null(ra);
  const bool nb = b.is_null(rb);
  if (na || nb) return static_cast<int>(nb) - static_cast<int>(na);
  const Value va = a.value_at(ra);
  const Value vb = b.value_at(rb);
  if (va == vb) return 0;
  return va < vb ? -1 : 1;
}

}  // namespace

Table filter(Engine& engine, const Table& in, const RowPredicate& pred,
             const std::string& stage_name) {
  return engine.map_partitions(
      stage_name, in, in.schema(),
      [&](const Partition& p, std::size_t) {
        Partition out = Table::make_partition(in.schema());
        const std::size_t n = p.num_rows();
        for (std::size_t r = 0; r < n; ++r) {
          if (pred(RowView(&in.schema(), &p, r))) append_row(out, p, r);
        }
        return out;
      });
}

Table project(Engine& engine, const Table& in,
              const std::vector<std::string>& columns) {
  const Schema out_schema = in.schema().select(columns);
  const std::vector<std::size_t> src_cols =
      resolve_columns(in.schema(), columns);
  return engine.map_partitions(
      "project", in, out_schema,
      [&](const Partition& p, std::size_t) {
        Partition out = Table::make_partition(out_schema);
        const std::size_t n = p.num_rows();
        for (std::size_t c = 0; c < src_cols.size(); ++c) {
          out.columns[c].reserve(n);
          for (std::size_t r = 0; r < n; ++r) {
            out.columns[c].append_from(p.columns[src_cols[c]], r);
          }
        }
        return out;
      });
}

Table with_column(Engine& engine, const Table& in, const Field& field,
                  const std::function<Value(const RowView&)>& fn,
                  const std::string& stage_name) {
  const Schema out_schema = in.schema().with_field(field);
  return engine.map_partitions(
      stage_name, in, out_schema,
      [&](const Partition& p, std::size_t) {
        Partition out = Table::make_partition(out_schema);
        const std::size_t n = p.num_rows();
        for (std::size_t c = 0; c < p.columns.size(); ++c) {
          out.columns[c].reserve(n);
          for (std::size_t r = 0; r < n; ++r) {
            out.columns[c].append_from(p.columns[c], r);
          }
        }
        Column& added = out.columns.back();
        added.reserve(n);
        for (std::size_t r = 0; r < n; ++r) {
          added.append(fn(RowView(&in.schema(), &p, r)));
        }
        return out;
      });
}

Table map_rows(Engine& engine, const Table& in, const Schema& out_schema,
               const std::function<void(const RowView&, Partition&)>& emit,
               const std::string& stage_name) {
  return engine.map_partitions(
      stage_name, in, out_schema,
      [&](const Partition& p, std::size_t) {
        Partition out = Table::make_partition(out_schema);
        const std::size_t n = p.num_rows();
        for (std::size_t r = 0; r < n; ++r) {
          emit(RowView(&in.schema(), &p, r), out);
        }
        return out;
      });
}

Table hash_join(Engine& engine, const Table& left, const Table& right,
                const std::vector<std::string>& left_keys,
                const std::vector<std::string>& right_keys,
                JoinType type, const std::string& stage_name) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    IVT_THROW(errors::Category::Spec, "hash_join: key lists must be non-empty and "
                                "of equal length");
  }
  const std::vector<std::size_t> lkeys =
      resolve_columns(left.schema(), left_keys);
  const std::vector<std::size_t> rkeys =
      resolve_columns(right.schema(), right_keys);

  // Output schema: left fields + right non-key fields.
  std::vector<std::size_t> right_payload_cols;
  std::vector<Field> out_fields = left.schema().fields();
  for (std::size_t c = 0; c < right.schema().size(); ++c) {
    if (std::find(rkeys.begin(), rkeys.end(), c) != rkeys.end()) continue;
    const Field& f = right.schema().field(c);
    if (left.schema().contains(f.name)) {
      IVT_THROW(errors::Category::Spec, "hash_join: output name clash on '" +
                                  f.name + "'");
    }
    out_fields.push_back(f);
    right_payload_cols.push_back(c);
  }
  const Schema out_schema{std::move(out_fields)};

  // Build side: hash every right row by key. Row ids are (partition, row)
  // flattened in logical order so probe output is deterministic.
  struct RightRef {
    const Partition* partition;
    std::size_t row;
  };
  std::unordered_map<RowKey, std::vector<RightRef>, RowKeyHash> build;
  build.reserve(right.num_rows());
  for (const Partition& p : right.partitions()) {
    const std::size_t n = p.num_rows();
    for (std::size_t r = 0; r < n; ++r) {
      build[make_key(p, r, rkeys)].push_back(RightRef{&p, r});
    }
  }

  return engine.map_partitions(
      stage_name, left, out_schema,
      [&](const Partition& p, std::size_t) {
        Partition out = Table::make_partition(out_schema);
        const std::size_t n = p.num_rows();
        const std::size_t left_width = left.schema().size();
        for (std::size_t r = 0; r < n; ++r) {
          const auto it = build.find(make_key(p, r, lkeys));
          if (it == build.end()) {
            if (type == JoinType::LeftOuter) {
              for (std::size_t c = 0; c < left_width; ++c) {
                out.columns[c].append_from(p.columns[c], r);
              }
              for (std::size_t c = left_width; c < out.columns.size(); ++c) {
                out.columns[c].append_null();
              }
            }
            continue;
          }
          for (const RightRef& ref : it->second) {
            for (std::size_t c = 0; c < left_width; ++c) {
              out.columns[c].append_from(p.columns[c], r);
            }
            for (std::size_t j = 0; j < right_payload_cols.size(); ++j) {
              out.columns[left_width + j].append_from(
                  ref.partition->columns[right_payload_cols[j]], ref.row);
            }
          }
        }
        return out;
      });
}

Table union_all(const Table& a, const Table& b) {
  if (a.schema() != b.schema()) {
    IVT_THROW(errors::Category::Spec, "union_all: schema mismatch (" +
                                a.schema().to_display_string() + " vs " +
                                b.schema().to_display_string() + ")");
  }
  Table out(a.schema());
  auto copy_parts = [&out](const Table& t) {
    for (const Partition& p : t.partitions()) {
      Partition copy = Table::make_partition(t.schema());
      const std::size_t n = p.num_rows();
      for (std::size_t r = 0; r < n; ++r) append_row(copy, p, r);
      out.add_partition(std::move(copy));
    }
  };
  copy_parts(a);
  copy_parts(b);
  return out;
}

Table sort_by(Engine& engine, const Table& in,
              const std::vector<SortKey>& keys,
              const std::string& stage_name) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::size_t> key_cols;
  std::vector<bool> ascending;
  for (const SortKey& k : keys) {
    key_cols.push_back(in.schema().require(k.column));
    ascending.push_back(k.ascending);
  }

  struct Ref {
    const Partition* partition;
    std::size_t row;
    std::size_t logical;  // global position, tie-breaker for stability
  };
  std::vector<Ref> refs;
  refs.reserve(in.num_rows());
  std::size_t logical = 0;
  for (const Partition& p : in.partitions()) {
    const std::size_t n = p.num_rows();
    for (std::size_t r = 0; r < n; ++r) refs.push_back(Ref{&p, r, logical++});
  }

  std::sort(refs.begin(), refs.end(), [&](const Ref& a, const Ref& b) {
    for (std::size_t k = 0; k < key_cols.size(); ++k) {
      const int cmp = compare_cells(a.partition->columns[key_cols[k]], a.row,
                                    b.partition->columns[key_cols[k]], b.row);
      if (cmp != 0) return ascending[k] ? cmp < 0 : cmp > 0;
    }
    return a.logical < b.logical;
  });

  const std::size_t parts = std::max<std::size_t>(
      1, std::min(engine.default_partitions(),
                  refs.empty() ? 1 : refs.size()));
  std::size_t per = (refs.size() + parts - 1) / parts;
  if (per == 0) per = 1;
  TableBuilder builder(in.schema(), per);
  for (const Ref& ref : refs) {
    Partition& dst = builder.current_partition();
    append_row(dst, *ref.partition, ref.row);
    builder.commit_row();
  }
  Table out = builder.build();
  const auto end = std::chrono::steady_clock::now();
  engine.record_stage(
      {stage_name, 1, in.num_rows(), out.num_rows(),
       std::chrono::duration<double, std::milli>(end - start).count()});
  return out;
}

Table distinct(Engine& engine, const Table& in,
               const std::vector<std::string>& key_columns) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<std::size_t> key_cols =
      resolve_columns(in.schema(), key_columns);
  std::unordered_map<RowKey, bool, RowKeyHash> seen;
  TableBuilder builder(in.schema(), 0);
  for (const Partition& p : in.partitions()) {
    const std::size_t n = p.num_rows();
    for (std::size_t r = 0; r < n; ++r) {
      if (seen.emplace(make_key(p, r, key_cols), true).second) {
        Partition& dst = builder.current_partition();
        append_row(dst, p, r);
        builder.commit_row();
      }
    }
  }
  Table out = builder.build().repartitioned(engine.default_partitions());
  const auto end = std::chrono::steady_clock::now();
  engine.record_stage(
      {"distinct", 1, in.num_rows(), out.num_rows(),
       std::chrono::duration<double, std::milli>(end - start).count()});
  return out;
}

namespace {

struct AggState {
  std::size_t count = 0;
  double sum = 0.0;
  Value min;
  Value max;
  Value first;
  Value last;
  bool has_value = false;
};

ValueType agg_output_type(const Aggregation& agg, const Schema& in_schema) {
  switch (agg.op) {
    case AggOp::Count:
      return ValueType::Int64;
    case AggOp::Sum:
    case AggOp::Mean:
      return ValueType::Float64;
    case AggOp::Min:
    case AggOp::Max:
    case AggOp::First:
    case AggOp::Last:
      return in_schema.field(in_schema.require(agg.column)).type;
  }
  return ValueType::Null;
}

}  // namespace

Table group_by(Engine& engine, const Table& in,
               const std::vector<std::string>& key_columns,
               const std::vector<Aggregation>& aggs) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<std::size_t> key_cols =
      resolve_columns(in.schema(), key_columns);
  std::vector<std::size_t> agg_cols;
  for (const Aggregation& a : aggs) {
    agg_cols.push_back(a.op == AggOp::Count
                           ? std::numeric_limits<std::size_t>::max()
                           : in.schema().require(a.column));
  }

  // Phase 1: parallel per-partition partial aggregation.
  struct PartialGroups {
    std::vector<RowKey> order;  // first-occurrence order within partition
    std::unordered_map<RowKey, std::vector<AggState>, RowKeyHash> states;
  };
  std::vector<PartialGroups> partials(in.num_partitions());
  engine.parallel_for(in.num_partitions(), [&](std::size_t pi) {
    const Partition& p = in.partition(pi);
    PartialGroups& pg = partials[pi];
    const std::size_t n = p.num_rows();
    for (std::size_t r = 0; r < n; ++r) {
      RowKey key = make_key(p, r, key_cols);
      auto [it, inserted] =
          pg.states.try_emplace(std::move(key), aggs.size());
      if (inserted) pg.order.push_back(it->first);
      for (std::size_t a = 0; a < aggs.size(); ++a) {
        AggState& st = it->second[a];
        ++st.count;
        if (aggs[a].op == AggOp::Count) continue;
        const Column& col = p.columns[agg_cols[a]];
        if (col.is_null(r)) continue;
        const Value v = col.value_at(r);
        if (v.type() != ValueType::String) st.sum += v.as_number();
        if (!st.has_value) {
          st.min = v;
          st.max = v;
          st.first = v;
          st.has_value = true;
        } else {
          if (v < st.min) st.min = v;
          if (st.max < v) st.max = v;
        }
        st.last = v;
      }
    }
  });

  // Phase 2: deterministic merge in partition order.
  std::vector<RowKey> order;
  std::unordered_map<RowKey, std::vector<AggState>, RowKeyHash> merged;
  for (PartialGroups& pg : partials) {
    for (RowKey& key : pg.order) {
      auto partial_it = pg.states.find(key);
      auto [it, inserted] = merged.try_emplace(key, aggs.size());
      if (inserted) order.push_back(key);
      for (std::size_t a = 0; a < aggs.size(); ++a) {
        AggState& dst = it->second[a];
        const AggState& src = partial_it->second[a];
        dst.count += src.count;
        dst.sum += src.sum;
        if (src.has_value) {
          if (!dst.has_value) {
            dst.min = src.min;
            dst.max = src.max;
            dst.first = src.first;
            dst.last = src.last;
            dst.has_value = true;
          } else {
            if (src.min < dst.min) dst.min = src.min;
            if (dst.max < src.max) dst.max = src.max;
            dst.last = src.last;
          }
        }
      }
    }
  }

  std::vector<Field> out_fields;
  for (std::size_t k = 0; k < key_columns.size(); ++k) {
    out_fields.push_back(in.schema().field(key_cols[k]));
  }
  for (const Aggregation& a : aggs) {
    out_fields.push_back(Field{a.output_name, agg_output_type(a, in.schema())});
  }
  TableBuilder builder(Schema{std::move(out_fields)}, 0);
  for (const RowKey& key : order) {
    const std::vector<AggState>& states = merged.at(key);
    std::vector<Value> row = key.parts;
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      const AggState& st = states[a];
      switch (aggs[a].op) {
        case AggOp::Count:
          row.emplace_back(static_cast<std::int64_t>(st.count));
          break;
        case AggOp::Sum:
          row.emplace_back(st.sum);
          break;
        case AggOp::Mean:
          row.emplace_back(st.count > 0 ? st.sum / static_cast<double>(st.count)
                                        : 0.0);
          break;
        case AggOp::Min:
          row.push_back(st.min);
          break;
        case AggOp::Max:
          row.push_back(st.max);
          break;
        case AggOp::First:
          row.push_back(st.first);
          break;
        case AggOp::Last:
          row.push_back(st.last);
          break;
      }
    }
    builder.append_row(std::move(row));
  }
  Table out = builder.build();
  const auto end = std::chrono::steady_clock::now();
  engine.record_stage(
      {"group_by", in.num_partitions(), in.num_rows(), out.num_rows(),
       std::chrono::duration<double, std::milli>(end - start).count()});
  return out;
}

Table with_lag(Engine& engine, const Table& in,
               const std::vector<std::string>& group_columns,
               const std::string& value_column,
               const std::string& output_name) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<std::size_t> group_cols =
      resolve_columns(in.schema(), group_columns);
  const std::size_t value_col = in.schema().require(value_column);
  const ValueType value_type = in.schema().field(value_col).type;
  const Schema out_schema =
      in.schema().with_field(Field{output_name, value_type});

  std::unordered_map<RowKey, Value, RowKeyHash> last_value;
  TableBuilder builder(out_schema, 0);
  for (const Partition& p : in.partitions()) {
    const std::size_t n = p.num_rows();
    for (std::size_t r = 0; r < n; ++r) {
      Partition& dst = builder.current_partition();
      for (std::size_t c = 0; c < p.columns.size(); ++c) {
        dst.columns[c].append_from(p.columns[c], r);
      }
      const RowKey key = make_key(p, r, group_cols);
      auto it = last_value.find(key);
      dst.columns.back().append(it == last_value.end() ? Value{} : it->second);
      last_value[key] = p.columns[value_col].value_at(r);
      builder.commit_row();
    }
  }
  Table out = builder.build().repartitioned(engine.default_partitions());
  const auto end = std::chrono::steady_clock::now();
  engine.record_stage(
      {"with_lag", 1, in.num_rows(), out.num_rows(),
       std::chrono::duration<double, std::milli>(end - start).count()});
  return out;
}

}  // namespace ivt::dataflow
