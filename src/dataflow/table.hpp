// Partitioned table: the engine's dataset abstraction.
//
// A Table is an ordered list of partitions; each partition stores one
// Column per schema field. Partition order concatenated gives the logical
// row order, which the engine keeps deterministic across runs regardless
// of worker count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dataflow/column.hpp"
#include "dataflow/schema.hpp"

namespace ivt::dataflow {

/// One horizontal slice of a table.
struct Partition {
  std::vector<Column> columns;

  [[nodiscard]] std::size_t num_rows() const {
    return columns.empty() ? 0 : columns.front().size();
  }
};

class Table;

/// Cheap, non-owning view of one row of one partition.
class RowView {
 public:
  RowView(const Schema* schema, const Partition* partition, std::size_t row)
      : schema_(schema), partition_(partition), row_(row) {}

  [[nodiscard]] const Schema& schema() const { return *schema_; }
  [[nodiscard]] std::size_t row_index() const { return row_; }

  [[nodiscard]] bool is_null(std::size_t col) const {
    return partition_->columns[col].is_null(row_);
  }
  [[nodiscard]] std::int64_t int64_at(std::size_t col) const {
    return partition_->columns[col].int64_at(row_);
  }
  [[nodiscard]] double float64_at(std::size_t col) const {
    return partition_->columns[col].float64_at(row_);
  }
  [[nodiscard]] double number_at(std::size_t col) const {
    return partition_->columns[col].number_at(row_);
  }
  [[nodiscard]] const std::string& string_at(std::size_t col) const {
    return partition_->columns[col].string_at(row_);
  }
  [[nodiscard]] Value value_at(std::size_t col) const {
    return partition_->columns[col].value_at(row_);
  }

  /// By-name accessors (resolve via schema; prefer index form in hot loops).
  [[nodiscard]] Value value(std::string_view name) const {
    return value_at(schema_->require(name));
  }

 private:
  const Schema* schema_;
  const Partition* partition_;
  std::size_t row_;
};

/// Partitioned, schema-typed dataset.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Partition> partitions);

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] std::size_t num_partitions() const {
    return partitions_.size();
  }
  [[nodiscard]] const Partition& partition(std::size_t i) const {
    return partitions_[i];
  }
  [[nodiscard]] Partition& mutable_partition(std::size_t i) {
    return partitions_[i];
  }
  [[nodiscard]] const std::vector<Partition>& partitions() const {
    return partitions_;
  }

  [[nodiscard]] std::size_t num_rows() const;
  [[nodiscard]] bool empty() const { return num_rows() == 0; }

  /// Append a partition; its column types must match the schema.
  void add_partition(Partition partition);

  /// Make an empty partition whose columns match `schema`.
  [[nodiscard]] static Partition make_partition(const Schema& schema);

  /// All rows, boxed, in logical order. For tests and small results only.
  [[nodiscard]] std::vector<std::vector<Value>> collect_rows() const;

  /// Visit every row in logical order (single-threaded).
  template <typename Fn>
  void for_each_row(Fn&& fn) const {
    for (const Partition& p : partitions_) {
      const std::size_t n = p.num_rows();
      for (std::size_t r = 0; r < n; ++r) {
        fn(RowView(&schema_, &p, r));
      }
    }
  }

  /// Redistribute rows into `n` evenly sized partitions, preserving order.
  [[nodiscard]] Table repartitioned(std::size_t n) const;

  /// Fixed-width textual rendering of the first `max_rows` rows.
  [[nodiscard]] std::string to_display_string(std::size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Partition> partitions_;
};

/// Row-wise table construction. Rows are packed into partitions of
/// `target_partition_rows` rows (0 = single partition).
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema, std::size_t target_partition_rows = 0);

  /// Append one boxed row. Size must equal the schema width.
  void append_row(std::vector<Value> row);

  /// Direct access to the partition currently being filled, for typed
  /// appends. Caller must append exactly one cell to every column and then
  /// call commit_row().
  [[nodiscard]] Partition& current_partition();
  void commit_row();

  [[nodiscard]] std::size_t rows_appended() const { return rows_appended_; }

  /// Finish and return the table. The builder is left empty.
  [[nodiscard]] Table build();

 private:
  void roll_partition_if_full();

  Schema schema_;
  std::size_t target_partition_rows_;
  std::size_t rows_in_current_ = 0;
  std::size_t rows_appended_ = 0;
  Partition current_;
  Table table_;
};

}  // namespace ivt::dataflow
