// Typed columnar cell storage.
//
// A Column holds all cells of one field within one partition. Cells are
// stored in a dense typed vector plus a validity mask, so hot row-wise
// kernels (interpretation, reduction predicates) can read contiguous
// memory instead of chasing boxed variants.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "dataflow/value.hpp"

namespace ivt::dataflow {

class Column {
 public:
  Column() : Column(ValueType::Null) {}
  explicit Column(ValueType type);

  [[nodiscard]] ValueType type() const { return type_; }
  [[nodiscard]] std::size_t size() const { return valid_.size(); }
  [[nodiscard]] bool empty() const { return valid_.empty(); }

  void reserve(std::size_t n);

  /// Append a boxed value. Nulls are always accepted; non-null values must
  /// match the column type (std::invalid_argument otherwise), except that
  /// an Int64 value is widened into a Float64 column.
  void append(const Value& v);
  void append(Value&& v);

  /// Typed appends (fast path, no boxing).
  void append_int64(std::int64_t v);
  void append_float64(double v);
  void append_string(std::string v);
  void append_null();

  [[nodiscard]] bool is_null(std::size_t i) const { return valid_[i] == 0; }

  /// Typed accessors; undefined for nulls or mismatched type.
  [[nodiscard]] std::int64_t int64_at(std::size_t i) const {
    return std::get<Int64Vec>(data_)[i];
  }
  [[nodiscard]] double float64_at(std::size_t i) const {
    return std::get<Float64Vec>(data_)[i];
  }
  [[nodiscard]] const std::string& string_at(std::size_t i) const {
    return std::get<StringVec>(data_)[i];
  }

  /// Numeric view (int64 widened). Undefined for nulls / string columns.
  [[nodiscard]] double number_at(std::size_t i) const {
    return type_ == ValueType::Int64 ? static_cast<double>(int64_at(i))
                                     : float64_at(i);
  }

  /// Boxed accessor (slow path).
  [[nodiscard]] Value value_at(std::size_t i) const;

  /// Append cell `i` of `src` to this column. Types must match.
  void append_from(const Column& src, std::size_t i);

  /// Direct vector access for vectorized kernels. Precondition: matching
  /// type; nulls still flagged through is_null().
  [[nodiscard]] const std::vector<std::int64_t>& int64_data() const {
    return std::get<Int64Vec>(data_);
  }
  [[nodiscard]] const std::vector<double>& float64_data() const {
    return std::get<Float64Vec>(data_);
  }
  [[nodiscard]] const std::vector<std::string>& string_data() const {
    return std::get<StringVec>(data_);
  }

 private:
  using Int64Vec = std::vector<std::int64_t>;
  using Float64Vec = std::vector<double>;
  using StringVec = std::vector<std::string>;

  [[noreturn]] void throw_type_mismatch(ValueType got) const;

  ValueType type_;
  std::variant<std::monostate, Int64Vec, Float64Vec, StringVec> data_;
  std::vector<std::uint8_t> valid_;
};

}  // namespace ivt::dataflow
