// Relational operations over partitioned tables.
//
// These are the tabular primitives the paper's Algorithm 1 is written in
// (selection σ, join ⋈, per-row mapping F_u, union ∪, plus the window/lag
// operation used by the state representation). Each operation executes
// partition-parallel through an Engine and preserves deterministic logical
// row order.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dataflow/engine.hpp"
#include "dataflow/table.hpp"

namespace ivt::dataflow {

using RowPredicate = std::function<bool(const RowView&)>;

/// σ: keep rows where `pred` is true.
Table filter(Engine& engine, const Table& in, const RowPredicate& pred,
             const std::string& stage_name = "filter");

/// π: keep only the named columns, in the given order.
Table project(Engine& engine, const Table& in,
              const std::vector<std::string>& columns);

/// Append a computed column. `fn` must return values of `field.type`
/// (or null).
Table with_column(Engine& engine, const Table& in, const Field& field,
                  const std::function<Value(const RowView&)>& fn,
                  const std::string& stage_name = "with_column");

/// Generalized row mapper (flat map): for every input row, `emit` appends
/// zero or more complete rows to the output partition (one append per
/// column, all columns kept in lockstep). This is the engine form of the
/// paper's interpretation functions F_u1 / F_u2.
Table map_rows(Engine& engine, const Table& in, const Schema& out_schema,
               const std::function<void(const RowView&, Partition&)>& emit,
               const std::string& stage_name = "map_rows");

enum class JoinType { Inner, LeftOuter };

/// Broadcast hash join: builds a hash table over `right` (assumed small —
/// in the paper this is the parameter table U_comb) and probes each `left`
/// partition in parallel. Output schema: all left fields followed by
/// right's non-key fields; throws std::invalid_argument on a name clash.
/// Matches within one left row are emitted in right-table order, so output
/// is deterministic.
Table hash_join(Engine& engine, const Table& left, const Table& right,
                const std::vector<std::string>& left_keys,
                const std::vector<std::string>& right_keys,
                JoinType type = JoinType::Inner,
                const std::string& stage_name = "hash_join");

/// ∪: concatenate two tables with identical schemas.
Table union_all(const Table& a, const Table& b);

struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Stable global sort by the given keys. Null sorts first. Output uses the
/// engine's default partition count.
Table sort_by(Engine& engine, const Table& in,
              const std::vector<SortKey>& keys,
              const std::string& stage_name = "sort");

/// Remove duplicate rows w.r.t. `key_columns`, keeping the first
/// occurrence in logical order.
Table distinct(Engine& engine, const Table& in,
               const std::vector<std::string>& key_columns);

enum class AggOp { Count, Sum, Min, Max, First, Last, Mean };

struct Aggregation {
  AggOp op = AggOp::Count;
  std::string column;  ///< ignored for Count
  std::string output_name;
};

/// Group by `key_columns` and compute aggregates. Two-phase: parallel
/// per-partition partial aggregation, then a deterministic merge in
/// partition order. Output groups appear in order of first occurrence.
Table group_by(Engine& engine, const Table& in,
               const std::vector<std::string>& key_columns,
               const std::vector<Aggregation>& aggs);

/// Window lag: value of `value_column` at the previous row with the same
/// `group_columns` key (in logical order); null for a group's first row.
/// The new column is named `output_name` and typed like `value_column`.
Table with_lag(Engine& engine, const Table& in,
               const std::vector<std::string>& group_columns,
               const std::string& value_column,
               const std::string& output_name);

}  // namespace ivt::dataflow
