#include "dataflow/column.hpp"

#include "errors/error.hpp"

namespace ivt::dataflow {

Column::Column(ValueType type) : type_(type) {
  switch (type) {
    case ValueType::Null:
      data_ = std::monostate{};
      break;
    case ValueType::Int64:
      data_ = Int64Vec{};
      break;
    case ValueType::Float64:
      data_ = Float64Vec{};
      break;
    case ValueType::String:
      data_ = StringVec{};
      break;
  }
}

void Column::reserve(std::size_t n) {
  valid_.reserve(n);
  switch (type_) {
    case ValueType::Null:
      break;
    case ValueType::Int64:
      std::get<Int64Vec>(data_).reserve(n);
      break;
    case ValueType::Float64:
      std::get<Float64Vec>(data_).reserve(n);
      break;
    case ValueType::String:
      std::get<StringVec>(data_).reserve(n);
      break;
  }
}

void Column::throw_type_mismatch(ValueType got) const {
  IVT_THROW(errors::Category::Internal, 
      "column type mismatch: column is " + std::string(to_string(type_)) +
      ", value is " + std::string(to_string(got)));
}

void Column::append(const Value& v) {
  switch (v.type()) {
    case ValueType::Null:
      append_null();
      return;
    case ValueType::Int64:
      if (type_ == ValueType::Float64) {
        append_float64(static_cast<double>(v.as_int64()));
        return;
      }
      append_int64(v.as_int64());
      return;
    case ValueType::Float64:
      append_float64(v.as_float64());
      return;
    case ValueType::String:
      append_string(v.as_string());
      return;
  }
}

void Column::append(Value&& v) {
  if (v.type() == ValueType::String && type_ == ValueType::String) {
    // Steal the string payload.
    append_string(std::move(const_cast<std::string&>(v.as_string())));
    return;
  }
  append(static_cast<const Value&>(v));
}

void Column::append_int64(std::int64_t v) {
  if (type_ != ValueType::Int64) throw_type_mismatch(ValueType::Int64);
  std::get<Int64Vec>(data_).push_back(v);
  valid_.push_back(1);
}

void Column::append_float64(double v) {
  if (type_ != ValueType::Float64) throw_type_mismatch(ValueType::Float64);
  std::get<Float64Vec>(data_).push_back(v);
  valid_.push_back(1);
}

void Column::append_string(std::string v) {
  if (type_ != ValueType::String) throw_type_mismatch(ValueType::String);
  std::get<StringVec>(data_).push_back(std::move(v));
  valid_.push_back(1);
}

void Column::append_null() {
  switch (type_) {
    case ValueType::Null:
      break;
    case ValueType::Int64:
      std::get<Int64Vec>(data_).push_back(0);
      break;
    case ValueType::Float64:
      std::get<Float64Vec>(data_).push_back(0.0);
      break;
    case ValueType::String:
      std::get<StringVec>(data_).emplace_back();
      break;
  }
  valid_.push_back(0);
}

Value Column::value_at(std::size_t i) const {
  if (is_null(i)) return Value{};
  switch (type_) {
    case ValueType::Null:
      return Value{};
    case ValueType::Int64:
      return Value{int64_at(i)};
    case ValueType::Float64:
      return Value{float64_at(i)};
    case ValueType::String:
      return Value{string_at(i)};
  }
  return Value{};
}

void Column::append_from(const Column& src, std::size_t i) {
  if (src.is_null(i)) {
    append_null();
    return;
  }
  if (src.type_ != type_) {
    if (src.type_ == ValueType::Int64 && type_ == ValueType::Float64) {
      append_float64(static_cast<double>(src.int64_at(i)));
      return;
    }
    throw_type_mismatch(src.type_);
  }
  switch (type_) {
    case ValueType::Null:
      append_null();
      break;
    case ValueType::Int64:
      append_int64(src.int64_at(i));
      break;
    case ValueType::Float64:
      append_float64(src.float64_at(i));
      break;
    case ValueType::String:
      append_string(src.string_at(i));
      break;
  }
}

}  // namespace ivt::dataflow
