// Column summaries ("describe") for quick dataset inspection.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dataflow/engine.hpp"
#include "dataflow/table.hpp"

namespace ivt::dataflow {

struct ColumnSummary {
  std::string name;
  ValueType type = ValueType::Null;
  std::size_t count = 0;   ///< non-null cells
  std::size_t nulls = 0;
  /// Distinct non-null values, capped at `distinct_cap` (then reported as
  /// exactly the cap with `distinct_capped` set).
  std::size_t distinct = 0;
  bool distinct_capped = false;
  /// Numeric columns only:
  std::optional<double> min;
  std::optional<double> max;
  std::optional<double> mean;
};

struct SummaryOptions {
  std::size_t distinct_cap = 10'000;
};

/// Summarize every column (parallel per partition, deterministic merge).
std::vector<ColumnSummary> summarize(Engine& engine, const Table& table,
                                     const SummaryOptions& options = {});

/// Fixed-width rendering of summaries.
std::string to_display_string(const std::vector<ColumnSummary>& summaries);

}  // namespace ivt::dataflow
