#include "dataflow/table.hpp"

#include "errors/error.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ivt::dataflow {

Table::Table(Schema schema, std::vector<Partition> partitions)
    : schema_(std::move(schema)) {
  for (Partition& p : partitions) add_partition(std::move(p));
}

std::size_t Table::num_rows() const {
  std::size_t n = 0;
  for (const Partition& p : partitions_) n += p.num_rows();
  return n;
}

void Table::add_partition(Partition partition) {
  if (partition.columns.size() != schema_.size()) {
    IVT_THROW(errors::Category::Internal, "partition width does not match schema");
  }
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (partition.columns[i].type() != schema_.field(i).type) {
      IVT_THROW(errors::Category::Internal, "partition column '" +
                                  schema_.field(i).name +
                                  "' type does not match schema");
    }
    if (partition.columns[i].size() != partition.columns[0].size()) {
      IVT_THROW(errors::Category::Internal, "ragged partition: column '" +
                                  schema_.field(i).name +
                                  "' length differs from first column");
    }
  }
  partitions_.push_back(std::move(partition));
}

Partition Table::make_partition(const Schema& schema) {
  Partition p;
  p.columns.reserve(schema.size());
  for (const Field& f : schema.fields()) {
    p.columns.emplace_back(f.type);
  }
  return p;
}

std::vector<std::vector<Value>> Table::collect_rows() const {
  std::vector<std::vector<Value>> rows;
  rows.reserve(num_rows());
  for_each_row([&](const RowView& rv) {
    std::vector<Value> row;
    row.reserve(schema_.size());
    for (std::size_t c = 0; c < schema_.size(); ++c) {
      row.push_back(rv.value_at(c));
    }
    rows.push_back(std::move(row));
  });
  return rows;
}

Table Table::repartitioned(std::size_t n) const {
  if (n == 0) n = 1;
  const std::size_t total = num_rows();
  std::size_t per = (total + n - 1) / n;
  if (per == 0) per = 1;
  TableBuilder builder(schema_, per);
  for (const Partition& p : partitions_) {
    const std::size_t rows = p.num_rows();
    for (std::size_t r = 0; r < rows; ++r) {
      Partition& dst = builder.current_partition();
      for (std::size_t c = 0; c < schema_.size(); ++c) {
        dst.columns[c].append_from(p.columns[c], r);
      }
      builder.commit_row();
    }
  }
  return builder.build();
}

std::string Table::to_display_string(std::size_t max_rows) const {
  std::ostringstream os;
  os << schema_.to_display_string() << "  [" << num_rows() << " rows, "
     << num_partitions() << " partitions]\n";
  std::size_t shown = 0;
  for (const Partition& p : partitions_) {
    const std::size_t n = p.num_rows();
    for (std::size_t r = 0; r < n && shown < max_rows; ++r, ++shown) {
      os << "  ";
      for (std::size_t c = 0; c < schema_.size(); ++c) {
        if (c > 0) os << " | ";
        os << p.columns[c].value_at(r).to_display_string();
      }
      os << "\n";
    }
    if (shown >= max_rows) break;
  }
  if (shown < num_rows()) {
    os << "  ... (" << (num_rows() - shown) << " more rows)\n";
  }
  return os.str();
}

TableBuilder::TableBuilder(Schema schema, std::size_t target_partition_rows)
    : schema_(std::move(schema)),
      target_partition_rows_(target_partition_rows),
      current_(Table::make_partition(schema_)),
      table_(schema_) {}

void TableBuilder::append_row(std::vector<Value> row) {
  if (row.size() != schema_.size()) {
    IVT_THROW(errors::Category::Internal, "row width does not match schema");
  }
  for (std::size_t c = 0; c < row.size(); ++c) {
    current_.columns[c].append(std::move(row[c]));
  }
  commit_row();
}

Partition& TableBuilder::current_partition() { return current_; }

void TableBuilder::commit_row() {
  ++rows_in_current_;
  ++rows_appended_;
  roll_partition_if_full();
}

void TableBuilder::roll_partition_if_full() {
  if (target_partition_rows_ > 0 &&
      rows_in_current_ >= target_partition_rows_) {
    table_.add_partition(std::move(current_));
    current_ = Table::make_partition(schema_);
    rows_in_current_ = 0;
  }
}

Table TableBuilder::build() {
  if (rows_in_current_ > 0 || table_.num_partitions() == 0) {
    table_.add_partition(std::move(current_));
  }
  current_ = Table::make_partition(schema_);
  rows_in_current_ = 0;
  Table out = std::move(table_);
  table_ = Table(schema_);
  return out;
}

}  // namespace ivt::dataflow
