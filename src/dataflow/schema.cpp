#include "dataflow/schema.hpp"

#include "errors/error.hpp"

#include <stdexcept>
#include <unordered_set>

namespace ivt::dataflow {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  std::unordered_set<std::string_view> seen;
  for (const Field& f : fields_) {
    if (!seen.insert(f.name).second) {
      IVT_THROW(errors::Category::Spec, "duplicate field name in schema: " + f.name);
    }
  }
}

std::optional<std::size_t> Schema::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

std::size_t Schema::require(std::string_view name) const {
  if (auto idx = index_of(name)) return *idx;
  IVT_THROW(errors::Category::Spec, "schema has no field named '" + std::string(name) +
                          "' (schema: " + to_display_string() + ")");
}

Schema Schema::with_field(Field field) const {
  std::vector<Field> fields = fields_;
  fields.push_back(std::move(field));
  return Schema(std::move(fields));
}

Schema Schema::select(const std::vector<std::string>& names) const {
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (const std::string& name : names) {
    fields.push_back(fields_[require(name)]);
  }
  return Schema(std::move(fields));
}

std::string Schema::to_display_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += std::string(to_string(fields_[i].type));
  }
  out += ")";
  return out;
}

}  // namespace ivt::dataflow
