#include "dataflow/csv.hpp"

#include "errors/error.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ivt::dataflow {

namespace {

bool needs_quoting(const std::string& s, char sep) {
  return s.find_first_of(std::string{sep, '"', '\n', '\r'}) !=
         std::string::npos;
}

void write_cell(std::ostream& out, const std::string& s, char sep) {
  if (!needs_quoting(s, sep)) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

/// Split one logical CSV record (handles quoted fields; `in` may span
/// multiple physical lines). Returns false at EOF with no data.
bool read_record(std::istream& in, char sep, std::vector<std::string>& out) {
  out.clear();
  std::string field;
  bool in_quotes = false;
  bool any = false;
  int ch;
  while ((ch = in.get()) != EOF) {
    any = true;
    const char c = static_cast<char>(ch);
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get();
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      out.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      break;
    } else if (c == '\r') {
      // swallow; \r\n handled by the following \n
    } else {
      field += c;
    }
  }
  if (!any) return false;
  out.push_back(std::move(field));
  return true;
}

Value parse_cell(const std::string& s, ValueType type, std::size_t line) {
  if (s.empty()) return Value{};
  switch (type) {
    case ValueType::Null:
      return Value{};
    case ValueType::Int64: {
      std::int64_t v = 0;
      const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
      if (ec != std::errc{} || ptr != s.data() + s.size()) {
        IVT_THROW(errors::Category::Format, "csv line " + std::to_string(line) +
                                 ": bad int64 cell '" + s + "'");
      }
      return Value{v};
    }
    case ValueType::Float64: {
      try {
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        if (pos != s.size()) IVT_THROW(errors::Category::Format, s);
        return Value{v};
      } catch (const std::exception&) {
        IVT_THROW(errors::Category::Format, "csv line " + std::to_string(line) +
                                 ": bad float64 cell '" + s + "'");
      }
    }
    case ValueType::String:
      return Value{s};
  }
  return Value{};
}

}  // namespace

namespace {

/// Append one cell to the output buffer, quoting when needed.
void append_cell(std::string& buf, std::string_view s, char sep) {
  if (s.find_first_of(std::string_view("\"\n\r")) == std::string_view::npos &&
      s.find(sep) == std::string_view::npos) {
    buf.append(s);
    return;
  }
  buf += '"';
  for (char c : s) {
    if (c == '"') buf += '"';
    buf += c;
  }
  buf += '"';
}

}  // namespace

void write_csv(const Table& table, std::ostream& out,
               const CsvOptions& options) {
  const Schema& schema = table.schema();
  std::string buf;
  if (options.header) {
    for (std::size_t c = 0; c < schema.size(); ++c) {
      if (c > 0) buf += options.separator;
      append_cell(buf, schema.field(c).name, options.separator);
    }
    buf += '\n';
  }
  char num[64];
  for (const Partition& p : table.partitions()) {
    const std::size_t rows = p.num_rows();
    buf.reserve(buf.size() + rows * 16);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < schema.size(); ++c) {
        if (c > 0) buf += options.separator;
        const Column& col = p.columns[c];
        if (col.is_null(r)) continue;
        switch (col.type()) {
          case ValueType::Null:
            break;
          case ValueType::Int64:
            buf.append(num, static_cast<std::size_t>(std::snprintf(
                                num, sizeof(num), "%lld",
                                static_cast<long long>(col.int64_at(r)))));
            break;
          case ValueType::Float64:
            buf.append(num, static_cast<std::size_t>(std::snprintf(
                                num, sizeof(num), "%.9g",
                                col.float64_at(r))));
            break;
          case ValueType::String:
            append_cell(buf, col.string_at(r), options.separator);
            break;
        }
      }
      buf += '\n';
      if (buf.size() >= 1 << 20) {
        out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
        buf.clear();
      }
    }
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void write_csv_file(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) IVT_THROW(errors::Category::Io, "cannot open for write: " + path);
  write_csv(table, out, options);
  if (!out) IVT_THROW(errors::Category::Io, "write failed: " + path);
}

Table read_csv(std::istream& in, const Schema& schema,
               const CsvOptions& options, std::size_t target_partition_rows) {
  std::vector<std::string> record;
  std::size_t line = 0;
  if (options.header) {
    ++line;
    if (!read_record(in, options.separator, record)) {
      return Table(schema);
    }
    if (record.size() != schema.size()) {
      IVT_THROW(errors::Category::Format, "csv header width " +
                               std::to_string(record.size()) +
                               " does not match schema width " +
                               std::to_string(schema.size()));
    }
    for (std::size_t c = 0; c < schema.size(); ++c) {
      if (record[c] != schema.field(c).name) {
        IVT_THROW(errors::Category::Format, "csv header mismatch at column " +
                                 std::to_string(c) + ": got '" + record[c] +
                                 "', expected '" + schema.field(c).name + "'");
      }
    }
  }
  TableBuilder builder(schema, target_partition_rows);
  while (read_record(in, options.separator, record)) {
    ++line;
    if (record.size() == 1 && record[0].empty()) continue;  // blank line
    if (record.size() != schema.size()) {
      IVT_THROW(errors::Category::Format, "csv line " + std::to_string(line) +
                               ": width " + std::to_string(record.size()) +
                               " does not match schema width " +
                               std::to_string(schema.size()));
    }
    std::vector<Value> row;
    row.reserve(schema.size());
    for (std::size_t c = 0; c < schema.size(); ++c) {
      row.push_back(parse_cell(record[c], schema.field(c).type, line));
    }
    builder.append_row(std::move(row));
  }
  return builder.build();
}

Table read_csv_file(const std::string& path, const Schema& schema,
                    const CsvOptions& options,
                    std::size_t target_partition_rows) {
  std::ifstream in(path, std::ios::binary);
  if (!in) IVT_THROW(errors::Category::Io, "cannot open for read: " + path);
  return read_csv(in, schema, options, target_partition_rows);
}

}  // namespace ivt::dataflow
