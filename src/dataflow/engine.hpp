// Execution engine: runs tabular operations partition-parallel.
//
// The Engine models the role Apache Spark plays in the paper: every
// relational operation is decomposed into per-partition tasks executed on
// a worker pool. `EngineConfig::task_overhead` optionally models the
// scheduling/communication latency of a real cluster (the paper attributes
// the fluctuations in its Fig. 5 to exactly this); it defaults to zero.
//
// Determinism: task results are collected by partition index, so the
// logical row order of every operation's output is independent of worker
// count and scheduling order.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/table.hpp"
#include "dataflow/thread_pool.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace ivt::dataflow {

struct EngineConfig {
  /// Parallel workers (Spark: executors × cores). 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Run every task inline on the submitting thread (ThreadPool with zero
  /// workers): single-threaded, deterministic execution order, bounded
  /// admission trivially satisfied. The CLI maps a literal `--workers=0`
  /// to this; `workers` is ignored when set.
  bool inline_execution = false;
  /// Default partition count for repartitioning/new tables. 0 = 4 × workers.
  std::size_t default_partitions = 0;
  /// Simulated per-task dispatch latency (models cluster scheduling and
  /// shuffle communication). Zero disables the simulation.
  std::chrono::microseconds task_overhead{0};
  /// Extra attempts for a task that failed with a *transient* error
  /// (errors::is_transient, i.e. Category::Resource). Non-transient errors
  /// are never retried. 0 disables retry.
  std::size_t max_task_retries = 2;
  /// Base backoff before a retry; attempt k sleeps base × 2^k plus a
  /// deterministic jitter derived from (task index, attempt).
  std::chrono::microseconds retry_backoff{100};
};

/// Counters for one executed stage (one logical operation).
struct StageMetrics {
  std::string name;
  std::size_t tasks = 0;
  std::size_t input_rows = 0;
  std::size_t output_rows = 0;
  double wall_ms = 0.0;
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});

  [[nodiscard]] std::size_t workers() const { return pool_->num_threads(); }
  [[nodiscard]] std::size_t default_partitions() const {
    return default_partitions_;
  }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// Run `fn(i)` for i in [0, n) on the worker pool; blocks until done.
  /// Tasks failing with a transient errors::Error are retried up to
  /// `max_task_retries` times with jittered exponential backoff; the first
  /// unrecovered exception from any task is rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but admission-bounded: at most `max_in_flight`
  /// tasks are queued or running at any moment, so per-task working memory
  /// (e.g. a decoded morsel) is capped at max_in_flight × morsel size. The
  /// submitting thread helps execute tasks while the window is full.
  /// `max_in_flight == 0` selects the default 2 × workers + 1. Same retry
  /// and exception-barrier semantics as parallel_for. With
  /// `inline_execution` every task runs immediately in submission order.
  void parallel_for_bounded(std::size_t n, std::size_t max_in_flight,
                            const std::function<void(std::size_t)>& fn);

  /// Transient-failure retries performed since construction.
  [[nodiscard]] std::size_t task_retries() const {
    return task_retries_.load(std::memory_order_relaxed);
  }

  /// Map every input partition through `fn` (partition-index-preserving);
  /// `fn(partition, index)` returns the output partition. Records a stage.
  Table map_partitions(
      const std::string& stage_name, const Table& in, const Schema& out_schema,
      const std::function<Partition(const Partition&, std::size_t)>& fn);

  /// Stage log of every operation executed through this engine.
  [[nodiscard]] std::vector<StageMetrics> metrics() const
      IVT_EXCLUDES(metrics_mutex_);
  void clear_metrics() IVT_EXCLUDES(metrics_mutex_);

  /// Record an externally measured stage (used by operations that cannot
  /// be expressed as a pure partition map, e.g. sort merge phases).
  void record_stage(StageMetrics m) IVT_EXCLUDES(metrics_mutex_);

 private:
  void apply_task_overhead() const;
  void run_with_retry(std::size_t index,
                      const std::function<void(std::size_t)>& fn);

  EngineConfig config_;
  std::size_t default_partitions_;
  std::unique_ptr<ThreadPool> pool_;
  mutable support::Mutex metrics_mutex_{
      support::LockRank::k_dataflow_Engine_metrics_mutex_};
  std::vector<StageMetrics> metrics_ IVT_GUARDED_BY(metrics_mutex_);
  std::atomic<std::size_t> task_retries_{0};
};

}  // namespace ivt::dataflow
