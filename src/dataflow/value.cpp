#include "dataflow/value.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <functional>

namespace ivt::dataflow {

std::string_view to_string(ValueType type) {
  switch (type) {
    case ValueType::Null:
      return "null";
    case ValueType::Int64:
      return "int64";
    case ValueType::Float64:
      return "float64";
    case ValueType::String:
      return "string";
  }
  return "unknown";
}

std::string Value::to_display_string() const {
  switch (type()) {
    case ValueType::Null:
      return "";
    case ValueType::Int64:
      return std::to_string(as_int64());
    case ValueType::Float64: {
      const double v = as_float64();
      // Render integral doubles without a trailing ".000000" but keep full
      // precision otherwise; %.9g round-trips the values we produce.
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g", v);
      return buf;
    }
    case ValueType::String:
      return as_string();
  }
  return "";
}

std::size_t Value::hash() const {
  switch (type()) {
    case ValueType::Null:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::Int64:
      return std::hash<std::int64_t>{}(as_int64());
    case ValueType::Float64:
      return std::hash<double>{}(as_float64());
    case ValueType::String:
      return std::hash<std::string>{}(as_string());
  }
  return 0;
}

}  // namespace ivt::dataflow
