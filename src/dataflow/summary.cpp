#include "dataflow/summary.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace ivt::dataflow {

std::vector<ColumnSummary> summarize(Engine& engine, const Table& table,
                                     const SummaryOptions& options) {
  const Schema& schema = table.schema();

  struct PartialColumn {
    std::size_t count = 0;
    std::size_t nulls = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    bool has_numeric = false;
    std::unordered_set<std::string> distinct;
    bool capped = false;
  };
  std::vector<std::vector<PartialColumn>> partials(
      table.num_partitions(), std::vector<PartialColumn>(schema.size()));

  engine.parallel_for(table.num_partitions(), [&](std::size_t pi) {
    const Partition& p = table.partition(pi);
    const std::size_t rows = p.num_rows();
    for (std::size_t c = 0; c < schema.size(); ++c) {
      PartialColumn& pc = partials[pi][c];
      const Column& col = p.columns[c];
      for (std::size_t r = 0; r < rows; ++r) {
        if (col.is_null(r)) {
          ++pc.nulls;
          continue;
        }
        ++pc.count;
        switch (col.type()) {
          case ValueType::Null:
            break;
          case ValueType::Int64:
          case ValueType::Float64: {
            const double v = col.number_at(r);
            if (!pc.has_numeric) {
              pc.min = v;
              pc.max = v;
              pc.has_numeric = true;
            } else {
              pc.min = std::min(pc.min, v);
              pc.max = std::max(pc.max, v);
            }
            pc.sum += v;
            if (!pc.capped) {
              pc.distinct.insert(col.value_at(r).to_display_string());
              if (pc.distinct.size() >= options.distinct_cap) {
                pc.capped = true;
              }
            }
            break;
          }
          case ValueType::String:
            if (!pc.capped) {
              pc.distinct.insert(col.string_at(r));
              if (pc.distinct.size() >= options.distinct_cap) {
                pc.capped = true;
              }
            }
            break;
        }
      }
    }
  });

  std::vector<ColumnSummary> out(schema.size());
  for (std::size_t c = 0; c < schema.size(); ++c) {
    ColumnSummary& s = out[c];
    s.name = schema.field(c).name;
    s.type = schema.field(c).type;
    std::unordered_set<std::string> distinct;
    bool has_numeric = false;
    double sum = 0.0;
    for (const auto& partition : partials) {
      const PartialColumn& pc = partition[c];
      s.count += pc.count;
      s.nulls += pc.nulls;
      sum += pc.sum;
      if (pc.has_numeric) {
        if (!has_numeric) {
          s.min = pc.min;
          s.max = pc.max;
          has_numeric = true;
        } else {
          s.min = std::min(*s.min, pc.min);
          s.max = std::max(*s.max, pc.max);
        }
      }
      s.distinct_capped |= pc.capped;
      if (distinct.size() < options.distinct_cap) {
        distinct.insert(pc.distinct.begin(), pc.distinct.end());
      }
    }
    if (distinct.size() >= options.distinct_cap) {
      s.distinct_capped = true;
      s.distinct = options.distinct_cap;
    } else {
      s.distinct = distinct.size();
    }
    if (has_numeric && s.count > 0) {
      s.mean = sum / static_cast<double>(s.count);
    }
  }
  return out;
}

std::string to_display_string(const std::vector<ColumnSummary>& summaries) {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-24s %-8s %10s %8s %10s %12s %12s %12s\n",
                "column", "type", "count", "nulls", "distinct", "min", "max",
                "mean");
  os << line;
  for (const ColumnSummary& s : summaries) {
    std::string distinct = std::to_string(s.distinct);
    if (s.distinct_capped) distinct += "+";
    auto num = [](const std::optional<double>& v) {
      if (!v) return std::string("-");
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", *v);
      return std::string(buf);
    };
    std::snprintf(line, sizeof(line),
                  "%-24s %-8s %10zu %8zu %10s %12s %12s %12s\n",
                  s.name.c_str(), std::string(to_string(s.type)).c_str(),
                  s.count, s.nulls, distinct.c_str(), num(s.min).c_str(),
                  num(s.max).c_str(), num(s.mean).c_str());
    os << line;
  }
  return os.str();
}

}  // namespace ivt::dataflow
