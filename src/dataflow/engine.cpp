#include "dataflow/engine.hpp"

#include <atomic>
#include <thread>

#include "obs/obs.hpp"

namespace ivt::dataflow {

Engine::Engine(EngineConfig config) : config_(config) {
  std::size_t workers = config.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 4;
  }
  default_partitions_ = config.default_partitions != 0
                            ? config.default_partitions
                            : 4 * workers;
  pool_ = std::make_unique<ThreadPool>(workers);
}

void Engine::apply_task_overhead() const {
  if (config_.task_overhead.count() > 0) {
    std::this_thread::sleep_for(config_.task_overhead);
  }
}

void Engine::parallel_for(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    apply_task_overhead();
    fn(0);
    return;
  }
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (std::size_t i = 0; i < n; ++i) {
    pool_->submit([&, i] {
      apply_task_overhead();
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool_->help_until_idle();
  if (first_error) std::rethrow_exception(first_error);
}

Table Engine::map_partitions(
    const std::string& stage_name, const Table& in, const Schema& out_schema,
    const std::function<Partition(const Partition&, std::size_t)>& fn) {
  OBS_SPAN_V(stage_span, "engine." + stage_name);
  OBS_COUNT("engine.stages", 1);
  OBS_COUNT("engine.tasks", in.num_partitions());
  const auto start = std::chrono::steady_clock::now();
  std::vector<Partition> out(in.num_partitions());
  parallel_for(in.num_partitions(), [&](std::size_t i) {
    OBS_SPAN_V(task_span, "engine.task");
    out[i] = fn(in.partition(i), i);
    task_span.set_rows(out[i].num_rows());
  });
  Table result(out_schema);
  for (Partition& p : out) result.add_partition(std::move(p));
  const auto end = std::chrono::steady_clock::now();
  stage_span.set_rows(result.num_rows());

  StageMetrics m;
  m.name = stage_name;
  m.tasks = in.num_partitions();
  m.input_rows = in.num_rows();
  m.output_rows = result.num_rows();
  m.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  OBS_HIST_MS("engine.stage_wall_ms", m.wall_ms);
  record_stage(std::move(m));
  return result;
}

std::vector<StageMetrics> Engine::metrics() const {
  std::lock_guard lock(metrics_mutex_);
  return metrics_;
}

void Engine::clear_metrics() {
  std::lock_guard lock(metrics_mutex_);
  metrics_.clear();
}

void Engine::record_stage(StageMetrics m) {
  std::lock_guard lock(metrics_mutex_);
  metrics_.push_back(std::move(m));
}

}  // namespace ivt::dataflow
