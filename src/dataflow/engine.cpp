#include "dataflow/engine.hpp"

#include <atomic>
#include <thread>

#include "errors/error.hpp"
#include "faultfx/faultfx.hpp"
#include "obs/obs.hpp"

namespace ivt::dataflow {

Engine::Engine(EngineConfig config) : config_(config) {
  if (config.inline_execution) {
    // ThreadPool(0) runs every task on the submitting thread. Partition
    // defaults act as if there were one worker, so table shapes stay
    // reasonable for the differential harness.
    default_partitions_ =
        config.default_partitions != 0 ? config.default_partitions : 4;
    pool_ = std::make_unique<ThreadPool>(0);
    return;
  }
  std::size_t workers = config.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 4;
  }
  default_partitions_ = config.default_partitions != 0
                            ? config.default_partitions
                            : 4 * workers;
  pool_ = std::make_unique<ThreadPool>(workers);
}

void Engine::apply_task_overhead() const {
  if (config_.task_overhead.count() > 0) {
    std::this_thread::sleep_for(config_.task_overhead);
  }
}

namespace {

/// Deterministic jitter in [0, 1) for retry attempt `attempt` of task
/// `index` — no global RNG state, so backoff is reproducible.
double retry_jitter(std::size_t index, std::size_t attempt) {
  std::uint64_t x = static_cast<std::uint64_t>(index) * 0x9E3779B97F4A7C15ULL +
                    attempt + 1;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<double>((x ^ (x >> 31)) >> 11) *
         (1.0 / 9007199254740992.0);
}

}  // namespace

void Engine::run_with_retry(std::size_t index,
                            const std::function<void(std::size_t)>& fn) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      FAULT_POINT("engine.task");
      fn(index);
      return;
    } catch (const errors::Error& e) {
      if (attempt >= config_.max_task_retries ||
          !errors::is_transient(e.category())) {
        throw;
      }
      task_retries_.fetch_add(1, std::memory_order_relaxed);
      OBS_COUNT("engine.task_retries", 1);
      const double scale =
          static_cast<double>(std::uint64_t{1} << attempt) *
          (1.0 + retry_jitter(index, attempt));
      const auto backoff = std::chrono::microseconds(static_cast<long>(
          static_cast<double>(config_.retry_backoff.count()) * scale));
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    }
  }
}

void Engine::parallel_for(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    apply_task_overhead();
    run_with_retry(0, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    pool_->submit([this, &fn, i] {
      apply_task_overhead();
      run_with_retry(i, fn);
    });
  }
  // The pool's exception barrier rethrows the first task failure here.
  pool_->help_until_idle();
}

void Engine::parallel_for_bounded(std::size_t n, std::size_t max_in_flight,
                                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (max_in_flight == 0) max_in_flight = 2 * workers() + 1;
  if (n == 1) {
    apply_task_overhead();
    run_with_retry(0, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    OBS_GAUGE_ADD("engine.morsels_in_flight", 1);
    pool_->submit_bounded(
        [this, &fn, i] {
          apply_task_overhead();
          try {
            run_with_retry(i, fn);
          } catch (...) {
            OBS_GAUGE_ADD("engine.morsels_in_flight", -1);
            throw;
          }
          OBS_GAUGE_ADD("engine.morsels_in_flight", -1);
        },
        max_in_flight);
  }
  pool_->help_until_idle();
}

Table Engine::map_partitions(
    const std::string& stage_name, const Table& in, const Schema& out_schema,
    const std::function<Partition(const Partition&, std::size_t)>& fn) {
  OBS_SPAN_V(stage_span, "engine." + stage_name);
  OBS_COUNT("engine.stages", 1);
  OBS_COUNT("engine.tasks", in.num_partitions());
  const auto start = std::chrono::steady_clock::now();
  std::vector<Partition> out(in.num_partitions());
  parallel_for(in.num_partitions(), [&](std::size_t i) {
    OBS_SPAN_V(task_span, "engine.task");
    out[i] = fn(in.partition(i), i);
    task_span.set_rows(out[i].num_rows());
  });
  Table result(out_schema);
  for (Partition& p : out) result.add_partition(std::move(p));
  const auto end = std::chrono::steady_clock::now();
  stage_span.set_rows(result.num_rows());

  StageMetrics m;
  m.name = stage_name;
  m.tasks = in.num_partitions();
  m.input_rows = in.num_rows();
  m.output_rows = result.num_rows();
  m.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  OBS_HIST_MS("engine.stage_wall_ms", m.wall_ms);
  record_stage(std::move(m));
  return result;
}

std::vector<StageMetrics> Engine::metrics() const {
  const support::MutexLock lock(metrics_mutex_);
  return metrics_;
}

void Engine::clear_metrics() {
  const support::MutexLock lock(metrics_mutex_);
  metrics_.clear();
}

void Engine::record_stage(StageMetrics m) {
  const support::MutexLock lock(metrics_mutex_);
  metrics_.push_back(std::move(m));
}

}  // namespace ivt::dataflow
