#include "dataflow/table_io.hpp"

#include "errors/error.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace ivt::dataflow {

namespace {

constexpr char kMagic[4] = {'I', 'V', 'T', 'B'};

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_integral_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.put(static_cast<char>(
        (static_cast<std::make_unsigned_t<T>>(value) >> (8 * i)) & 0xFF));
  }
}

template <typename T>
T get(std::istream& in) {
  static_assert(std::is_integral_v<T>);
  std::make_unsigned_t<T> value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int c = in.get();
    if (c == EOF) IVT_THROW(errors::Category::Format, "table file: unexpected EOF");
    value |= static_cast<std::make_unsigned_t<T>>(
                 static_cast<unsigned char>(c))
             << (8 * i);
  }
  return static_cast<T>(value);
}

void put_f64(std::ostream& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put<std::uint64_t>(out, bits);
}

double get_f64(std::istream& in) {
  const std::uint64_t bits = get<std::uint64_t>(in);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void write_column(const Column& col, std::ostream& out) {
  const std::size_t rows = col.size();
  // Validity bitmap.
  std::string bitmap((rows + 7) / 8, '\0');
  for (std::size_t r = 0; r < rows; ++r) {
    if (!col.is_null(r)) {
      bitmap[r / 8] |= static_cast<char>(1 << (r % 8));
    }
  }
  out.write(bitmap.data(), static_cast<std::streamsize>(bitmap.size()));
  switch (col.type()) {
    case ValueType::Null:
      break;
    case ValueType::Int64:
      for (std::size_t r = 0; r < rows; ++r) {
        put<std::int64_t>(out, col.is_null(r) ? 0 : col.int64_at(r));
      }
      break;
    case ValueType::Float64:
      for (std::size_t r = 0; r < rows; ++r) {
        put_f64(out, col.is_null(r) ? 0.0 : col.float64_at(r));
      }
      break;
    case ValueType::String:
      for (std::size_t r = 0; r < rows; ++r) {
        if (col.is_null(r)) {
          put<std::uint32_t>(out, 0);
          continue;
        }
        const std::string& s = col.string_at(r);
        if (s.size() > 0xFFFFFFFFull) {
          IVT_THROW(errors::Category::Spec, "table file: string cell too long");
        }
        put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
        out.write(s.data(), static_cast<std::streamsize>(s.size()));
      }
      break;
  }
}

Column read_column(ValueType type, std::size_t rows, std::istream& in) {
  Column col(type);
  col.reserve(rows);
  std::string bitmap((rows + 7) / 8, '\0');
  in.read(bitmap.data(), static_cast<std::streamsize>(bitmap.size()));
  if (static_cast<std::size_t>(in.gcount()) != bitmap.size()) {
    IVT_THROW(errors::Category::Format, "table file: truncated validity bitmap");
  }
  auto valid = [&bitmap](std::size_t r) {
    return (bitmap[r / 8] >> (r % 8)) & 1;
  };
  switch (type) {
    case ValueType::Null:
      for (std::size_t r = 0; r < rows; ++r) col.append_null();
      break;
    case ValueType::Int64:
      for (std::size_t r = 0; r < rows; ++r) {
        const std::int64_t v = get<std::int64_t>(in);
        if (valid(r)) {
          col.append_int64(v);
        } else {
          col.append_null();
        }
      }
      break;
    case ValueType::Float64:
      for (std::size_t r = 0; r < rows; ++r) {
        const double v = get_f64(in);
        if (valid(r)) {
          col.append_float64(v);
        } else {
          col.append_null();
        }
      }
      break;
    case ValueType::String:
      for (std::size_t r = 0; r < rows; ++r) {
        const std::uint32_t len = get<std::uint32_t>(in);
        std::string s(len, '\0');
        in.read(s.data(), len);
        if (static_cast<std::uint32_t>(in.gcount()) != len) {
          IVT_THROW(errors::Category::Format, "table file: truncated string cell");
        }
        if (valid(r)) {
          col.append_string(std::move(s));
        } else {
          col.append_null();
        }
      }
      break;
  }
  return col;
}

}  // namespace

void write_table(const Table& table, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, kTableFormatVersion);
  const Schema& schema = table.schema();
  put<std::uint32_t>(out, static_cast<std::uint32_t>(schema.size()));
  for (const Field& f : schema.fields()) {
    put<std::uint8_t>(out, static_cast<std::uint8_t>(f.type));
    if (f.name.size() > 0xFFFF) {
      IVT_THROW(errors::Category::Spec, "table file: field name too long");
    }
    put<std::uint16_t>(out, static_cast<std::uint16_t>(f.name.size()));
    out.write(f.name.data(), static_cast<std::streamsize>(f.name.size()));
  }
  put<std::uint32_t>(out, static_cast<std::uint32_t>(table.num_partitions()));
  for (const Partition& p : table.partitions()) {
    put<std::uint64_t>(out, p.num_rows());
    for (const Column& col : p.columns) {
      write_column(col, out);
    }
  }
  if (!out) IVT_THROW(errors::Category::Io, "table file: write failed");
}

Table read_table(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    IVT_THROW(errors::Category::Format, "table file: bad magic");
  }
  const std::uint32_t version = get<std::uint32_t>(in);
  if (version != kTableFormatVersion) {
    IVT_THROW(errors::Category::Format, "table file: unsupported version " +
                             std::to_string(version));
  }
  const std::uint32_t field_count = get<std::uint32_t>(in);
  std::vector<Field> fields;
  fields.reserve(field_count);
  for (std::uint32_t i = 0; i < field_count; ++i) {
    Field f;
    f.type = static_cast<ValueType>(get<std::uint8_t>(in));
    const std::uint16_t len = get<std::uint16_t>(in);
    f.name.resize(len);
    in.read(f.name.data(), len);
    if (in.gcount() != len) {
      IVT_THROW(errors::Category::Format, "table file: truncated field name");
    }
    fields.push_back(std::move(f));
  }
  Table table((Schema(std::move(fields))));
  const std::uint32_t partitions = get<std::uint32_t>(in);
  for (std::uint32_t pi = 0; pi < partitions; ++pi) {
    const std::uint64_t rows = get<std::uint64_t>(in);
    Partition p;
    p.columns.reserve(table.schema().size());
    for (const Field& f : table.schema().fields()) {
      p.columns.push_back(
          read_column(f.type, static_cast<std::size_t>(rows), in));
    }
    table.add_partition(std::move(p));
  }
  return table;
}

void save_table(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) IVT_THROW(errors::Category::Io, "cannot open for write: " + path);
  write_table(table, out);
}

Table load_table(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) IVT_THROW(errors::Category::Io, "cannot open for read: " + path);
  return read_table(in);
}

}  // namespace ivt::dataflow
