// Table schema: an ordered list of named, typed fields.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dataflow/value.hpp"

namespace ivt::dataflow {

/// One named, typed column slot in a schema.
struct Field {
  std::string name;
  ValueType type = ValueType::Null;

  friend bool operator==(const Field&, const Field&) = default;
};

/// Ordered field list with by-name lookup.
///
/// Field names must be unique within a schema; `Schema` enforces this at
/// construction (duplicate names would make joins/projections ambiguous).
class Schema {
 public:
  Schema() = default;
  /// Throws std::invalid_argument on duplicate field names.
  explicit Schema(std::vector<Field> fields);

  [[nodiscard]] std::size_t size() const { return fields_.size(); }
  [[nodiscard]] bool empty() const { return fields_.empty(); }
  [[nodiscard]] const Field& field(std::size_t i) const { return fields_[i]; }
  [[nodiscard]] const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or nullopt.
  [[nodiscard]] std::optional<std::size_t> index_of(
      std::string_view name) const;

  /// Index of the field named `name`; throws std::out_of_range with the
  /// field name in the message if absent. Use when absence is a logic bug.
  [[nodiscard]] std::size_t require(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const {
    return index_of(name).has_value();
  }

  /// Schema with `field` appended. Throws on duplicate name.
  [[nodiscard]] Schema with_field(Field field) const;

  /// Schema containing only the named fields, in the given order.
  /// Throws std::out_of_range on unknown names.
  [[nodiscard]] Schema select(const std::vector<std::string>& names) const;

  [[nodiscard]] std::string to_display_string() const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<Field> fields_;
};

}  // namespace ivt::dataflow
