// Binary table container (.ivtbl) — the engine's result "database".
//
// The paper measures "interpretation followed by writing the results to
// the database"; this module provides that sink as a compact columnar
// file. Layout (little-endian):
//   magic "IVTB" | u32 version | u32 field_count
//   per field: u8 type | u16 name_len | name
//   u32 partition_count
//   per partition: u64 row_count, then per column:
//     validity bitmap (ceil(rows/8) bytes), then the dense payload:
//       Int64/Float64: rows * 8 bytes
//       String: per row u32 length + bytes
#pragma once

#include <iosfwd>
#include <string>

#include "dataflow/table.hpp"

namespace ivt::dataflow {

inline constexpr std::uint32_t kTableFormatVersion = 1;

/// Write `table` (schema + all partitions) to `out`.
void write_table(const Table& table, std::ostream& out);
void save_table(const Table& table, const std::string& path);

/// Read a table back; throws std::runtime_error on corruption.
Table read_table(std::istream& in);
Table load_table(const std::string& path);

}  // namespace ivt::dataflow
