// Fixed-size worker pool used by the Engine to execute partition tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ivt::dataflow {

/// Minimal fixed-size thread pool. Tasks are plain std::function<void()>.
/// An exception escaping a task is caught at the pool boundary, recorded,
/// and rethrown from the next wait_idle()/help_until_idle() call — the
/// first captured exception wins, later ones are counted and dropped
/// (`pool.tasks_failed`). Remaining queued tasks still run; the pool stays
/// usable after the rethrow.
///
/// `num_threads == 0` selects inline mode: no workers are spawned and
/// submit() executes the task on the calling thread immediately, so
/// wait_idle()/help_until_idle() return at once instead of deadlocking on
/// a queue nobody drains. Inline-mode failures follow the same contract:
/// captured in submit(), rethrown from the next wait_idle().
///
/// Observability (when built with IVT_OBS=ON): gauge `pool.queue_depth`,
/// counters `pool.tasks_executed`, `pool.tasks_helped` (tasks stolen by
/// help_until_idle callers), `pool.busy_ns` and `pool.idle_ns` (per-worker
/// task vs. wait time, summed over workers).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return threads_.size(); }

  /// Tasks currently queued (submitted, not yet picked up by a worker).
  [[nodiscard]] std::size_t queue_depth() const;

  /// Enqueue one task (inline mode: run it now).
  void submit(std::function<void()> task);

  /// Bounded admission: enqueue one task, but only once fewer than
  /// `limit` tasks are in flight (queued + running). While the window is
  /// full the calling thread helps execute queued tasks instead of
  /// sleeping, so a producer streaming large work items can never grow
  /// the backlog — and thus the memory pinned by pending tasks — beyond
  /// `limit`. `limit == 0` is treated as 1. Inline mode runs the task
  /// immediately on the calling thread (the backlog is always empty, so
  /// the bound holds trivially and execution order is deterministic).
  void submit_bounded(std::function<void()> task, std::size_t limit);

  /// Block until every task submitted so far has finished. If any task
  /// threw since the last wait, rethrows the first captured exception.
  void wait_idle();

  /// Like wait_idle(), but the calling thread joins in executing queued
  /// tasks instead of sleeping. Avoids one context switch per task, which
  /// dominates on machines with few cores. Same rethrow contract.
  void help_until_idle();

  /// Tasks that threw since construction (not reset by wait_idle).
  [[nodiscard]] std::size_t tasks_failed() const;

 private:
  void worker_loop();
  void run_task(std::function<void()>& task);
  void rethrow_if_failed();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  // Notified on every in_flight_ decrement (cv_idle_ only fires at zero);
  // submit_bounded() waits here for an admission slot.
  std::condition_variable cv_slot_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::size_t tasks_failed_ = 0;
};

}  // namespace ivt::dataflow
