// Fixed-size worker pool used by the Engine to execute partition tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ivt::dataflow {

/// Minimal fixed-size thread pool. Tasks are plain std::function<void()>;
/// exceptions escaping a task terminate (tasks are expected to capture and
/// report their own failures — the Engine wraps user kernels accordingly).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return threads_.size(); }

  /// Enqueue one task.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait_idle();

  /// Like wait_idle(), but the calling thread joins in executing queued
  /// tasks instead of sleeping. Avoids one context switch per task, which
  /// dominates on machines with few cores.
  void help_until_idle();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace ivt::dataflow
