// Fixed-size worker pool used by the Engine to execute partition tasks.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace ivt::dataflow {

/// Minimal fixed-size thread pool. Tasks are plain std::function<void()>.
/// An exception escaping a task is caught at the pool boundary, recorded,
/// and rethrown from the next wait_idle()/help_until_idle() call — the
/// first captured exception wins, later ones are counted and dropped
/// (`pool.tasks_failed`). Remaining queued tasks still run; the pool stays
/// usable after the rethrow.
///
/// `num_threads == 0` selects inline mode: no workers are spawned and
/// submit() executes the task on the calling thread immediately, so
/// wait_idle()/help_until_idle() return at once instead of deadlocking on
/// a queue nobody drains. Inline-mode failures follow the same contract:
/// captured in submit(), rethrown from the next wait_idle().
///
/// Shutdown: the destructor stops the pool, wakes every thread blocked in
/// submit_bounded() (which then throws errors::Error(Internal) instead of
/// deadlocking on an admission slot nobody will ever free), waits for
/// those submitters to leave the critical section, and joins the workers
/// after they drain the queue. Submitting to a stopping pool throws the
/// same typed error.
///
/// Thread-safety contract (clang -Wthread-safety checked): all mutable
/// state is IVT_GUARDED_BY(mutex_); the condition variables pair with
/// mutex_ via explicit predicate loops.
///
/// Observability (when built with IVT_OBS=ON): gauge `pool.queue_depth`,
/// counters `pool.tasks_executed`, `pool.tasks_helped` (tasks stolen by
/// help_until_idle callers), `pool.busy_ns` and `pool.idle_ns` (per-worker
/// task vs. wait time, summed over workers).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return threads_.size(); }

  /// Tasks currently queued (submitted, not yet picked up by a worker).
  [[nodiscard]] std::size_t queue_depth() const IVT_EXCLUDES(mutex_);

  /// Enqueue one task (inline mode: run it now). Throws
  /// errors::Error(Internal) if the pool is being destroyed.
  void submit(std::function<void()> task) IVT_EXCLUDES(mutex_);

  /// Bounded admission: enqueue one task, but only once fewer than
  /// `limit` tasks are in flight (queued + running). While the window is
  /// full the calling thread helps execute queued tasks instead of
  /// sleeping, so a producer streaming large work items can never grow
  /// the backlog — and thus the memory pinned by pending tasks — beyond
  /// `limit`. `limit == 0` is treated as 1. Inline mode runs the task
  /// immediately on the calling thread (the backlog is always empty, so
  /// the bound holds trivially and execution order is deterministic).
  /// If the pool is destroyed while this call is waiting for a slot it
  /// throws errors::Error(Internal) instead of deadlocking.
  void submit_bounded(std::function<void()> task, std::size_t limit)
      IVT_EXCLUDES(mutex_);

  /// Block until every task submitted so far has finished. If any task
  /// threw since the last wait, rethrows the first captured exception.
  void wait_idle() IVT_EXCLUDES(mutex_);

  /// Like wait_idle(), but the calling thread joins in executing queued
  /// tasks instead of sleeping. Avoids one context switch per task, which
  /// dominates on machines with few cores. Same rethrow contract.
  void help_until_idle() IVT_EXCLUDES(mutex_);

  /// Tasks that threw since construction (not reset by wait_idle).
  [[nodiscard]] std::size_t tasks_failed() const IVT_EXCLUDES(mutex_);

 private:
  void worker_loop() IVT_EXCLUDES(mutex_);
  void run_task(std::function<void()>& task) IVT_EXCLUDES(mutex_);
  void rethrow_if_failed() IVT_EXCLUDES(mutex_);

  std::vector<std::thread> threads_;
  mutable support::Mutex mutex_{support::LockRank::k_dataflow_ThreadPool_mutex_};
  std::deque<std::function<void()>> queue_ IVT_GUARDED_BY(mutex_);
  support::CondVar cv_task_;
  support::CondVar cv_idle_;
  // Notified on every in_flight_ decrement (cv_idle_ only fires at zero);
  // submit_bounded() waits here for an admission slot.
  support::CondVar cv_slot_;
  // Destructor waits here until no submit_bounded() caller is left inside
  // the critical section (see pending_submitters_).
  support::CondVar cv_shutdown_;
  std::size_t in_flight_ IVT_GUARDED_BY(mutex_) = 0;
  /// Threads currently inside submit_bounded() (waiting for a slot or
  /// helping); the destructor must not tear the pool down under them.
  std::size_t pending_submitters_ IVT_GUARDED_BY(mutex_) = 0;
  bool stop_ IVT_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ IVT_GUARDED_BY(mutex_);
  std::size_t tasks_failed_ IVT_GUARDED_BY(mutex_) = 0;
};

}  // namespace ivt::dataflow
