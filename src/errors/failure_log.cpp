#include "errors/failure_log.hpp"

#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace ivt::errors {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void count_failure_metrics(const FailureRecord& record) {
#if IVT_OBS_ENABLED
  obs::Registry& registry = obs::Registry::instance();
  registry.counter("errors.total").add(1);
  registry
      .counter(std::string("errors.category.") +
               std::string(to_string(record.category)))
      .add(1);
  if (!record.site.empty()) {
    registry.counter(std::string("errors.site.") + record.site).add(1);
  }
#else
  (void)record;
#endif
}

}  // namespace

void FailureLog::add(FailureRecord record) {
  count_failure_metrics(record);
  const support::MutexLock lock(mutex_);
  records_.push_back(std::move(record));
}

void FailureLog::add(const std::string& site, const std::string& unit,
                     const Error& e, std::size_t retries) {
  FailureRecord record;
  record.site = site;
  record.unit = unit;
  record.category = e.category();
  record.message = e.describe();
  record.retries = retries;
  add(std::move(record));
}

std::vector<FailureRecord> FailureLog::records() const {
  const support::MutexLock lock(mutex_);
  return records_;
}

std::size_t FailureLog::size() const {
  const support::MutexLock lock(mutex_);
  return records_.size();
}

void FailureLog::merge(const FailureLog& other) {
  std::vector<FailureRecord> theirs = other.records();
  const support::MutexLock lock(mutex_);
  for (FailureRecord& r : theirs) records_.push_back(std::move(r));
}

std::string failures_to_json(const std::vector<FailureRecord>& records,
                             const std::string& indent) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const FailureRecord& r = records[i];
    os << (i > 0 ? "," : "") << "\n" << indent << "  "
       << "{\"site\": \"" << json_escape(r.site) << "\", \"unit\": \""
       << json_escape(r.unit) << "\", \"category\": \""
       << to_string(r.category) << "\", \"retries\": " << r.retries
       << ", \"message\": \"" << json_escape(r.message) << "\"}";
  }
  if (!records.empty()) os << "\n" << indent;
  os << "]";
  return os.str();
}

void write_quarantine_manifest(const std::string& path,
                               const std::string& source,
                               const std::vector<FailureRecord>& records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    IVT_THROW(Category::Io, "cannot open for write: " + path);
  }
  out << "{\n  \"source\": \"" << json_escape(source) << "\",\n"
      << "  \"quarantined\": " << records.size() << ",\n"
      << "  \"failures\": " << failures_to_json(records, "  ") << "\n}\n";
  if (!out) {
    IVT_THROW(Category::Io, "write failed: " + path);
  }
}

}  // namespace ivt::errors
