// Result<T>: value-or-Error propagation for APIs where a failure is an
// expected outcome rather than an exceptional one (probing files, parsing
// user-supplied specs). Keeps the typed taxonomy without forcing every
// caller through try/catch.
#pragma once

#include <optional>
#include <utility>

#include "errors/error.hpp"

namespace ivt::errors {

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}       // NOLINT(implicit)
  Result(Error error) : error_(std::move(error)) {}   // NOLINT(implicit)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Throws the carried Error when !ok().
  T& value() & {
    require();
    return *value_;
  }
  const T& value() const& {
    require();
    return *value_;
  }
  T&& value() && {
    require();
    return *std::move(value_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Only valid when !ok().
  [[nodiscard]] const Error& error() const { return *error_; }

  /// Runs `fn()` (returning T), converting a thrown Error into a Result.
  template <typename Fn>
  static Result<T> capture(Fn&& fn) {
    try {
      return Result<T>(fn());
    } catch (Error& e) {
      return Result<T>(std::move(e));
    }
  }

 private:
  void require() const {
    if (!ok()) throw Error(*error_);
  }

  std::optional<T> value_;
  std::optional<Error> error_;
};

}  // namespace ivt::errors
