// Typed error taxonomy for the whole pipeline.
//
// Every failure the system can encounter carries
//   - a Category (io, format, decode, spec, resource, overloaded,
//     timeout, internal) that recovery policies dispatch on (only
//     `resource`, `overloaded` and `timeout` are transient and worth
//     retrying; a corrupt chunk stays corrupt),
//   - a Severity (recoverable failures can be skipped/quarantined by an
//     ErrorPolicy, fatal ones always abort),
//   - the source location of the throw site, and
//   - a context chain: each layer that propagates the error prepends
//     "while <doing X>" frames, so a CLI user sees
//     `decode error at columnar_reader.cpp:301: ivc: bad RLE run length
//      (while decoding chunk 3 @ 0x1a40; while scanning trace.ivc)`.
//
// Error derives from std::runtime_error so legacy catch sites (and the
// seed's EXPECT_THROW(..., std::runtime_error) tests) keep working while
// call sites migrate.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ivt::errors {

enum class Category {
  Io,         ///< file open/read/write failures
  Format,     ///< malformed container structure (magic, footer, header)
  Decode,     ///< corrupt encoded payload inside a structurally valid file
  Spec,       ///< invalid catalog / signal specification
  Resource,   ///< exhaustion or contention; transient
  Overloaded, ///< admission control rejected the work; transient — retry
              ///< after a backoff (ivt-serve returns these when its
              ///< in-flight request window is saturated)
  Timeout,    ///< a peer missed a deadline (stalled socket, slow worker);
              ///< transient — the peer may recover, retry elsewhere
  Internal,   ///< invariant violation — a bug, never user data
};

enum class Severity {
  Recoverable,  ///< an ErrorPolicy may skip/quarantine the unit of work
  Fatal,        ///< always aborts the run regardless of policy
};

[[nodiscard]] std::string_view to_string(Category category);
[[nodiscard]] std::string_view to_string(Severity severity);

/// Parses the to_string(Category) names back; nullopt otherwise. The dist
/// wire protocol uses this to ship FailureRecords between processes.
[[nodiscard]] std::optional<Category> parse_category(std::string_view text);

/// Transient errors are worth a bounded retry (the failure may clear on
/// its own); persistent ones fail identically every attempt.
[[nodiscard]] constexpr bool is_transient(Category category) {
  return category == Category::Resource || category == Category::Overloaded ||
         category == Category::Timeout;
}

/// Throw-site capture (filled in by the IVT_THROW macro).
struct SourceLocation {
  const char* file = nullptr;
  int line = 0;
};

class Error : public std::runtime_error {
 public:
  Error(Category category, std::string message,
        SourceLocation location = {},
        Severity severity = Severity::Recoverable);

  [[nodiscard]] Category category() const { return category_; }
  [[nodiscard]] Severity severity() const { return severity_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] const SourceLocation& location() const { return location_; }
  [[nodiscard]] const std::vector<std::string>& context() const {
    return context_;
  }

  /// Append one "while <frame>" entry (innermost first). Returns *this so
  /// catch sites can `throw e.add_context(...)`-style chain.
  Error& add_context(std::string frame);

  /// Full rendering: category, location, message, context chain.
  [[nodiscard]] std::string describe() const;

  /// what() returns describe() (cached), so untyped catch sites still see
  /// the category and chain.
  [[nodiscard]] const char* what() const noexcept override;

 private:
  Category category_;
  Severity severity_;
  std::string message_;
  SourceLocation location_;
  std::vector<std::string> context_;
  mutable std::string rendered_;  ///< cache rebuilt after add_context
};

/// Throws an Error capturing the call site:
///   IVT_THROW(Category::Decode, "ivc: bad RLE run length");
#define IVT_THROW(category, ...)                                 \
  throw ::ivt::errors::Error((category), (__VA_ARGS__),          \
                             ::ivt::errors::SourceLocation{      \
                                 __FILE__, __LINE__})

/// Fatal variant — an ErrorPolicy must not swallow these.
#define IVT_THROW_FATAL(category, ...)                           \
  throw ::ivt::errors::Error((category), (__VA_ARGS__),          \
                             ::ivt::errors::SourceLocation{      \
                                 __FILE__, __LINE__},            \
                             ::ivt::errors::Severity::Fatal)

/// Run `fn`, stamping `frame` onto any Error that escapes it:
///   return with_context("loading " + path, [&] { return parse(path); });
template <typename Fn>
decltype(auto) with_context(std::string frame, Fn&& fn) {
  try {
    return fn();
  } catch (Error& e) {
    e.add_context(std::move(frame));
    throw;
  }
}

/// What to do when a unit of work (chunk, sequence, record) fails with a
/// recoverable Error.
enum class ErrorPolicy {
  Fail,        ///< rethrow: the whole run aborts (default)
  Skip,        ///< drop the unit, record the reason, keep going
  Quarantine,  ///< like Skip, plus persist a sidecar manifest of the
               ///< dropped units for later re-ingestion
};

[[nodiscard]] std::string_view to_string(ErrorPolicy policy);

/// Parses "fail" / "skip" / "quarantine"; nullopt otherwise.
[[nodiscard]] std::optional<ErrorPolicy> parse_error_policy(
    std::string_view text);

}  // namespace ivt::errors
