// Thread-safe log of recovered failures for one run.
//
// Recovery sites (skipped chunks, dropped sequences, retried tasks)
// append a FailureRecord instead of aborting; the CLI folds the log into
// the report JSON's "failures" section and — under --on-error=quarantine —
// writes it as a sidecar manifest (<input>.quarantine.json) so corrupt
// units can be re-ingested or inspected later.
//
// Every append also bumps the obs counters `errors.total`,
// `errors.category.<category>` and `errors.site.<site>`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "errors/error.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace ivt::errors {

/// One recovered (non-aborting) failure.
struct FailureRecord {
  std::string site;     ///< failpoint-style site name, e.g. "colstore.decode_chunk"
  std::string unit;     ///< what was dropped, e.g. "chunk 3 @ offset 6720"
  Category category = Category::Internal;
  std::string message;  ///< Error::describe() of the root cause
  std::size_t retries = 0;  ///< attempts before giving up (0 = no retry)
};

class FailureLog {
 public:
  void add(FailureRecord record) IVT_EXCLUDES(mutex_);

  /// Convenience: build the record from a caught Error.
  void add(const std::string& site, const std::string& unit, const Error& e,
           std::size_t retries = 0);

  [[nodiscard]] std::vector<FailureRecord> records() const
      IVT_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const IVT_EXCLUDES(mutex_);
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Append every record of `other` (merging per-subsystem logs).
  void merge(const FailureLog& other) IVT_EXCLUDES(mutex_);

 private:
  mutable support::Mutex mutex_{support::LockRank::k_errors_FailureLog_mutex_};
  std::vector<FailureRecord> records_ IVT_GUARDED_BY(mutex_);
};

/// Renders records as a JSON array (shared by the report's "failures"
/// section and the quarantine manifest).
[[nodiscard]] std::string failures_to_json(
    const std::vector<FailureRecord>& records, const std::string& indent);

/// Writes a quarantine manifest `{"source": ..., "failures": [...]}` to
/// `path`. Throws Error(Category::Io) when the file cannot be written.
void write_quarantine_manifest(const std::string& path,
                               const std::string& source,
                               const std::vector<FailureRecord>& records);

}  // namespace ivt::errors
