#include "errors/error.hpp"

#include <cstring>

namespace ivt::errors {

std::string_view to_string(Category category) {
  switch (category) {
    case Category::Io: return "io";
    case Category::Format: return "format";
    case Category::Decode: return "decode";
    case Category::Spec: return "spec";
    case Category::Resource: return "resource";
    case Category::Overloaded: return "overloaded";
    case Category::Timeout: return "timeout";
    case Category::Internal: return "internal";
  }
  return "unknown";
}

std::optional<Category> parse_category(std::string_view text) {
  if (text == "io") return Category::Io;
  if (text == "format") return Category::Format;
  if (text == "decode") return Category::Decode;
  if (text == "spec") return Category::Spec;
  if (text == "resource") return Category::Resource;
  if (text == "overloaded") return Category::Overloaded;
  if (text == "timeout") return Category::Timeout;
  if (text == "internal") return Category::Internal;
  return std::nullopt;
}

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::Recoverable: return "recoverable";
    case Severity::Fatal: return "fatal";
  }
  return "unknown";
}

std::string_view to_string(ErrorPolicy policy) {
  switch (policy) {
    case ErrorPolicy::Fail: return "fail";
    case ErrorPolicy::Skip: return "skip";
    case ErrorPolicy::Quarantine: return "quarantine";
  }
  return "unknown";
}

std::optional<ErrorPolicy> parse_error_policy(std::string_view text) {
  if (text == "fail") return ErrorPolicy::Fail;
  if (text == "skip") return ErrorPolicy::Skip;
  if (text == "quarantine") return ErrorPolicy::Quarantine;
  return std::nullopt;
}

Error::Error(Category category, std::string message, SourceLocation location,
             Severity severity)
    : std::runtime_error(message),
      category_(category),
      severity_(severity),
      message_(std::move(message)),
      location_(location) {}

Error& Error::add_context(std::string frame) {
  context_.push_back(std::move(frame));
  rendered_.clear();
  return *this;
}

std::string Error::describe() const {
  std::string out;
  out += to_string(category_);
  out += " error";
  if (location_.file != nullptr) {
    // Basename only: full build paths are noise in user-facing output.
    const char* base = location_.file;
    for (const char* p = location_.file; *p != '\0'; ++p) {
      if (*p == '/' || *p == '\\') base = p + 1;
    }
    out += " at ";
    out += base;
    out += ':';
    out += std::to_string(location_.line);
  }
  out += ": ";
  out += message_;
  if (!context_.empty()) {
    out += " (";
    for (std::size_t i = 0; i < context_.size(); ++i) {
      if (i > 0) out += "; ";
      out += "while ";
      out += context_[i];
    }
    out += ')';
  }
  return out;
}

const char* Error::what() const noexcept {
  try {
    if (rendered_.empty()) rendered_ = describe();
    return rendered_.c_str();
  } catch (...) {
    return std::runtime_error::what();
  }
}

}  // namespace ivt::errors
