#include "simnet/ecu.hpp"

#include <algorithm>
#include <cmath>

namespace ivt::simnet {

std::vector<std::uint8_t> encode_message_instance(TxMessage& tx,
                                                  std::int64_t t_ns,
                                                  std::mt19937_64& rng) {
  std::vector<std::uint8_t> payload(tx.message->payload_size, 0);
  for (SignalBinding& binding : tx.bindings) {
    const signaldb::SignalSpec& spec = *binding.spec;
    bool encode = true;
    if (!spec.presence.always) {
      // Make the optional member present most of the time; otherwise
      // write a different selector value so decoders must check it.
      const bool present =
          std::uniform_real_distribution<double>(0.0, 1.0)(rng) < 0.75;
      const std::uint64_t selector =
          present ? spec.presence.equals : spec.presence.equals + 1;
      protocol::insert_bits(payload, spec.presence.selector_start_bit,
                            spec.presence.selector_length,
                            spec.presence.selector_order, selector);
      encode = present;
    }
    if (!encode) continue;
    const double value = binding.process->next(t_ns);
    if (binding.process_emits_table_index && spec.is_categorical()) {
      const std::size_t max_index = spec.value_table.size() - 1;
      const std::size_t index = static_cast<std::size_t>(std::clamp(
          std::llround(value), 0LL, static_cast<long long>(max_index)));
      protocol::insert_bits(payload, spec.start_bit, spec.length,
                            spec.byte_order, spec.value_table[index].raw);
    } else {
      signaldb::encode_signal(payload, spec, value);
    }
  }
  return payload;
}

void Ecu::generate(std::int64_t start_ns, std::int64_t end_ns,
                   const FaultConfig& faults, std::uint64_t seed,
                   const std::function<void(tracefile::TraceRecord)>& sink) {
  std::uint64_t message_index = 0;
  for (TxMessage& tx : tx_) {
    // Independent stream per message, derived deterministically.
    std::mt19937_64 rng(seed ^ (0x9E3779B97F4A7C15ULL * (message_index + 1)));
    ++message_index;
    std::uniform_real_distribution<double> unit(0.0, 1.0);

    const bool cyclic = tx.period_ns > 0;
    const std::int64_t mean_gap =
        cyclic ? tx.period_ns
               : std::max<std::int64_t>(tx.event_mean_gap_ns, 1);

    // Random phase so messages do not all fire at t = start.
    std::int64_t t = start_ns + static_cast<std::int64_t>(
                                    unit(rng) * static_cast<double>(mean_gap));
    while (t < end_ns) {
      bool dropped = false;
      if (cyclic && faults.dropout_rate > 0.0 &&
          unit(rng) < faults.dropout_rate) {
        dropped = true;
      }
      if (!dropped) {
        tracefile::TraceRecord rec;
        rec.t_ns = t;
        rec.bus = tx.message->bus;
        rec.message_id = tx.message->message_id;
        rec.protocol = tx.message->protocol;
        rec.payload = encode_message_instance(tx, t, rng);
        if (faults.error_frame_rate > 0.0 &&
            unit(rng) < faults.error_frame_rate) {
          rec.flags |= tracefile::TraceRecord::kFlagErrorFrame;
        }
        sink(std::move(rec));
      }

      std::int64_t gap;
      if (cyclic) {
        gap = tx.period_ns;
        if (tx.jitter_ns > 0) {
          gap += static_cast<std::int64_t>(
              (unit(rng) * 2.0 - 1.0) * static_cast<double>(tx.jitter_ns));
        }
        if (faults.cycle_violation_rate > 0.0 &&
            unit(rng) < faults.cycle_violation_rate) {
          gap = static_cast<std::int64_t>(static_cast<double>(gap) *
                                          faults.violation_factor);
        }
      } else {
        std::exponential_distribution<double> exp_dist(
            1.0 / static_cast<double>(mean_gap));
        gap = static_cast<std::int64_t>(exp_dist(rng)) + 1;
      }
      t += std::max<std::int64_t>(gap, 1);
    }
  }
}

}  // namespace ivt::simnet
