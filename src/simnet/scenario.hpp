// Scripted scenarios: deterministic trace construction from a timeline of
// signal value changes.
//
// Where the stochastic simulator (ecu.hpp) answers "does the pipeline
// behave on realistic traffic", ScenarioBuilder answers "does it produce
// exactly THIS output for THIS story" — it drives golden tests and the
// paper-figure reproductions (e.g. Table 4's lights scenario).
//
// Usage:
//   ScenarioBuilder scenario(catalog);
//   scenario.set_label(2.0_s, "headlight", "off")
//           .set(4.0_s, "speed", 80.0)
//           .set_label(20.1_s, "headlight", "parklight on");
//   Trace trace = scenario.build(0, 25.0_s);
//
// Every message containing a scripted signal is emitted cyclically at its
// period (defaulting to the documented expected cycle of its signals);
// each instance encodes the timeline value current at emission time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "signaldb/catalog.hpp"
#include "tracefile/trace.hpp"

namespace ivt::simnet {

class ScenarioBuilder {
 public:
  /// The catalog must outlive the builder.
  explicit ScenarioBuilder(const signaldb::Catalog& catalog);

  /// Signal holds numeric `value` from t_ns onward. Throws
  /// std::invalid_argument for unknown signals.
  ScenarioBuilder& set(std::int64_t t_ns, const std::string& signal,
                       double value);

  /// Signal holds categorical `label` from t_ns onward. Throws for
  /// unknown signals or labels.
  ScenarioBuilder& set_label(std::int64_t t_ns, const std::string& signal,
                             const std::string& label);

  /// Override the emission period of a message (default: the minimum
  /// documented expected cycle among its signals, or 100 ms).
  ScenarioBuilder& message_period(const std::string& message_name,
                                  std::int64_t period_ns);

  /// Suppress emission of a message inside [from_ns, to_ns) — scripts a
  /// sender stall / cycle-time violation.
  ScenarioBuilder& blackout(const std::string& message_name,
                            std::int64_t from_ns, std::int64_t to_ns);

  /// Emit the trace over [start_ns, end_ns). Only messages with at least
  /// one scripted signal are emitted. Unscripted signals of an emitted
  /// message encode 0 / their first value-table entry.
  [[nodiscard]] tracefile::Trace build(std::int64_t start_ns,
                                       std::int64_t end_ns) const;

 private:
  struct Change {
    std::int64_t t_ns;
    double value;          // physical, or value-table raw for labels
    bool is_raw = false;   // true when `value` is a raw table code
  };
  struct Blackout {
    std::int64_t from_ns;
    std::int64_t to_ns;
  };

  const signaldb::SignalSpec& require_signal(const std::string& name,
                                             const signaldb::MessageSpec**
                                                 message_out) const;

  const signaldb::Catalog& catalog_;
  /// signal name -> sorted-on-build change list.
  std::map<std::string, std::vector<Change>> timelines_;
  std::map<std::string, std::int64_t> period_overrides_;
  std::map<std::string, std::vector<Blackout>> blackouts_;
};

}  // namespace ivt::simnet
