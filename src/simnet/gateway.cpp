#include "simnet/gateway.hpp"

namespace ivt::simnet {

std::vector<tracefile::TraceRecord> Gateway::apply(
    const std::vector<tracefile::TraceRecord>& records) const {
  std::vector<tracefile::TraceRecord> forwarded;
  for (const tracefile::TraceRecord& rec : records) {
    for (const Route& route : routes_) {
      if (rec.bus == route.from_bus && rec.message_id == route.message_id) {
        tracefile::TraceRecord copy = rec;
        copy.bus = route.to_bus;
        copy.t_ns += route.latency_ns;
        forwarded.push_back(std::move(copy));
      }
    }
  }
  return forwarded;
}

}  // namespace ivt::simnet
