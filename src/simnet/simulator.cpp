#include "simnet/simulator.hpp"

#include <algorithm>

namespace ivt::simnet {

tracefile::Trace NetworkSimulator::run(const SimulationConfig& config,
                                       const std::string& vehicle,
                                       const std::string& journey) {
  tracefile::Trace trace;
  trace.vehicle = vehicle;
  trace.journey = journey;
  trace.start_unix_ns = config.start_ns;

  std::vector<tracefile::TraceRecord> records;
  const std::int64_t end_ns = config.start_ns + config.duration_ns;
  std::uint64_t ecu_index = 0;
  for (Ecu& ecu : ecus_) {
    const std::uint64_t ecu_seed =
        config.seed * 0x100000001B3ULL + (++ecu_index);
    ecu.generate(config.start_ns, end_ns, config.faults, ecu_seed,
                 [&records](tracefile::TraceRecord rec) {
                   records.push_back(std::move(rec));
                 });
  }

  for (const Gateway& gw : gateways_) {
    std::vector<tracefile::TraceRecord> forwarded = gw.apply(records);
    records.insert(records.end(),
                   std::make_move_iterator(forwarded.begin()),
                   std::make_move_iterator(forwarded.end()));
  }

  std::stable_sort(records.begin(), records.end(),
                   [](const tracefile::TraceRecord& a,
                      const tracefile::TraceRecord& b) {
                     return a.t_ns < b.t_ns;
                   });
  trace.records = std::move(records);
  return trace;
}

}  // namespace ivt::simnet
