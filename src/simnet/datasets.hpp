// Procedural vehicle models reproducing the paper's three data sets.
//
// Paper Table 5 characterizes SYN / LIG / STA by signal-type counts, the
// α/β/γ branch split, example (signal instance) counts over a 20 h
// recording and the mean number of signal types per message. The planners
// here build a catalog + ECU/gateway model whose simulated trace matches
// those statistics; `DatasetConfig::scale` shrinks the recording duration
// (examples scale linearly) so benches run at laptop scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "signaldb/catalog.hpp"
#include "simnet/simulator.hpp"
#include "tracefile/trace.hpp"

namespace ivt::simnet {

/// Planned waveform family of one signal (drives both the SignalSpec
/// generation and the ValueProcess selection).
enum class SignalKind : std::uint8_t {
  AlphaNumeric,   ///< high-rate numeric (branch α)
  BetaNumeric,    ///< low-rate numeric ordinal (branch β)
  BetaString,     ///< string ordinal with valence (branch β)
  GammaBinary,    ///< two-valued (branch γ)
  GammaNominal,   ///< unordered categorical (branch γ)
};

/// Static description of a data set (paper Table 5 row).
struct DatasetSpec {
  std::string name;
  std::size_t alpha = 0;
  std::size_t beta_numeric = 0;
  std::size_t beta_string = 0;
  std::size_t gamma_binary = 0;
  std::size_t gamma_nominal = 0;
  /// Mean signal types per message (∅ row of Table 5).
  double signals_per_message = 2.0;
  /// Signal instances over the full recording (Table 5 "# examples").
  std::size_t target_examples = 1'000'000;
  /// Full recording length (paper: 20 h of driving).
  std::int64_t full_duration_ns = 20LL * 3600 * 1'000'000'000LL;

  [[nodiscard]] std::size_t total_signals() const {
    return alpha + beta_numeric + beta_string + gamma_binary + gamma_nominal;
  }
};

/// The paper's three data sets (signal counts from Table 5; the γ count is
/// split between binary and nominal).
DatasetSpec syn_spec();
DatasetSpec lig_spec();
DatasetSpec sta_spec();

struct DatasetConfig {
  /// Fraction of the full 20 h recording to simulate.
  double scale = 0.001;
  std::uint64_t seed = 42;
  bool inject_faults = true;
};

/// Plan of one message: rebuildable ECU behaviour (used to regenerate
/// fresh, independent journeys from the same vehicle).
struct MessagePlan {
  std::size_t message_index = 0;  ///< into catalog.messages()
  std::int64_t period_ns = 0;
  std::int64_t jitter_ns = 0;
  std::vector<SignalKind> signal_kinds;  ///< parallel to message signals
  std::uint64_t seed = 0;
};

/// A full vehicle model: catalog + per-message plans + gateway routes.
struct VehiclePlan {
  signaldb::Catalog catalog;
  std::vector<MessagePlan> messages;
  std::vector<Route> gateway_routes;
  /// Rate threshold (Hz) separating the planned high-rate (α) from
  /// low-rate message periods — feed this to the classifier's z_rate
  /// criterion (the paper: "a threshold T determined by domain knowledge").
  double recommended_rate_threshold_hz = 5.0;
};

/// Deterministically derive a vehicle model from a dataset spec. Message
/// periods are calibrated so the expected number of signal instances over
/// `spec.full_duration_ns` matches `spec.target_examples`.
VehiclePlan plan_vehicle(const DatasetSpec& spec, std::uint64_t seed);

/// Build a ready-to-run simulator for one journey of the planned vehicle.
/// Different `journey_seed`s give statistically independent journeys.
/// `duration_hint_ns` (the journey length about to be simulated) scales
/// the level-change dynamics of ordinal/nominal signals so every signal
/// type visits several of its states within the journey — without it, a
/// strongly scaled-down journey would leave slow signals constant and
/// distort the α/β/γ statistics of Table 5. 0 falls back to
/// period-relative dwell times.
NetworkSimulator build_simulator(const VehiclePlan& plan,
                                 std::uint64_t journey_seed,
                                 bool inject_faults,
                                 std::int64_t duration_hint_ns = 0);

/// One generated data set: catalog, a simulated journey trace, and the
/// data set's relevant-signal selection (its U_comb — the paper extracts
/// every signal type of the data set).
struct Dataset {
  std::string name;
  signaldb::Catalog catalog;
  tracefile::Trace trace;
  std::vector<std::string> signal_names;
};

Dataset make_dataset(const DatasetSpec& spec, const DatasetConfig& config);
Dataset make_syn_dataset(const DatasetConfig& config = {});
Dataset make_lig_dataset(const DatasetConfig& config = {});
Dataset make_sta_dataset(const DatasetConfig& config = {});

/// Multi-journey fleet recording (the input to the paper's Table 6).
struct Fleet {
  signaldb::Catalog catalog;
  std::vector<tracefile::Trace> journeys;
  std::vector<std::string> signal_names;
};

Fleet make_fleet(std::size_t num_journeys, const DatasetSpec& spec,
                 const DatasetConfig& config);

}  // namespace ivt::simnet
