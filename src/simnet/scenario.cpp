#include "simnet/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace ivt::simnet {

ScenarioBuilder::ScenarioBuilder(const signaldb::Catalog& catalog)
    : catalog_(catalog) {}

const signaldb::SignalSpec& ScenarioBuilder::require_signal(
    const std::string& name, const signaldb::MessageSpec** message_out) const {
  const signaldb::SignalRef ref = catalog_.find_signal(name);
  if (!ref.valid()) {
    throw std::invalid_argument("scenario: unknown signal '" + name + "'");
  }
  if (message_out != nullptr) *message_out = ref.message;
  return *ref.signal;
}

ScenarioBuilder& ScenarioBuilder::set(std::int64_t t_ns,
                                      const std::string& signal,
                                      double value) {
  require_signal(signal, nullptr);
  timelines_[signal].push_back(Change{t_ns, value, false});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::set_label(std::int64_t t_ns,
                                            const std::string& signal,
                                            const std::string& label) {
  const signaldb::SignalSpec& spec = require_signal(signal, nullptr);
  const auto raw = spec.find_raw(label);
  if (!raw) {
    throw std::invalid_argument("scenario: unknown label '" + label +
                                "' for signal '" + signal + "'");
  }
  timelines_[signal].push_back(
      Change{t_ns, static_cast<double>(*raw), true});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::message_period(
    const std::string& message_name, std::int64_t period_ns) {
  if (catalog_.find_message_by_name(message_name) == nullptr) {
    throw std::invalid_argument("scenario: unknown message '" + message_name +
                                "'");
  }
  period_overrides_[message_name] = period_ns;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::blackout(const std::string& message_name,
                                           std::int64_t from_ns,
                                           std::int64_t to_ns) {
  if (catalog_.find_message_by_name(message_name) == nullptr) {
    throw std::invalid_argument("scenario: unknown message '" + message_name +
                                "'");
  }
  blackouts_[message_name].push_back(Blackout{from_ns, to_ns});
  return *this;
}

tracefile::Trace ScenarioBuilder::build(std::int64_t start_ns,
                                        std::int64_t end_ns) const {
  tracefile::Trace trace;
  trace.vehicle = "SCENARIO";
  trace.journey = "S1";

  for (const signaldb::MessageSpec& message : catalog_.messages()) {
    // Emit only messages with at least one scripted signal.
    bool scripted = false;
    for (const signaldb::SignalSpec& s : message.signals) {
      if (timelines_.contains(s.name)) {
        scripted = true;
        break;
      }
    }
    if (!scripted) continue;

    // Period: override > min documented cycle > 100 ms.
    std::int64_t period = 100'000'000;
    if (const auto it = period_overrides_.find(message.name);
        it != period_overrides_.end()) {
      period = it->second;
    } else {
      std::int64_t min_cycle = 0;
      for (const signaldb::SignalSpec& s : message.signals) {
        if (s.expected_cycle_ns > 0 &&
            (min_cycle == 0 || s.expected_cycle_ns < min_cycle)) {
          min_cycle = s.expected_cycle_ns;
        }
      }
      if (min_cycle > 0) period = min_cycle;
    }
    if (period <= 0) {
      throw std::invalid_argument("scenario: non-positive period for '" +
                                  message.name + "'");
    }

    // Sorted per-signal timelines.
    struct SignalTimeline {
      const signaldb::SignalSpec* spec;
      std::vector<Change> changes;  // sorted by t
    };
    std::vector<SignalTimeline> timelines;
    for (const signaldb::SignalSpec& s : message.signals) {
      SignalTimeline tl;
      tl.spec = &s;
      if (const auto it = timelines_.find(s.name); it != timelines_.end()) {
        tl.changes = it->second;
        std::stable_sort(tl.changes.begin(), tl.changes.end(),
                         [](const Change& a, const Change& b) {
                           return a.t_ns < b.t_ns;
                         });
      }
      timelines.push_back(std::move(tl));
    }

    const std::vector<Blackout>* blackout_list = nullptr;
    if (const auto it = blackouts_.find(message.name);
        it != blackouts_.end()) {
      blackout_list = &it->second;
    }

    for (std::int64_t t = start_ns; t < end_ns; t += period) {
      if (blackout_list != nullptr) {
        bool dark = false;
        for (const Blackout& b : *blackout_list) {
          if (t >= b.from_ns && t < b.to_ns) {
            dark = true;
            break;
          }
        }
        if (dark) continue;
      }
      tracefile::TraceRecord rec;
      rec.t_ns = t;
      rec.bus = message.bus;
      rec.message_id = message.message_id;
      rec.protocol = message.protocol;
      rec.payload.assign(message.payload_size, 0);
      for (const SignalTimeline& tl : timelines) {
        // Last change at or before t (default: 0 / first table entry).
        const Change* current = nullptr;
        for (const Change& change : tl.changes) {
          if (change.t_ns <= t) {
            current = &change;
          } else {
            break;
          }
        }
        if (current == nullptr) {
          if (tl.spec->is_categorical()) {
            protocol::insert_bits(rec.payload, tl.spec->start_bit,
                                  tl.spec->length, tl.spec->byte_order,
                                  tl.spec->value_table.front().raw);
          } else {
            signaldb::encode_signal(rec.payload, *tl.spec, 0.0);
          }
          continue;
        }
        if (current->is_raw) {
          protocol::insert_bits(rec.payload, tl.spec->start_bit,
                                tl.spec->length, tl.spec->byte_order,
                                static_cast<std::uint64_t>(current->value));
        } else {
          signaldb::encode_signal(rec.payload, *tl.spec, current->value);
        }
      }
      trace.records.push_back(std::move(rec));
    }
  }

  std::stable_sort(trace.records.begin(), trace.records.end(),
                   [](const tracefile::TraceRecord& a,
                      const tracefile::TraceRecord& b) {
                     return a.t_ns < b.t_ns;
                   });
  return trace;
}

}  // namespace ivt::simnet
