#include "simnet/value_process.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ivt::simnet {

namespace {

class Constant final : public ValueProcess {
 public:
  explicit Constant(double value) : value_(value) {}
  double next(std::int64_t) override { return value_; }

 private:
  double value_;
};

class Sine final : public ValueProcess {
 public:
  Sine(double amplitude, double offset, std::int64_t period_ns, double phase)
      : amplitude_(amplitude),
        offset_(offset),
        period_ns_(period_ns > 0 ? period_ns : 1),
        phase_(phase) {}

  double next(std::int64_t t_ns) override {
    const double x = 2.0 * std::numbers::pi *
                         static_cast<double>(t_ns % period_ns_) /
                         static_cast<double>(period_ns_) +
                     phase_;
    return offset_ + amplitude_ * std::sin(x);
  }

 private:
  double amplitude_;
  double offset_;
  std::int64_t period_ns_;
  double phase_;
};

class Ramp final : public ValueProcess {
 public:
  Ramp(double low, double high, std::int64_t period_ns)
      : low_(low), high_(high), period_ns_(period_ns > 0 ? period_ns : 1) {}

  double next(std::int64_t t_ns) override {
    const double frac = static_cast<double>(t_ns % period_ns_) /
                        static_cast<double>(period_ns_);
    return low_ + (high_ - low_) * frac;
  }

 private:
  double low_;
  double high_;
  std::int64_t period_ns_;
};

class RandomWalk final : public ValueProcess {
 public:
  RandomWalk(double initial, double step, double min_value, double max_value,
             std::uint64_t seed)
      : value_(initial),
        min_(min_value),
        max_(max_value),
        dist_(-step, step),
        rng_(seed) {}

  double next(std::int64_t) override {
    value_ = std::clamp(value_ + dist_(rng_), min_, max_);
    return value_;
  }

 private:
  double value_;
  double min_;
  double max_;
  std::uniform_real_distribution<double> dist_;
  std::mt19937_64 rng_;
};

class StepLevels final : public ValueProcess {
 public:
  StepLevels(std::vector<double> levels, std::int64_t mean_dwell_ns,
             bool neighbour_jumps, std::uint64_t seed)
      : levels_(std::move(levels)),
        mean_dwell_ns_(std::max<std::int64_t>(mean_dwell_ns, 1)),
        neighbour_jumps_(neighbour_jumps),
        rng_(seed) {
    if (levels_.empty()) levels_.push_back(0.0);
    index_ = std::uniform_int_distribution<std::size_t>(
        0, levels_.size() - 1)(rng_);
  }

  double next(std::int64_t t_ns) override {
    while (t_ns >= next_jump_ns_) {
      schedule_jump();
      jump();
    }
    return levels_[index_];
  }

 private:
  void schedule_jump() {
    std::exponential_distribution<double> exp_dist(
        1.0 / static_cast<double>(mean_dwell_ns_));
    next_jump_ns_ += static_cast<std::int64_t>(exp_dist(rng_)) + 1;
  }

  void jump() {
    if (levels_.size() < 2) return;
    if (neighbour_jumps_) {
      if (index_ == 0) {
        ++index_;
      } else if (index_ == levels_.size() - 1) {
        --index_;
      } else {
        index_ += std::uniform_int_distribution<int>(0, 1)(rng_) ? 1 : -1;
      }
      return;
    }
    std::size_t target = std::uniform_int_distribution<std::size_t>(
        0, levels_.size() - 2)(rng_);
    if (target >= index_) ++target;
    index_ = target;
  }

  std::vector<double> levels_;
  std::int64_t mean_dwell_ns_;
  bool neighbour_jumps_;
  std::mt19937_64 rng_;
  std::size_t index_ = 0;
  std::int64_t next_jump_ns_ = 0;
};

class DutyCycle final : public ValueProcess {
 public:
  DutyCycle(std::int64_t mean_on_ns, std::int64_t mean_off_ns,
            std::uint64_t seed)
      : mean_on_ns_(std::max<std::int64_t>(mean_on_ns, 1)),
        mean_off_ns_(std::max<std::int64_t>(mean_off_ns, 1)),
        rng_(seed) {}

  double next(std::int64_t t_ns) override {
    while (t_ns >= next_flip_ns_) {
      on_ = !on_;
      std::exponential_distribution<double> exp_dist(
          1.0 / static_cast<double>(on_ ? mean_on_ns_ : mean_off_ns_));
      next_flip_ns_ += static_cast<std::int64_t>(exp_dist(rng_)) + 1;
    }
    return on_ ? 1.0 : 0.0;
  }

 private:
  std::int64_t mean_on_ns_;
  std::int64_t mean_off_ns_;
  std::mt19937_64 rng_;
  bool on_ = false;
  std::int64_t next_flip_ns_ = 0;
};

class MarkovChain final : public ValueProcess {
 public:
  MarkovChain(std::size_t num_states, double switch_probability,
              std::uint64_t seed)
      : num_states_(std::max<std::size_t>(num_states, 1)),
        switch_probability_(std::clamp(switch_probability, 0.0, 1.0)),
        rng_(seed) {}

  double next(std::int64_t) override {
    if (num_states_ > 1 &&
        std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
            switch_probability_) {
      std::size_t target = std::uniform_int_distribution<std::size_t>(
          0, num_states_ - 2)(rng_);
      if (target >= state_) ++target;
      state_ = target;
    }
    return static_cast<double>(state_);
  }

 private:
  std::size_t num_states_;
  double switch_probability_;
  std::mt19937_64 rng_;
  std::size_t state_ = 0;
};

class OutlierInjector final : public ValueProcess {
 public:
  OutlierInjector(std::unique_ptr<ValueProcess> inner, double rate,
                  double gain, double kick, std::uint64_t seed)
      : inner_(std::move(inner)),
        rate_(std::clamp(rate, 0.0, 1.0)),
        gain_(gain),
        kick_(kick),
        rng_(seed) {}

  double next(std::int64_t t_ns) override {
    const double value = inner_->next(t_ns);
    if (std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < rate_) {
      return value * gain_ + kick_;
    }
    return value;
  }

 private:
  std::unique_ptr<ValueProcess> inner_;
  double rate_;
  double gain_;
  double kick_;
  std::mt19937_64 rng_;
};

class Quantizer final : public ValueProcess {
 public:
  Quantizer(std::unique_ptr<ValueProcess> inner, double step)
      : inner_(std::move(inner)), step_(step > 0.0 ? step : 1.0) {}

  double next(std::int64_t t_ns) override {
    return std::round(inner_->next(t_ns) / step_) * step_;
  }

 private:
  std::unique_ptr<ValueProcess> inner_;
  double step_;
};

}  // namespace

std::unique_ptr<ValueProcess> make_constant(double value) {
  return std::make_unique<Constant>(value);
}

std::unique_ptr<ValueProcess> make_sine(double amplitude, double offset,
                                        std::int64_t period_ns, double phase) {
  return std::make_unique<Sine>(amplitude, offset, period_ns, phase);
}

std::unique_ptr<ValueProcess> make_ramp(double low, double high,
                                        std::int64_t period_ns) {
  return std::make_unique<Ramp>(low, high, period_ns);
}

std::unique_ptr<ValueProcess> make_random_walk(double initial, double step,
                                               double min_value,
                                               double max_value,
                                               std::uint64_t seed) {
  return std::make_unique<RandomWalk>(initial, step, min_value, max_value,
                                      seed);
}

std::unique_ptr<ValueProcess> make_step_levels(std::vector<double> levels,
                                               std::int64_t mean_dwell_ns,
                                               bool neighbour_jumps,
                                               std::uint64_t seed) {
  return std::make_unique<StepLevels>(std::move(levels), mean_dwell_ns,
                                      neighbour_jumps, seed);
}

std::unique_ptr<ValueProcess> make_duty_cycle(std::int64_t mean_on_ns,
                                              std::int64_t mean_off_ns,
                                              std::uint64_t seed) {
  return std::make_unique<DutyCycle>(mean_on_ns, mean_off_ns, seed);
}

std::unique_ptr<ValueProcess> make_markov_chain(std::size_t num_states,
                                                double switch_probability,
                                                std::uint64_t seed) {
  return std::make_unique<MarkovChain>(num_states, switch_probability, seed);
}

std::unique_ptr<ValueProcess> make_outlier_injector(
    std::unique_ptr<ValueProcess> inner, double rate, double gain,
    double kick, std::uint64_t seed) {
  return std::make_unique<OutlierInjector>(std::move(inner), rate, gain, kick,
                                           seed);
}

std::unique_ptr<ValueProcess> make_quantizer(
    std::unique_ptr<ValueProcess> inner, double step) {
  return std::make_unique<Quantizer>(std::move(inner), step);
}

}  // namespace ivt::simnet
