// Network simulator: merges all ECU transmissions and gateway forwards
// into one time-ordered journey trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/ecu.hpp"
#include "simnet/gateway.hpp"
#include "tracefile/trace.hpp"

namespace ivt::simnet {

struct SimulationConfig {
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 60LL * 1'000'000'000LL;  ///< 60 s default
  FaultConfig faults;
  std::uint64_t seed = 1;
};

class NetworkSimulator {
 public:
  void add_ecu(Ecu ecu) { ecus_.push_back(std::move(ecu)); }
  void add_gateway(Gateway gateway) {
    gateways_.push_back(std::move(gateway));
  }

  [[nodiscard]] std::size_t num_ecus() const { return ecus_.size(); }

  /// Run one journey. Deterministic for fixed config. ECU processes are
  /// stateful, so each run continues their processes; construct a fresh
  /// simulator per journey for independent journeys.
  tracefile::Trace run(const SimulationConfig& config,
                       const std::string& vehicle,
                       const std::string& journey);

 private:
  std::vector<Ecu> ecus_;
  std::vector<Gateway> gateways_;
};

}  // namespace ivt::simnet
