// Gateway: forwards selected messages between buses.
//
// Routed messages appear a second time in the trace on the destination
// channel with a small forwarding latency — exactly the duplication the
// paper's signal splitter exploits ("when signals are forwarded through
// gateways they are recorded multiple times in the trace").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tracefile/trace.hpp"

namespace ivt::simnet {

struct Route {
  std::string from_bus;
  std::int64_t message_id = 0;
  std::string to_bus;
  std::int64_t latency_ns = 100'000;  ///< typical gateway store&forward time
};

class Gateway {
 public:
  explicit Gateway(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  void add_route(Route route) { routes_.push_back(std::move(route)); }
  [[nodiscard]] const std::vector<Route>& routes() const { return routes_; }

  /// Forwarded copies for every input record that matches a route. The
  /// copy keeps payload and m_id, changes b_id and shifts t by latency.
  [[nodiscard]] std::vector<tracefile::TraceRecord> apply(
      const std::vector<tracefile::TraceRecord>& records) const;

 private:
  std::string name_;
  std::vector<Route> routes_;
};

}  // namespace ivt::simnet
