#include "simnet/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "protocol/can.hpp"

namespace ivt::simnet {

namespace {

constexpr std::int64_t kMs = 1'000'000;

/// Buses of the modelled vehicle, cycled over messages.
struct BusSlot {
  const char* name;
  protocol::Protocol protocol;
};
constexpr BusSlot kBusMenu[] = {
    {"FC", protocol::Protocol::Can},      // body CAN (paper's FA-CAN)
    {"KC", protocol::Protocol::Can},      // comfort CAN
    {"DC", protocol::Protocol::Can},      // drive CAN
    {"K-LIN", protocol::Protocol::Lin},   // paper Table 1
    {"IP", protocol::Protocol::SomeIp},   // ethernet backbone
};

/// Field width (bits) per signal kind.
std::uint16_t kind_bits(SignalKind kind) {
  switch (kind) {
    case SignalKind::AlphaNumeric:
      return 16;
    case SignalKind::BetaNumeric:
      return 8;
    case SignalKind::BetaString:
      return 8;
    case SignalKind::GammaBinary:
      return 2;
    case SignalKind::GammaNominal:
      return 8;
  }
  return 8;
}

bool is_alpha(SignalKind k) { return k == SignalKind::AlphaNumeric; }
bool is_beta(SignalKind k) {
  return k == SignalKind::BetaNumeric || k == SignalKind::BetaString;
}

signaldb::SignalSpec make_signal_spec(SignalKind kind, const std::string& name,
                                      std::uint16_t start_bit,
                                      std::mt19937_64& rng) {
  signaldb::SignalSpec s;
  s.name = name;
  s.start_bit = start_bit;
  s.length = kind_bits(kind);
  s.byte_order = (rng() % 4 == 0) ? protocol::ByteOrder::Motorola
                                  : protocol::ByteOrder::Intel;
  switch (kind) {
    case SignalKind::AlphaNumeric: {
      constexpr double kScales[] = {0.01, 0.1, 0.25, 0.5};
      s.value_kind = signaldb::ValueKind::Unsigned;
      s.transform.scale = kScales[rng() % 4];
      s.transform.offset = 0.0;
      s.unit = "u";
      s.min_value = 0.0;
      s.max_value = s.transform.apply(65535.0);
      s.comment = "high-rate functional value";
      break;
    }
    case SignalKind::BetaNumeric: {
      s.value_kind = signaldb::ValueKind::Unsigned;
      s.transform.scale = 1.0;
      s.unit = "level";
      s.min_value = 0.0;
      s.max_value = 20.0;
      s.comment = "low-rate ordinal level";
      break;
    }
    case SignalKind::BetaString: {
      s.value_kind = signaldb::ValueKind::Unsigned;
      s.ordered_values = true;
      s.value_table = {
          {0, "off", false},      {1, "low", false},  {2, "medium", false},
          {3, "high", false},     {14, "snv", true},  // signal not valid
      };
      s.comment = "ordinal state with valence";
      break;
    }
    case SignalKind::GammaBinary: {
      s.value_kind = signaldb::ValueKind::Unsigned;
      s.value_table = {{0, "OFF", false}, {1, "ON", false}};
      s.comment = "binary contact";
      break;
    }
    case SignalKind::GammaNominal: {
      s.value_kind = signaldb::ValueKind::Unsigned;
      const std::size_t states = 3 + rng() % 3;  // 3..5 functional states
      static const char* kStates[] = {"init",    "driving", "parking",
                                      "standby", "charging"};
      for (std::size_t i = 0; i < states; ++i) {
        s.value_table.push_back({i, kStates[i], false});
      }
      s.value_table.push_back({15, "invalid", true});
      s.comment = "nominal mode";
      break;
    }
  }
  return s;
}

std::int64_t pick_period(SignalKind dominant, std::mt19937_64& rng) {
  if (is_alpha(dominant)) {
    constexpr std::int64_t kMenu[] = {20 * kMs, 40 * kMs, 50 * kMs, 100 * kMs};
    return kMenu[rng() % 4];
  }
  if (is_beta(dominant)) {
    constexpr std::int64_t kMenu[] = {200 * kMs, 500 * kMs, 1000 * kMs};
    return kMenu[rng() % 3];
  }
  constexpr std::int64_t kMenu[] = {100 * kMs, 200 * kMs, 500 * kMs};
  return kMenu[rng() % 3];
}

}  // namespace

DatasetSpec syn_spec() {
  DatasetSpec spec;
  spec.name = "SYN";
  spec.alpha = 6;
  spec.beta_numeric = 2;
  spec.beta_string = 2;
  spec.gamma_binary = 2;
  spec.gamma_nominal = 1;
  spec.signals_per_message = 1.47;
  spec.target_examples = 13'197'983;
  return spec;
}

DatasetSpec lig_spec() {
  DatasetSpec spec;
  spec.name = "LIG";
  spec.alpha = 27;
  spec.beta_numeric = 35;
  spec.beta_string = 36;
  spec.gamma_binary = 41;
  spec.gamma_nominal = 41;
  spec.signals_per_message = 5.11;
  spec.target_examples = 12'306'327;
  return spec;
}

DatasetSpec sta_spec() {
  DatasetSpec spec;
  spec.name = "STA";
  spec.alpha = 6;
  spec.beta_numeric = 0;
  spec.beta_string = 1;
  spec.gamma_binary = 36;
  spec.gamma_nominal = 35;
  spec.signals_per_message = 3.66;
  spec.target_examples = 4'807'891;
  return spec;
}

VehiclePlan plan_vehicle(const DatasetSpec& spec, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  VehiclePlan plan;

  // 1. All planned signals, shuffled so kinds mix across messages.
  std::vector<SignalKind> kinds;
  auto add_kinds = [&kinds](SignalKind kind, std::size_t n) {
    kinds.insert(kinds.end(), n, kind);
  };
  add_kinds(SignalKind::AlphaNumeric, spec.alpha);
  add_kinds(SignalKind::BetaNumeric, spec.beta_numeric);
  add_kinds(SignalKind::BetaString, spec.beta_string);
  add_kinds(SignalKind::GammaBinary, spec.gamma_binary);
  add_kinds(SignalKind::GammaNominal, spec.gamma_nominal);
  std::shuffle(kinds.begin(), kinds.end(), rng);

  // 2. Message sizes: >= 1 signal each, mean ≈ signals_per_message.
  const std::size_t total = kinds.size();
  std::size_t num_messages = static_cast<std::size_t>(std::llround(
      static_cast<double>(total) / std::max(spec.signals_per_message, 1.0)));
  num_messages = std::clamp<std::size_t>(num_messages, 1, total);
  std::vector<std::size_t> sizes(num_messages, 1);
  for (std::size_t extra = total - num_messages; extra > 0; --extra) {
    sizes[rng() % num_messages] += 1;
  }

  // 3. Build messages (into a local vector; the catalog is filled after
  //    calibration so expected cycle times are final when added).
  std::vector<signaldb::MessageSpec> specs;
  std::size_t kind_cursor = 0;
  std::int64_t next_can_id = 0x100;
  std::int64_t next_lin_id = 0x01;
  std::int64_t next_someip_method = 0x0001;
  std::size_t signal_counter = 0;

  for (std::size_t mi = 0; mi < num_messages; ++mi) {
    const std::size_t n_signals = sizes[mi];
    std::vector<SignalKind> msg_kinds(
        kinds.begin() + static_cast<std::ptrdiff_t>(kind_cursor),
        kinds.begin() + static_cast<std::ptrdiff_t>(kind_cursor + n_signals));
    kind_cursor += n_signals;

    // Bits needed (SOME/IP optional members carry an extra selector byte).
    std::size_t bits = 0;
    for (SignalKind k : msg_kinds) bits += kind_bits(k);

    BusSlot slot = kBusMenu[mi % std::size(kBusMenu)];
    // LIN frames carry at most 8 bytes; spill large messages onto CAN.
    if (slot.protocol == protocol::Protocol::Lin &&
        (bits > 64 || next_lin_id > 0x3F)) {
      slot = kBusMenu[0];
    }
    const bool someip = slot.protocol == protocol::Protocol::SomeIp;
    const bool conditional_last = someip && msg_kinds.size() >= 2;
    if (conditional_last) bits += 8;  // selector byte

    signaldb::MessageSpec message;
    message.bus = slot.name;
    message.protocol = slot.protocol;
    if (message.protocol == protocol::Protocol::Can && bits > 64) {
      message.protocol = protocol::Protocol::CanFd;
    }
    message.payload_size = (bits + 7) / 8;
    if (message.protocol == protocol::Protocol::CanFd) {
      message.payload_size = protocol::can_fd_dlc_to_length(
          protocol::can_fd_length_to_dlc(message.payload_size));
    }
    message.name = spec.name + "_MSG_" + std::to_string(mi);
    switch (message.protocol) {
      case protocol::Protocol::Can:
      case protocol::Protocol::CanFd:
      case protocol::Protocol::FlexRay:
        message.message_id = next_can_id++;
        break;
      case protocol::Protocol::Lin:
        message.message_id = next_lin_id++;
        break;
      case protocol::Protocol::SomeIp:
        message.message_id =
            (0x4000LL << 16) | next_someip_method++;
        break;
    }

    // Allocate fields left to right.
    std::uint16_t bit_cursor = 0;
    for (std::size_t si = 0; si < msg_kinds.size(); ++si) {
      const bool is_last = si + 1 == msg_kinds.size();
      std::string name = spec.name + "_s" + std::to_string(signal_counter++);
      std::uint16_t selector_bit = 0;
      if (conditional_last && is_last) {
        selector_bit = bit_cursor;
        bit_cursor = static_cast<std::uint16_t>(bit_cursor + 8);
      }
      signaldb::SignalSpec s =
          make_signal_spec(msg_kinds[si], name, bit_cursor, rng);
      // Motorola start bit must address the field MSB; for simplicity the
      // generator keeps byte-aligned Motorola fields only.
      if (s.byte_order == protocol::ByteOrder::Motorola) {
        if (bit_cursor % 8 != 0 || s.length % 8 != 0) {
          s.byte_order = protocol::ByteOrder::Intel;
        } else {
          s.start_bit = static_cast<std::uint16_t>(bit_cursor + 7);
        }
      }
      if (conditional_last && is_last) {
        s.presence.always = false;
        s.presence.selector_start_bit = selector_bit;
        s.presence.selector_length = 8;
        s.presence.selector_order = protocol::ByteOrder::Intel;
        s.presence.equals = 1;
      }
      bit_cursor = static_cast<std::uint16_t>(bit_cursor +
                                              kind_bits(msg_kinds[si]));
      message.signals.push_back(std::move(s));
    }

    MessagePlan mplan;
    mplan.message_index = mi;
    mplan.signal_kinds = msg_kinds;
    mplan.seed = rng();
    // Dominant kind: α > β > γ.
    SignalKind dominant = msg_kinds.front();
    for (SignalKind k : msg_kinds) {
      if (is_alpha(k)) dominant = k;
      if (is_beta(k) && !is_alpha(dominant)) dominant = k;
    }
    mplan.period_ns = pick_period(dominant, rng);
    mplan.jitter_ns = mplan.period_ns / 50;

    plan.messages.push_back(std::move(mplan));
    specs.push_back(std::move(message));
  }

  // 4. Calibrate periods so expected examples over the full recording hit
  //    the Table 5 target.
  double expected = 0.0;
  for (const MessagePlan& mp : plan.messages) {
    const signaldb::MessageSpec& m = specs[mp.message_index];
    double per_instance = 0.0;
    for (const signaldb::SignalSpec& s : m.signals) {
      per_instance += s.presence.always ? 1.0 : 0.75;
    }
    expected += static_cast<double>(spec.full_duration_ns) /
                static_cast<double>(mp.period_ns) * per_instance;
  }
  const double ratio =
      expected / std::max<double>(1.0, static_cast<double>(
                                           spec.target_examples));
  for (MessagePlan& mp : plan.messages) {
    mp.period_ns = std::max<std::int64_t>(
        kMs, static_cast<std::int64_t>(
                 static_cast<double>(mp.period_ns) * ratio));
    mp.jitter_ns = mp.period_ns / 50;
  }

  // 5. Propagate the calibrated cycle into the catalog as the documented
  //    expected cycle time (domain knowledge for constraints/extensions),
  //    and derive the α/L rate threshold.
  double min_alpha_hz = 1e12;
  double max_slow_hz = 0.0;
  for (const MessagePlan& mp : plan.messages) {
    signaldb::MessageSpec& m = specs[mp.message_index];
    const double hz = 1e9 / static_cast<double>(mp.period_ns);
    bool has_alpha = false;
    for (std::size_t si = 0; si < m.signals.size(); ++si) {
      m.signals[si].expected_cycle_ns = mp.period_ns;
      if (is_alpha(mp.signal_kinds[si])) has_alpha = true;
    }
    if (has_alpha) {
      min_alpha_hz = std::min(min_alpha_hz, hz);
    } else {
      max_slow_hz = std::max(max_slow_hz, hz);
    }
  }
  if (min_alpha_hz < 1e12 && max_slow_hz > 0.0) {
    plan.recommended_rate_threshold_hz = std::sqrt(min_alpha_hz * max_slow_hz);
  } else if (min_alpha_hz < 1e12) {
    plan.recommended_rate_threshold_hz = min_alpha_hz / 2.0;
  } else {
    plan.recommended_rate_threshold_hz = max_slow_hz * 2.0 + 1.0;
  }

  for (signaldb::MessageSpec& m : specs) {
    plan.catalog.add_message(std::move(m));
  }

  // 6. Gateway routes: every 4th CAN message is forwarded to the next CAN
  //    bus (duplicated signal instances for the splitter to dedup).
  std::size_t can_counter = 0;
  for (const signaldb::MessageSpec& m : plan.catalog.messages()) {
    if (m.protocol != protocol::Protocol::Can) continue;
    if (can_counter++ % 4 != 0) continue;
    const std::string to_bus = m.bus == "FC" ? "KC" : "FC";
    plan.gateway_routes.push_back(
        Route{m.bus, m.message_id, to_bus, 150'000});
  }
  return plan;
}

NetworkSimulator build_simulator(const VehiclePlan& plan,
                                 std::uint64_t journey_seed,
                                 bool inject_faults,
                                 std::int64_t duration_hint_ns) {
  NetworkSimulator sim;
  constexpr std::size_t kMessagesPerEcu = 3;
  // Ordinal/nominal signals should pass through several states per
  // journey; see the header comment.
  const auto level_dwell = [duration_hint_ns](std::int64_t period_ns) {
    if (duration_hint_ns > 0) {
      return std::max<std::int64_t>(duration_hint_ns / 12, period_ns);
    }
    return period_ns * 8;
  };

  Ecu ecu("ECU00");
  std::size_t in_ecu = 0;
  std::size_t ecu_counter = 0;

  for (const MessagePlan& mp : plan.messages) {
    const signaldb::MessageSpec& message =
        plan.catalog.messages()[mp.message_index];
    TxMessage tx;
    tx.message = &message;
    tx.period_ns = mp.period_ns;
    tx.jitter_ns = mp.jitter_ns;

    std::mt19937_64 rng(mp.seed ^ (journey_seed * 0x9E3779B97F4A7C15ULL));
    for (std::size_t si = 0; si < message.signals.size(); ++si) {
      const signaldb::SignalSpec& spec = message.signals[si];
      const SignalKind kind = mp.signal_kinds[si];
      SignalBinding binding;
      binding.spec = &spec;
      const std::uint64_t pseed = rng();
      switch (kind) {
        case SignalKind::AlphaNumeric: {
          const double hi = spec.max_value.value_or(100.0);
          std::unique_ptr<ValueProcess> base;
          if (pseed % 2 == 0) {
            base = make_sine(hi * 0.4, hi * 0.5,
                             static_cast<std::int64_t>(20e9) +
                                 static_cast<std::int64_t>(pseed % 7) *
                                     1'000'000'000LL);
          } else {
            base = make_random_walk(hi * 0.5, hi * 0.01, 0.0, hi, pseed);
          }
          if (inject_faults) {
            base = make_outlier_injector(std::move(base), 5e-4, 4.0,
                                         hi * 2.0, pseed ^ 0xABCD);
          }
          binding.process = std::move(base);
          break;
        }
        case SignalKind::BetaNumeric: {
          binding.process = make_step_levels(
              {0, 1, 2, 3, 4, 5, 6}, level_dwell(mp.period_ns), true, pseed);
          break;
        }
        case SignalKind::BetaString: {
          // Index process over the 4 functional labels; occasionally the
          // injector forces index 4 = the validity label "snv".
          auto base = make_step_levels({0, 1, 2, 3},
                                       level_dwell(mp.period_ns), true,
                                       pseed);
          if (inject_faults) {
            binding.process = make_outlier_injector(std::move(base), 2e-3,
                                                    0.0, 4.0, pseed ^ 0x77);
          } else {
            binding.process = std::move(base);
          }
          binding.process_emits_table_index = true;
          break;
        }
        case SignalKind::GammaBinary: {
          const std::int64_t dwell = duration_hint_ns > 0
                                         ? level_dwell(mp.period_ns)
                                         : mp.period_ns * 20;
          binding.process =
              make_duty_cycle(dwell, dwell * 3 / 2, pseed);
          binding.process_emits_table_index = true;
          break;
        }
        case SignalKind::GammaNominal: {
          // Target ~8 state changes per journey.
          double switch_probability = 0.01;
          if (duration_hint_ns > 0) {
            const double samples = static_cast<double>(duration_hint_ns) /
                                   static_cast<double>(mp.period_ns);
            switch_probability =
                std::clamp(8.0 / std::max(samples, 1.0), 0.005, 0.5);
          }
          binding.process = make_markov_chain(spec.value_table.size(),
                                              switch_probability, pseed);
          binding.process_emits_table_index = true;
          break;
        }
      }
      tx.bindings.push_back(std::move(binding));
    }
    ecu.add_tx_message(std::move(tx));
    if (++in_ecu >= kMessagesPerEcu) {
      sim.add_ecu(std::move(ecu));
      ecu = Ecu("ECU" + std::to_string(++ecu_counter));
      in_ecu = 0;
    }
  }
  if (in_ecu > 0) sim.add_ecu(std::move(ecu));

  if (!plan.gateway_routes.empty()) {
    Gateway gw("GW0");
    for (const Route& r : plan.gateway_routes) gw.add_route(r);
    sim.add_gateway(std::move(gw));
  }
  return sim;
}

Dataset make_dataset(const DatasetSpec& spec, const DatasetConfig& config) {
  const VehiclePlan plan = plan_vehicle(spec, config.seed);
  const std::int64_t duration_ns = static_cast<std::int64_t>(
      static_cast<double>(spec.full_duration_ns) * config.scale);
  NetworkSimulator sim = build_simulator(plan, config.seed * 31 + 7,
                                         config.inject_faults, duration_ns);

  SimulationConfig sim_config;
  sim_config.duration_ns = duration_ns;
  sim_config.seed = config.seed;
  if (config.inject_faults) {
    sim_config.faults.dropout_rate = 0.0015;
    sim_config.faults.cycle_violation_rate = 0.002;
    sim_config.faults.violation_factor = 3.0;
    sim_config.faults.error_frame_rate = 5e-4;
  }

  Dataset ds;
  ds.name = spec.name;
  ds.trace = sim.run(sim_config, "V001", spec.name + "_J1");
  ds.signal_names = plan.catalog.signal_names();
  ds.catalog = plan.catalog;
  return ds;
}

Dataset make_syn_dataset(const DatasetConfig& config) {
  return make_dataset(syn_spec(), config);
}
Dataset make_lig_dataset(const DatasetConfig& config) {
  return make_dataset(lig_spec(), config);
}
Dataset make_sta_dataset(const DatasetConfig& config) {
  return make_dataset(sta_spec(), config);
}

Fleet make_fleet(std::size_t num_journeys, const DatasetSpec& spec,
                 const DatasetConfig& config) {
  const VehiclePlan plan = plan_vehicle(spec, config.seed);
  Fleet fleet;
  fleet.signal_names = plan.catalog.signal_names();
  const std::int64_t duration_ns = static_cast<std::int64_t>(
      static_cast<double>(spec.full_duration_ns) * config.scale);
  for (std::size_t j = 0; j < num_journeys; ++j) {
    NetworkSimulator sim =
        build_simulator(plan, config.seed + 1000 * (j + 1),
                        config.inject_faults, duration_ns);
    SimulationConfig sim_config;
    sim_config.duration_ns = duration_ns;
    sim_config.seed = config.seed + j;
    if (config.inject_faults) {
      sim_config.faults.dropout_rate = 0.0015;
      sim_config.faults.cycle_violation_rate = 0.002;
      sim_config.faults.error_frame_rate = 5e-4;
    }
    fleet.journeys.push_back(
        sim.run(sim_config, "V001", "J" + std::to_string(j + 1)));
  }
  fleet.catalog = plan.catalog;
  return fleet;
}

}  // namespace ivt::simnet
