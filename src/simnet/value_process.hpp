// Deterministic value processes: the physical behaviour behind each
// simulated signal type.
//
// Each process is sampled in non-decreasing time order by the simulator
// and produces the *physical* signal value; the ECU encodes it into the
// payload via the signal's SignalSpec. All randomness flows from explicit
// seeds so a given configuration always reproduces the identical trace
// (the paper's "preserving determinism" requirement).
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

namespace ivt::simnet {

class ValueProcess {
 public:
  virtual ~ValueProcess() = default;
  /// Next physical value; `t_ns` is non-decreasing across calls.
  virtual double next(std::int64_t t_ns) = 0;
};

/// Fixed value (e.g. a configuration constant).
std::unique_ptr<ValueProcess> make_constant(double value);

/// offset + amplitude * sin(2π t / period + phase). High-rate numeric (α).
std::unique_ptr<ValueProcess> make_sine(double amplitude, double offset,
                                        std::int64_t period_ns,
                                        double phase = 0.0);

/// Sawtooth ramp from `low` to `high` over `period_ns` (e.g. odometer-like
/// wrap-around counters).
std::unique_ptr<ValueProcess> make_ramp(double low, double high,
                                        std::int64_t period_ns);

/// Bounded random walk: value += U(-step, step), clamped to [min, max].
/// High-rate numeric (α) — models speed, steering angle.
std::unique_ptr<ValueProcess> make_random_walk(double initial, double step,
                                               double min_value,
                                               double max_value,
                                               std::uint64_t seed);

/// Piecewise-constant level process: dwell on one of `levels` for an
/// exponentially distributed time (mean dwell), then jump to a neighbour
/// level (ordinal semantics, branch β) or to a uniform level (nominal).
std::unique_ptr<ValueProcess> make_step_levels(std::vector<double> levels,
                                               std::int64_t mean_dwell_ns,
                                               bool neighbour_jumps,
                                               std::uint64_t seed);

/// Binary duty-cycle process emitting 0/1 with exponentially distributed
/// on/off dwell times (branch γ binary signals such as belt contact).
std::unique_ptr<ValueProcess> make_duty_cycle(std::int64_t mean_on_ns,
                                              std::int64_t mean_off_ns,
                                              std::uint64_t seed);

/// Discrete Markov chain over {0..num_states-1}: at each sample, switch to
/// a uniformly random other state with probability `switch_probability`
/// (nominal signals, branch γ).
std::unique_ptr<ValueProcess> make_markov_chain(std::size_t num_states,
                                                double switch_probability,
                                                std::uint64_t seed);

/// Decorator: with probability `rate`, replaces the wrapped process's
/// value with an implausible spike (value * gain + kick). This is the
/// simulator's source of genuine outliers that branch α/β must isolate.
std::unique_ptr<ValueProcess> make_outlier_injector(
    std::unique_ptr<ValueProcess> inner, double rate, double gain,
    double kick, std::uint64_t seed);

/// Decorator: quantize the wrapped value to multiples of `step`
/// (models sensor quantization; keeps z_num realistic for ordinals).
std::unique_ptr<ValueProcess> make_quantizer(
    std::unique_ptr<ValueProcess> inner, double step);

}  // namespace ivt::simnet
