// Simulated ECU: periodically (or event-driven) encodes its signals into
// message payloads and emits trace records.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "signaldb/spec.hpp"
#include "simnet/value_process.hpp"
#include "tracefile/trace.hpp"

namespace ivt::simnet {

/// Binds a signal type to the process generating its values.
struct SignalBinding {
  const signaldb::SignalSpec* spec = nullptr;
  std::unique_ptr<ValueProcess> process;
  /// For categorical specs: the process emits an *index* into the value
  /// table (encoded as that entry's raw value). For numeric specs the
  /// process emits the physical value directly.
  bool process_emits_table_index = false;
};

/// Transmission behaviour mirroring real bus scheduling:
/// - cyclic: period > 0, each gap jittered uniformly by ±jitter;
/// - event-driven: period == 0, exponential inter-arrival times with mean
///   `event_mean_gap_ns`.
struct TxMessage {
  const signaldb::MessageSpec* message = nullptr;
  std::int64_t period_ns = 0;
  std::int64_t jitter_ns = 0;
  std::int64_t event_mean_gap_ns = 0;
  std::vector<SignalBinding> bindings;
};

/// Fault injection knobs (applied during generation so the resulting trace
/// contains the anomalies the pipeline is supposed to surface).
struct FaultConfig {
  /// Probability that one cyclic send is dropped (creates a cycle-time
  /// violation: the observed gap doubles).
  double dropout_rate = 0.0;
  /// Probability that one cyclic gap is stretched by `violation_factor`.
  double cycle_violation_rate = 0.0;
  double violation_factor = 3.0;
  /// Probability that a record is flagged as an error frame.
  double error_frame_rate = 0.0;
};

class Ecu {
 public:
  explicit Ecu(std::string name) : name_(std::move(name)) {}

  Ecu(Ecu&&) = default;
  Ecu& operator=(Ecu&&) = default;

  [[nodiscard]] const std::string& name() const { return name_; }

  void add_tx_message(TxMessage tx) { tx_.push_back(std::move(tx)); }
  [[nodiscard]] const std::vector<TxMessage>& tx_messages() const {
    return tx_;
  }

  /// Generate this ECU's records in [start_ns, end_ns) into `sink`.
  /// Records are produced per message in time order (the simulator merges
  /// across messages). Deterministic for a fixed `seed`.
  void generate(std::int64_t start_ns, std::int64_t end_ns,
                const FaultConfig& faults, std::uint64_t seed,
                const std::function<void(tracefile::TraceRecord)>& sink);

 private:
  std::string name_;
  std::vector<TxMessage> tx_;
};

/// Build the payload of one message instance at time t: runs every
/// binding's process (stateful, hence non-const tx) and encodes the
/// results, including presence selectors for conditional signals.
/// Exposed for tests.
std::vector<std::uint8_t> encode_message_instance(TxMessage& tx,
                                                  std::int64_t t_ns,
                                                  std::mt19937_64& rng);

}  // namespace ivt::simnet
