#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <utility>

#include "errors/error.hpp"
#include "faultfx/faultfx.hpp"
#include "obs/obs.hpp"
#include "serve/json.hpp"

namespace ivt::serve {

namespace {

constexpr int kListenBacklog = 64;

std::size_t resolve_workers(std::size_t configured) {
  if (configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 4;
}

}  // namespace

/// The wire name and retryability the daemon reports for each category.
/// This is a public protocol contract, pinned independently of
/// errors::to_string / errors::is_transient so an internal rename can
/// never silently change what clients see. The switch is an
/// `error-table` anchor in tools/ivt-lint.conf: ivt-analyze fails when
/// any thrown errors::Category is missing from it.
WireError wire_category(errors::Category category) {
  switch (category) {
    case errors::Category::Io: return {"io", false};
    case errors::Category::Format: return {"format", false};
    case errors::Category::Decode: return {"decode", false};
    case errors::Category::Spec: return {"spec", false};
    case errors::Category::Resource: return {"resource", true};
    case errors::Category::Overloaded: return {"overloaded", true};
    case errors::Category::Timeout: return {"timeout", true};
    case errors::Category::Internal: return {"internal", false};
  }
  return {"internal", false};
}

namespace {

/// Typed error response body. Every failure a request can hit — bad
/// JSON, unknown trace, injected faults, admission rejection — ends up
/// here; the connection itself stays healthy. A nonzero trace_id is
/// echoed so clients can correlate failures with their traces too.
Frame error_frame(std::uint64_t request_id, const std::string& op,
                  errors::Category category, const std::string& message,
                  std::uint64_t trace_id = 0) {
  const WireError wire = wire_category(category);
  json::Object error;
  error.add("category", std::string(wire.category))
      .add("retryable", wire.retryable)
      .add("message", message);
  json::Object body;
  body.add("ok", false).add("request_id", request_id);
  if (!op.empty()) body.add("op", op);
  if (trace_id != 0) body.add("trace_id", obs::trace_id_hex(trace_id));
  body.raw("error", error.str());
  return Frame{body.str(), {}};
}

/// The request's propagated trace context ("trace_ctx" member), or a
/// freshly minted one when absent/malformed — every access record gets a
/// trace_id either way.
obs::TraceContext request_trace_context(const json::Value& body) {
  obs::TraceContext ctx;
  if (const json::Value* tc = body.find("trace_ctx");
      tc != nullptr && tc->is_object()) {
    ctx.trace_id = obs::parse_trace_id_hex(tc->get_string("trace_id", ""));
    ctx.span_id =
        static_cast<std::uint64_t>(tc->get_int("parent_span_id", 0));
  }
  return ctx.valid() ? ctx : obs::TraceContext::mint();
}

}  // namespace

Server::Server(std::unique_ptr<TraceCatalog> catalog, ServerConfig config)
    : config_(std::move(config)),
      catalog_(std::move(catalog)),
      event_log_(config_.event_log_path.empty()
                     ? nullptr
                     : std::make_unique<obs::EventLog>(
                           config_.event_log_path)),
      engine_(*catalog_, config_.query),
      pool_(resolve_workers(config_.workers)),
      max_in_flight_(config_.max_in_flight > 0 ? config_.max_in_flight
                                               : 2 * pool_.num_threads()) {}

Server::~Server() {
  stop();
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

void Server::start() {
  if (::pipe2(stop_pipe_, O_CLOEXEC) != 0) {
    IVT_THROW(errors::Category::Io,
              std::string("serve: pipe2 failed: ") + std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    IVT_THROW(errors::Category::Io,
              std::string("serve: socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    IVT_THROW(errors::Category::Io,
              "serve: bad listen address '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    IVT_THROW(errors::Category::Io,
              "serve: cannot bind " + config_.host + ":" +
                  std::to_string(config_.port) + ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, kListenBacklog) != 0) {
    IVT_THROW(errors::Category::Io,
              "serve: listen failed on " + config_.host + ":" +
                  std::to_string(config_.port) + ": " + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = config_.port;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::wait() {
  char byte = 0;
  while (true) {
    const ssize_t got = ::read(stop_pipe_[0], &byte, 1);
    if (got > 0) return;
    if (got < 0 && errno == EINTR) continue;
    return;  // pipe closed: the server is going away anyway
  }
}

void Server::request_stop() noexcept {
  stopping_.store(true, std::memory_order_release);
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    // write(2) is async-signal-safe; the result is irrelevant (a full
    // pipe means a stop byte is already pending).
    [[maybe_unused]] const ssize_t ignored =
        ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::stop() {
  if (stopped_.exchange(true)) return;
  request_stop();
  if (listen_fd_ >= 0) {
    // shutdown() unblocks the accept loop even on platforms where a
    // plain close() leaves it sleeping.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> to_join;
  {
    const support::MutexLock lock(mutex_);
    for (Connection& conn : connections_) {
      // Unblock the reader; in-flight requests finish and write their
      // responses before the reader notices the shutdown and exits.
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RD);
      if (conn.thread.joinable()) to_join.push_back(std::move(conn.thread));
    }
  }
  for (std::thread& t : to_join) t.join();
  {
    const support::MutexLock lock(mutex_);
    for (Connection& conn : connections_) {
      if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
    connections_.clear();
  }
  // Every connection is drained, so all access records are enqueued; put
  // them on disk before the caller inspects/uploads the log.
  if (event_log_ != nullptr) event_log_->flush();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      std::fprintf(stderr, "ivt-serve: accept failed: %s\n",
                   std::strerror(errno));
      break;
    }
    try {
      // Models a failure while setting up the accepted connection (fd
      // limit races, early peer reset). The daemon must shrug it off:
      // drop this connection, keep accepting.
      FAULT_POINT("serve.accept");
    } catch (const errors::Error& e) {
      OBS_COUNT("serve.accept_faults", 1);
      std::fprintf(stderr, "ivt-serve: connection setup failed: %s\n",
                   e.describe().c_str());
      ::close(fd);
      continue;
    }
    OBS_COUNT("serve.connections_total", 1);
    const support::MutexLock lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    const std::size_t index = connections_.size();
    connections_.push_back(Connection{fd, {}});
    connections_[index].thread = std::thread([this, fd, index] {
      serve_connection(fd);
      // Hand the fd back under the lock so stop() never shutdowns a
      // recycled descriptor; entries themselves live until stop().
      const support::MutexLock conn_lock(mutex_);
      connections_[index].fd = -1;
      ::close(fd);
    });
  }
}

void Server::serve_connection(int fd) {
  Frame request;
  while (!stopping_.load(std::memory_order_acquire)) {
    try {
      if (!read_frame(fd, request)) break;  // clean EOF
    } catch (const errors::Error&) {
      // Transport-level failure (peer vanished mid-frame, bad magic):
      // there is no request to answer, drop the connection.
      break;
    }
    const std::uint64_t request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    OBS_COUNT("serve.requests_total", 1);
    const auto start = std::chrono::steady_clock::now();
    AccessInfo access;
    const Frame response = handle_request(request, request_id, access);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    // Functional accounting first (count + both latency views — what the
    // stats op reports, in any build mode), then the registry mirrors for
    // the Prometheus/metrics exports. The mirrors' window width is fixed
    // at first registration (one daemon per process, so config agrees).
    engine_.accounting().record_request(elapsed_ms);
    OBS_HIST_MS("serve.request_ms", elapsed_ms);
    OBS_WINDOW_HIST_MS("serve.request_window_ms",
                       config_.query.stats_window_s, elapsed_ms);
    OBS_WINDOW_COUNT("serve.requests_window", config_.query.stats_window_s,
                     1);

    if (event_log_ != nullptr) {
      // The per-query access record: how the request was served. One
      // line per request, success or failure.
      obs::EventRecord record(event_log_.get(), obs::EventLevel::Info,
                              "serve.query");
      record.kv("request_id", request_id).kv("op", access.op);
      if (access.trace_id != 0) {
        record.kv("trace_id", obs::trace_id_hex(access.trace_id));
      }
      record.kv("ok", access.ok);
      if (!access.ok) record.kv("error_category", access.error_category);
      record.kv("elapsed_ms", elapsed_ms)
          .kv("bytes_in", static_cast<std::uint64_t>(
                              request.json.size() + request.payload.size()))
          .kv("bytes_out",
              static_cast<std::uint64_t>(response.json.size() +
                                         response.payload.size()));
      if (access.ok) {
        record
            .kv("rows", access.stats.rows)
            .kv("chunks_total",
                static_cast<std::uint64_t>(access.stats.chunks_total))
            .kv("chunks_scanned",
                static_cast<std::uint64_t>(access.stats.chunks_scanned))
            .kv("chunks_decoded",
                static_cast<std::uint64_t>(access.stats.chunks_decoded))
            .kv("chunk_cache_hits",
                static_cast<std::uint64_t>(access.stats.chunk_cache_hits))
            .kv("chunk_cache_misses",
                static_cast<std::uint64_t>(access.stats.chunk_cache_misses))
            .kv("state_cache_hit", access.stats.state_cache_hit);
        for (const auto& [stage, wall_ms] : access.stats.stages) {
          record.kv("t_" + stage + "_ms", wall_ms);
        }
      }
    }
    if (config_.slow_query_ms > 0.0 && elapsed_ms >= config_.slow_query_ms) {
      OBS_COUNT("serve.slow_queries", 1);
      obs::EventRecord slow(event_log_.get(), obs::EventLevel::Warn,
                            "serve.slow_query");
      slow.kv("request_id", request_id).kv("op", access.op);
      if (access.trace_id != 0) {
        slow.kv("trace_id", obs::trace_id_hex(access.trace_id));
      }
      slow.kv("elapsed_ms", elapsed_ms)
          .kv("threshold_ms", config_.slow_query_ms);
    }

    try {
      write_frame(fd, response);
    } catch (const errors::Error&) {
      break;  // peer gone; response undeliverable
    }
  }
}

Frame Server::handle_request(const Frame& request, std::uint64_t request_id,
                             AccessInfo& access) {
  std::string op;
  std::uint64_t trace_id = 0;
  try {
    // Models a fault between "frame fully read" and "request executed"
    // (e.g. a poisoned request buffer). Contract under test: a typed
    // error response on a healthy connection, never a dropped socket.
    FAULT_POINT("serve.read");
    const json::Value body = json::parse(request.json);
    op = body.get_string("op", "");
    access.op = op;
    const obs::TraceContext trace_ctx = request_trace_context(body);
    trace_id = trace_ctx.trace_id;
    access.trace_id = trace_id;
    if (op == "shutdown") {
      json::Object ok;
      ok.add("ok", true).add("request_id", request_id).add("op", op);
      if (trace_id != 0) ok.add("trace_id", obs::trace_id_hex(trace_id));
      access.ok = true;
      request_stop();
      return Frame{ok.str(), {}};
    }

    // Admission gate: claim a slot or answer Overloaded immediately.
    // fetch_add-then-check keeps the gate race-free without a lock.
    if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
        max_in_flight_) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      engine_.accounting().requests_overloaded.fetch_add(
          1, std::memory_order_relaxed);
      OBS_COUNT("serve.requests_overloaded", 1);
      IVT_THROW(errors::Category::Overloaded,
                "serve: in-flight window full (" +
                    std::to_string(max_in_flight_) +
                    " requests executing) — retry after a backoff");
    }
    engine_.accounting().in_flight.fetch_add(1, std::memory_order_relaxed);
    OBS_GAUGE_ADD("serve.in_flight", 1);

    // The worker marshals failures by value instead of via
    // promise.set_exception: rethrowing an exception_ptr on the reader
    // thread would share the exception object across threads, whose
    // refcounted release lives in the (uninstrumented) C++ runtime.
    struct Outcome {
      bool ok = false;
      QueryResult result;
      errors::Category category = errors::Category::Internal;
      std::string message;
    };
    std::promise<Outcome> promise;
    std::future<Outcome> future = promise.get_future();
    Outcome outcome;
    try {
      // submit_bounded is the structural backstop under the same limit:
      // even if the gate were misaccounted, pool backlog stays bounded.
      pool_.submit_bounded(
          [this, &body, request_id, trace_ctx, &promise] {
            // Install the propagated context on this worker thread:
            // thread-locals do not cross the pool handoff, so the scope
            // is re-installed here — every span and metric the request
            // records below carries the client's trace_id.
            const obs::TraceContextScope trace_scope(trace_ctx);
            Outcome out;
            try {
              out.result = engine_.execute(body, request_id, trace_ctx);
              out.ok = true;
            } catch (const errors::Error& e) {
              out.category = e.category();
              out.message = e.describe();
            } catch (const std::invalid_argument& e) {
              out.category = errors::Category::Spec;
              out.message = e.what();
            } catch (const std::exception& e) {
              out.message = e.what();
            }
            promise.set_value(std::move(out));
          },
          max_in_flight_);
      outcome = future.get();
    } catch (...) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      engine_.accounting().in_flight.fetch_sub(1, std::memory_order_relaxed);
      OBS_GAUGE_ADD("serve.in_flight", -1);
      throw;
    }
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    engine_.accounting().in_flight.fetch_sub(1, std::memory_order_relaxed);
    OBS_GAUGE_ADD("serve.in_flight", -1);
    if (!outcome.ok) {
      engine_.accounting().requests_failed.fetch_add(
          1, std::memory_order_relaxed);
      OBS_COUNT("serve.requests_failed", 1);
      access.error_category = errors::to_string(outcome.category);
      return error_frame(request_id, op, outcome.category, outcome.message,
                         trace_id);
    }
    access.ok = true;
    access.stats = outcome.result.stats;
    return Frame{std::move(outcome.result.json),
                 std::move(outcome.result.payload)};
  } catch (const errors::Error& e) {
    engine_.accounting().requests_failed.fetch_add(1,
                                                   std::memory_order_relaxed);
    OBS_COUNT("serve.requests_failed", 1);
    access.error_category = errors::to_string(e.category());
    return error_frame(request_id, op, e.category(), e.describe(), trace_id);
  } catch (const std::invalid_argument& e) {
    engine_.accounting().requests_failed.fetch_add(1,
                                                   std::memory_order_relaxed);
    OBS_COUNT("serve.requests_failed", 1);
    access.error_category = errors::to_string(errors::Category::Spec);
    return error_frame(request_id, op, errors::Category::Spec, e.what(),
                       trace_id);
  } catch (const std::exception& e) {
    engine_.accounting().requests_failed.fetch_add(1,
                                                   std::memory_order_relaxed);
    OBS_COUNT("serve.requests_failed", 1);
    access.error_category = errors::to_string(errors::Category::Internal);
    return error_frame(request_id, op, errors::Category::Internal, e.what(),
                       trace_id);
  }
}

}  // namespace ivt::serve
