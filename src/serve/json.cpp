#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace ivt::serve::json {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    IVT_THROW(errors::Category::Decode,
              "serve: bad JSON at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    if (depth_ > kMaxDepth) fail("nesting too deep");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value{parse_string()};
      case 't':
        if (consume_literal("true")) return Value{true};
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value{false};
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value{nullptr};
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    ++depth_;
    expect('{');
    Members members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return Value{std::move(members)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == '}') break;
      if (sep != ',') fail("expected ',' or '}' in object");
    }
    --depth_;
    return Value{std::move(members)};
  }

  Value parse_array() {
    ++depth_;
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return Value{std::move(items)};
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == ']') break;
      if (sep != ',') fail("expected ',' or ']' in array");
    }
    --depth_;
    return Value{std::move(items)};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by the protocol; a lone surrogate encodes as-is).
          if (code < 0x80U) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800U) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      fail("bad number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (is_integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Value{static_cast<std::int64_t>(v)};
      }
      // Out-of-range integer: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    return Value{d};
  }

  static constexpr int kMaxDepth = 64;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

std::string render_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::int64_t Value::integer() const {
  if (is_int()) return std::get<std::int64_t>(v);
  return static_cast<std::int64_t>(std::get<double>(v));
}

double Value::number() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v));
  return std::get<double>(v);
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Members& m = members();
  const auto it = m.find(key);
  return it == m.end() ? nullptr : &it->second;
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  const Value* m = find(key);
  if (m == nullptr || m->is_null()) return fallback;
  if (!m->is_string()) {
    IVT_THROW(errors::Category::Decode,
              "serve: request field '" + key + "' must be a string");
  }
  return m->string();
}

std::int64_t Value::get_int(const std::string& key,
                            std::int64_t fallback) const {
  const Value* m = find(key);
  if (m == nullptr || m->is_null()) return fallback;
  if (!m->is_number()) {
    IVT_THROW(errors::Category::Decode,
              "serve: request field '" + key + "' must be a number");
  }
  return m->integer();
}

double Value::get_double(const std::string& key, double fallback) const {
  const Value* m = find(key);
  if (m == nullptr || m->is_null()) return fallback;
  if (!m->is_number()) {
    IVT_THROW(errors::Category::Decode,
              "serve: request field '" + key + "' must be a number");
  }
  return m->number();
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* m = find(key);
  if (m == nullptr || m->is_null()) return fallback;
  if (!m->is_bool()) {
    IVT_THROW(errors::Category::Decode,
              "serve: request field '" + key + "' must be a boolean");
  }
  return m->boolean();
}

std::vector<std::string> Value::get_string_list(const std::string& key) const {
  const Value* m = find(key);
  std::vector<std::string> out;
  if (m == nullptr || m->is_null()) return out;
  if (!m->is_array()) {
    IVT_THROW(errors::Category::Decode, "serve: request field '" + key +
                                            "' must be an array of strings");
  }
  for (const Value& item : m->array()) {
    if (!item.is_string()) {
      IVT_THROW(errors::Category::Decode, "serve: request field '" + key +
                                              "' must be an array of strings");
    }
    out.push_back(item.string());
  }
  return out;
}

Value parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20U) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

Object& Object::add(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + escape(value) + "\"");
  return *this;
}

Object& Object::add(const std::string& key, const char* value) {
  return add(key, std::string(value));
}

Object& Object::add(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

Object& Object::add(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

Object& Object::add(const std::string& key, double value) {
  fields_.emplace_back(key, render_number(value));
  return *this;
}

Object& Object::add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

Object& Object::raw(const std::string& key, const std::string& rendered) {
  fields_.emplace_back(key, rendered);
  return *this;
}

std::string Object::str() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, rendered] : fields_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape(key) + "\":" + rendered;
  }
  out += "}";
  return out;
}

std::string render_array(const std::vector<std::string>& items) {
  std::string out = "[";
  bool first = true;
  for (const std::string& item : items) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape(item) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace ivt::serve::json
