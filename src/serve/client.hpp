// Blocking client for the ivt-serve protocol (used by `ivt query`, the
// serve tests and bench_serve).
//
// One Client is one TCP connection; request() is synchronous
// (frame out, frame in). Not thread-safe — use one Client per thread;
// the server multiplexes across connections, not within one.
#pragma once

#include <cstdint>
#include <string>

#include "obs/trace_context.hpp"
#include "serve/json.hpp"
#include "serve/wire.hpp"

namespace ivt::serve {

/// Attach `ctx` to a request being built: adds the "trace_ctx" member
/// ({"trace_id": "<hex>", "parent_span_id": N}) the server propagates
/// into its spans and access record. No-op when ctx is invalid.
void add_trace_context(json::Object& request, const obs::TraceContext& ctx);

/// A parsed response: the JSON header (plus convenience views of the
/// fields every response carries) and the raw payload.
struct ClientResponse {
  json::Value body;
  std::string payload;

  [[nodiscard]] bool ok() const { return body.get_bool("ok", false); }
  /// Error fields ("" / false when ok).
  [[nodiscard]] std::string error_category() const;
  [[nodiscard]] std::string error_message() const;
  [[nodiscard]] bool retryable() const;
};

class Client {
 public:
  /// Connect to host:port. Throws errors::Error(Io) when the connection
  /// cannot be established. A non-zero `timeout_ms` bounds the connect
  /// and every subsequent socket read/write: a peer that stalls past the
  /// deadline surfaces as errors::Error(Timeout) — typed, retryable —
  /// instead of hanging the caller forever.
  explicit Client(const std::string& host, std::uint16_t port,
                  int timeout_ms = 0);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one raw frame, wait for the response frame.
  Frame request_raw(const Frame& frame);

  /// Send a JSON request body, parse the response.
  ClientResponse request(const std::string& request_json);

 private:
  int fd_ = -1;
};

}  // namespace ivt::serve
