// Length-prefixed binary framing for the ivt-serve protocol.
//
// One frame on the wire (all integers little-endian):
//
//   offset  size  field
//   0       4     magic        "IVQ1" (0x31515649)
//   4       4     json_len     length of the JSON body in bytes
//   8       4     payload_len  length of the raw payload in bytes
//   12      *     json         UTF-8 JSON document (request or response
//                              header; see serve/query_engine.hpp)
//   12+j    *     payload      raw bytes (CSV table results); empty for
//                              control ops
//
// Both directions use the same frame. Limits (kMaxJsonBytes,
// kMaxPayloadBytes) are enforced on read so a corrupt or hostile peer
// cannot make the daemon allocate unbounded memory; violations throw
// errors::Error(Format). Transport failures (EOF mid-frame, socket
// errors) throw errors::Error(Io). A clean EOF at a frame boundary is
// not an error — read_frame returns false so connection loops can
// terminate quietly.
#pragma once

#include <cstdint>
#include <string>

namespace ivt::serve {

inline constexpr std::uint32_t kFrameMagic = 0x31515649;  // "IVQ1"
inline constexpr std::size_t kMaxJsonBytes = 1U << 20U;       // 1 MiB
inline constexpr std::size_t kMaxPayloadBytes = 1U << 28U;    // 256 MiB

struct Frame {
  std::string json;
  std::string payload;
};

/// Read one frame from `fd`. Returns false on clean EOF before the first
/// header byte; throws errors::Error(Io) on transport failure or
/// truncation mid-frame, errors::Error(Format) on bad magic or a length
/// over the limits.
bool read_frame(int fd, Frame& out);

/// Write one frame to `fd`. Throws errors::Error(Format) when a body
/// exceeds its limit and errors::Error(Io) when the peer is gone.
void write_frame(int fd, const Frame& frame);

}  // namespace ivt::serve
