#include "serve/trace_catalog.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "colstore/columnar_reader.hpp"
#include "errors/error.hpp"
#include "faultfx/faultfx.hpp"
#include "obs/obs.hpp"

namespace ivt::serve {

TraceEntry::~TraceEntry() {
  if (fd >= 0) ::close(fd);
}

TraceCatalog::TraceCatalog(signaldb::Catalog db) : db_(std::move(db)) {}

void TraceCatalog::add_trace(const std::string& name,
                             const std::string& path) {
  if (traces_.contains(name)) {
    IVT_THROW(errors::Category::Spec,
              "serve: duplicate trace name '" + name + "'");
  }
  auto entry = std::make_unique<TraceEntry>();
  {
    // Reader holds the whole file only for the duration of this scope;
    // after metadata extraction the image is freed and chunk bytes are
    // re-read on demand (or served from the chunk cache).
    const colstore::ColumnarReader reader(path);
    entry->vehicle = reader.vehicle();
    entry->journey = reader.journey();
    entry->start_unix_ns = reader.start_unix_ns();
    entry->buses = reader.bus_names();
    entry->chunks = reader.chunks();
    entry->version = reader.version();
    entry->key_dict = reader.key_dict();
    entry->num_rows = reader.num_rows();
  }
  entry->name = name;
  entry->path = path;
  entry->fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (entry->fd < 0) {
    IVT_THROW(errors::Category::Io, "serve: cannot open trace '" + path +
                                        "': " + std::strerror(errno));
  }
  traces_.emplace(name, std::move(entry));
}

const TraceEntry* TraceCatalog::find(const std::string& name) const {
  const auto it = traces_.find(name);
  return it == traces_.end() ? nullptr : it->second.get();
}

const TraceEntry& TraceCatalog::require(const std::string& name) const {
  const TraceEntry* entry = find(name);
  if (entry == nullptr) {
    IVT_THROW(errors::Category::Spec,
              "serve: unknown trace '" + name + "' (registered: " +
                  std::to_string(traces_.size()) + " traces)");
  }
  return *entry;
}

std::vector<std::string> TraceCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(traces_.size());
  for (const auto& [name, entry] : traces_) out.push_back(name);
  return out;
}

std::shared_ptr<const std::string> TraceCatalog::chunk_bytes(
    const TraceEntry& entry, std::size_t chunk_index, ChunkCache& cache,
    bool* was_hit) const {
  const ChunkKey key{entry.name, chunk_index};
  if (std::shared_ptr<const std::string> hit = cache.get(key)) {
    if (was_hit != nullptr) *was_hit = true;
    return hit;
  }
  if (was_hit != nullptr) *was_hit = false;
  // Miss: read the compressed extent from disk. The fault site models a
  // backing-store read failure (stale NFS handle, truncated file, I/O
  // error) — it must surface as a typed error response, never tear down
  // the connection.
  FAULT_POINT("serve.cache");
  const colstore::ChunkInfo& info = entry.chunks.at(chunk_index);
  auto bytes = std::make_shared<std::string>();
  bytes->resize(info.encoded_bytes);
  std::size_t done = 0;
  while (done < info.encoded_bytes) {
    const ssize_t got =
        ::pread(entry.fd, bytes->data() + done, info.encoded_bytes - done,
                static_cast<off_t>(info.offset + done));
    if (got == 0) {
      IVT_THROW(errors::Category::Decode,
                "serve: trace '" + entry.name + "' truncated: chunk " +
                    std::to_string(chunk_index) + " extent ends early");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      IVT_THROW(errors::Category::Io,
                "serve: pread failed on trace '" + entry.name +
                    "': " + std::strerror(errno));
    }
    done += static_cast<std::size_t>(got);
  }
  OBS_COUNT("serve.chunks_loaded", 1);
  OBS_COUNT("serve.chunk_bytes_loaded", info.encoded_bytes);
  cache.put(key, bytes, bytes->size());
  return bytes;
}

}  // namespace ivt::serve
