#include "serve/query_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "apps/anomaly.hpp"
#include "colstore/chunk_decode.hpp"
#include "colstore/columnar_reader.hpp"
#include "core/interpret.hpp"
#include "core/pipeline.hpp"
#include "core/urel.hpp"
#include "dataflow/csv.hpp"
#include "dataflow/engine.hpp"
#include "dataflow/ops.hpp"
#include "errors/error.hpp"
#include "obs/obs.hpp"
#include "tracefile/trace.hpp"

namespace ivt::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Inline engine for request-scoped pipeline work: every dataflow task
/// runs on the calling pool worker. Parallelism comes from concurrent
/// requests; nesting a second thread pool inside a pool worker would
/// oversubscribe and deadlock-prone the admission window.
dataflow::Engine make_inline_engine() {
  dataflow::EngineConfig config;
  config.workers = 0;
  config.inline_execution = true;
  return dataflow::Engine(config);
}

std::string render_csv(const dataflow::Table& table) {
  std::ostringstream out;
  dataflow::write_csv(table, out);
  return std::move(out).str();
}

/// U_comb for the requested signal set; unknown signal names become a
/// typed Spec error (the batch CLI maps the same std::invalid_argument to
/// a usage error, but over the wire every failure must be typed).
dataflow::Table build_urel(const signaldb::Catalog& db,
                           const std::vector<std::string>& signals) {
  try {
    return signals.empty() ? core::make_full_urel_table(db)
                           : core::make_urel_table(db, signals);
  } catch (const std::invalid_argument& e) {
    IVT_THROW(errors::Category::Spec, std::string("serve: ") + e.what());
  }
}

}  // namespace

struct QueryEngine::RequestContext {
  std::uint64_t request_id = 0;
  std::string op;
  std::string trace;
  std::vector<std::string> signals;
  bool has_min = false;
  bool has_max = false;
  std::int64_t min_t_ns = 0;
  std::int64_t max_t_ns = 0;
  double rate_threshold_hz = 5.0;
  std::int64_t top_k = 10;

  Clock::time_point start = Clock::now();
  std::vector<std::pair<std::string, double>> stages;
  std::uint64_t trace_id = 0;
  std::size_t chunks_total = 0;
  std::size_t chunks_scanned = 0;
  std::size_t chunks_decoded = 0;
  std::size_t chunk_cache_hits = 0;
  std::size_t chunk_cache_misses = 0;
  bool state_cache_hit = false;
  std::uint64_t rows = 0;

  /// Scoped per-stage wall clock; results land in the response's
  /// "stages" object and (via the enclosing OBS span) in the Chrome
  /// trace.
  class StageTimer {
   public:
    StageTimer(RequestContext& ctx, std::string name)
        : ctx_(ctx), name_(std::move(name)), start_(Clock::now()) {}
    ~StageTimer() { ctx_.stages.emplace_back(name_, ms_since(start_)); }
    StageTimer(const StageTimer&) = delete;
    StageTimer& operator=(const StageTimer&) = delete;

   private:
    RequestContext& ctx_;
    std::string name_;
    Clock::time_point start_;
  };

  [[nodiscard]] bool has_time_range() const { return has_min || has_max; }

  [[nodiscard]] QueryResult finish(json::Object& body,
                                   std::string payload = {}) const {
    json::Object stage_obj;
    for (const auto& [name, wall_ms] : stages) stage_obj.add(name, wall_ms);
    body.raw("stages", stage_obj.str());
    body.add("t_total_ms", ms_since(start));
    QueryResult result{body.str(), std::move(payload), {}};
    result.stats.op = op;
    result.stats.trace_id = trace_id;
    result.stats.stages = stages;
    result.stats.chunks_total = chunks_total;
    result.stats.chunks_scanned = chunks_scanned;
    result.stats.chunks_decoded = chunks_decoded;
    result.stats.chunk_cache_hits = chunk_cache_hits;
    result.stats.chunk_cache_misses = chunk_cache_misses;
    result.stats.state_cache_hit = state_cache_hit;
    result.stats.rows = rows;
    return result;
  }

  [[nodiscard]] json::Object base() const {
    json::Object body;
    body.add("ok", true)
        .add("request_id", request_id)
        .add("op", op);
    if (trace_id != 0) body.add("trace_id", obs::trace_id_hex(trace_id));
    return body;
  }
};

QueryEngine::QueryEngine(const TraceCatalog& catalog, QueryEngineConfig config)
    : catalog_(&catalog),
      chunk_cache_("serve.chunk_cache", config.chunk_cache_bytes),
      // Single shard: tier-2 holds a handful of large tables, and a
      // sharded budget would reject any state bigger than capacity/8.
      state_cache_("serve.state_cache", config.state_cache_bytes, 1),
      scan_mode_(config.scan_mode),
      accounting_(config.stats_window_s) {}

QueryResult QueryEngine::execute(const json::Value& request,
                                 std::uint64_t request_id,
                                 const obs::TraceContext& trace_ctx) {
  if (!request.is_object()) {
    IVT_THROW(errors::Category::Decode,
              "serve: request body must be a JSON object");
  }
  // Install the caller's context (when valid) so every span below — and
  // in anything execute() calls — records under the propagated trace_id.
  // Direct in-process callers that already installed a scope keep theirs.
  const obs::TraceContextScope trace_scope(
      trace_ctx.valid() ? trace_ctx : obs::current_trace_context());
  RequestContext ctx;
  ctx.request_id = request_id;
  ctx.trace_id = obs::current_trace_context().trace_id;
  ctx.op = request.get_string("op", "");
  ctx.trace = request.get_string("trace", "");
  ctx.signals = request.get_string_list("signals");
  if (const json::Value* v = request.find("min_t_ns")) {
    ctx.has_min = !v->is_null();
    ctx.min_t_ns = request.get_int("min_t_ns", 0);
  }
  if (const json::Value* v = request.find("max_t_ns")) {
    ctx.has_max = !v->is_null();
    ctx.max_t_ns = request.get_int("max_t_ns", 0);
  }
  ctx.rate_threshold_hz = request.get_double("rate_threshold_hz", 5.0);
  ctx.top_k = request.get_int("top_k", 10);

  // One span per request; `rows` carries the request id so spans of one
  // request correlate across worker threads in the Chrome-trace export.
  obs::SpanScope span("serve.req." + ctx.op);
  span.set_rows(request_id);

  if (ctx.op == "ping") return op_ping(ctx);
  if (ctx.op == "list") return op_list(ctx);
  if (ctx.op == "stats") return op_stats(ctx);
  if (ctx.op == "metrics") return op_metrics(ctx);
  if (ctx.op == "preselect") return op_preselect(ctx);
  if (ctx.op == "extract") return op_extract(ctx);
  if (ctx.op == "state") return op_state(ctx);
  if (ctx.op == "mine") return op_mine(ctx);
  IVT_THROW(errors::Category::Spec,
            "serve: unknown op '" + ctx.op +
                "' (ping, list, stats, metrics, preselect, extract, state, "
                "mine)");
}

QueryResult QueryEngine::op_ping(RequestContext& ctx) {
  json::Object body = ctx.base();
  return ctx.finish(body);
}

QueryResult QueryEngine::op_list(RequestContext& ctx) {
  std::vector<std::string> rendered;
  for (const std::string& name : catalog_->names()) {
    const TraceEntry& entry = catalog_->require(name);
    std::int64_t min_t = 0;
    std::int64_t max_t = 0;
    if (!entry.chunks.empty()) {
      min_t = entry.chunks.front().min_t_ns;
      max_t = entry.chunks.front().max_t_ns;
      for (const colstore::ChunkInfo& c : entry.chunks) {
        min_t = std::min(min_t, c.min_t_ns);
        max_t = std::max(max_t, c.max_t_ns);
      }
    }
    json::Object t;
    t.add("name", name)
        .add("vehicle", entry.vehicle)
        .add("journey", entry.journey)
        .add("rows", static_cast<std::uint64_t>(entry.num_rows))
        .add("chunks", static_cast<std::uint64_t>(entry.chunks.size()))
        .add("min_t_ns", min_t)
        .add("max_t_ns", max_t)
        .raw("buses", json::render_array(entry.buses));
    rendered.push_back(t.str());
  }
  std::string array = "[";
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) array += ",";
    array += rendered[i];
  }
  array += "]";
  json::Object body = ctx.base();
  body.add("count", static_cast<std::uint64_t>(rendered.size()))
      .raw("traces", array);
  return ctx.finish(body);
}

namespace {

std::string render_cache_stats(const LruCacheStats& stats,
                               std::size_t capacity_bytes) {
  json::Object out;
  out.add("hits", stats.hits)
      .add("misses", stats.misses)
      .add("evictions", stats.evictions)
      .add("insertions", stats.insertions)
      .add("bytes", stats.bytes)
      .add("entries", stats.entries)
      .add("capacity_bytes", static_cast<std::uint64_t>(capacity_bytes));
  return out.str();
}

}  // namespace

QueryResult QueryEngine::op_stats(RequestContext& ctx) {
  // Everything operational here reads from the engine-owned accounting —
  // it is functional state, so the stats op reports the same numbers with
  // IVT_OBS=OFF. Only spans/events_dropped come from the obs layer (they
  // count telemetry that does not exist in that configuration).
  const auto relaxed = [](const std::atomic<std::uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  json::Object body = ctx.base();
  body.raw("chunk_cache", render_cache_stats(chunk_cache_stats(),
                                             chunk_cache_.capacity_bytes()))
      .raw("state_cache", render_cache_stats(state_cache_stats(),
                                             state_cache_.capacity_bytes()))
      .add("requests_total", relaxed(accounting_.requests_total))
      .add("requests_failed", relaxed(accounting_.requests_failed))
      .add("requests_overloaded", relaxed(accounting_.requests_overloaded))
      .add("chunks_decoded", relaxed(accounting_.chunks_decoded))
      .add("chunks_loaded", relaxed(accounting_.chunks_loaded))
      .add("in_flight",
           accounting_.in_flight.load(std::memory_order_relaxed));
  {
    const obs::Histogram::Data lifetime = accounting_.latency_ms.data();
    json::Object lat;
    lat.add("count", lifetime.count)
        .add("p50_ms", lifetime.quantile(0.50))
        .add("p90_ms", lifetime.quantile(0.90))
        .add("p99_ms", lifetime.quantile(0.99));
    body.raw("latency", lat.str());
  }
  // Rolling-window views (see ServerConfig::stats_window_s): what the
  // daemon is doing *now*, as opposed to the lifetime aggregates above.
  // These decay to zero within one window of the load stopping. One `now`
  // for both reads so the count and the quantiles describe the same
  // window.
  const std::int64_t now_s = obs::steady_now_s();
  {
    const obs::Histogram::Data windowed =
        accounting_.latency_window_ms.data_at(now_s);
    json::Object lat;
    lat.add("count", windowed.count)
        .add("p50_ms", windowed.quantile(0.50))
        .add("p90_ms", windowed.quantile(0.90))
        .add("p99_ms", windowed.quantile(0.99))
        .add("window_seconds",
             static_cast<std::uint64_t>(
                 accounting_.latency_window_ms.window_seconds()));
    body.raw("latency_windowed", lat.str());
  }
  const std::uint64_t window_count =
      accounting_.requests_window.value_at(now_s);
  body.add("requests_window", window_count)
      .add("qps",
           static_cast<double>(window_count) /
               static_cast<double>(accounting_.requests_window
                                       .window_seconds()))
      .add("spans_dropped", obs::dropped_span_count())
      .add("events_dropped", obs::Registry::instance().snapshot().counter_or(
                                 "obs.events_dropped", 0));
  return ctx.finish(body);
}

QueryResult QueryEngine::op_metrics(RequestContext& ctx) {
  // Prometheus text exposition of the whole registry as the payload; the
  // JSON body is just the envelope. `ivt query --op metrics --out -` is a
  // scrape.
  std::string payload =
      obs::to_prometheus(obs::Registry::instance().snapshot());
  json::Object body = ctx.base();
  body.add("bytes", static_cast<std::uint64_t>(payload.size()))
      .add("payload_format", "prometheus");
  return ctx.finish(body, std::move(payload));
}

dataflow::Table QueryEngine::load_kb(RequestContext& ctx,
                                     const TraceEntry& entry,
                                     const dataflow::Table& urel) {
  const RequestContext::StageTimer timer(ctx, "scan");
  OBS_SPAN("serve.scan");
  colstore::ScanPredicate pred = core::urel_scan_predicate(urel);
  if (ctx.has_time_range()) {
    pred.has_time_range = true;
    pred.min_t_ns =
        ctx.has_min ? ctx.min_t_ns : std::numeric_limits<std::int64_t>::min();
    pred.max_t_ns =
        ctx.has_max ? ctx.max_t_ns : std::numeric_limits<std::int64_t>::max();
  }
  dataflow::Table kb(tracefile::kb_schema());
  ctx.chunks_total = entry.chunks.size();
  const std::vector<std::uint16_t> bus_indices =
      colstore::detail::prune_bus_indices(pred, entry.buses);
  for (std::size_t i = 0; i < entry.chunks.size(); ++i) {
    const colstore::ChunkInfo& info = entry.chunks[i];
    if (!colstore::chunk_may_match(info, pred, bus_indices)) continue;
    ++ctx.chunks_scanned;
    bool cache_hit = false;
    const std::shared_ptr<const std::string> bytes =
        catalog_->chunk_bytes(entry, i, chunk_cache_, &cache_hit);
    if (cache_hit) {
      ++ctx.chunk_cache_hits;
    } else {
      ++ctx.chunk_cache_misses;
      // A tier-1 miss means chunk_bytes() just read the extent from disk.
      accounting_.chunks_loaded.fetch_add(1, std::memory_order_relaxed);
    }
    dataflow::Partition part = colstore::scan_chunk_from_bytes(
        *bytes, info, pred, entry.buses, entry.version, entry.key_dict,
        scan_mode_, nullptr);
    accounting_.chunks_decoded.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNT("serve.chunks_decoded", 1);
    ++ctx.chunks_decoded;
    kb.add_partition(std::move(part));
  }
  return kb;
}

QueryResult QueryEngine::op_preselect(RequestContext& ctx) {
  const TraceEntry& entry = catalog_->require(ctx.trace);
  const dataflow::Table urel = build_urel(catalog_->db(), ctx.signals);
  const dataflow::Table kb = load_kb(ctx, entry, urel);
  std::string payload;
  {
    const RequestContext::StageTimer timer(ctx, "serialize");
    payload = render_csv(kb);
  }
  ctx.rows = kb.num_rows();
  json::Object body = ctx.base();
  body.add("rows", static_cast<std::uint64_t>(kb.num_rows()))
      .add("columns", static_cast<std::uint64_t>(kb.schema().size()))
      .add("chunks_total", static_cast<std::uint64_t>(ctx.chunks_total))
      .add("chunks_scanned", static_cast<std::uint64_t>(ctx.chunks_scanned))
      .add("payload_format", "csv");
  return ctx.finish(body, std::move(payload));
}

QueryResult QueryEngine::op_extract(RequestContext& ctx) {
  const TraceEntry& entry = catalog_->require(ctx.trace);
  const dataflow::Table urel = build_urel(catalog_->db(), ctx.signals);
  const dataflow::Table kb = load_kb(ctx, entry, urel);
  dataflow::Engine engine = make_inline_engine();
  core::InterpretOptions options;
  options.catalog = &catalog_->db();
  dataflow::Table ks;
  {
    const RequestContext::StageTimer timer(ctx, "interpret");
    OBS_SPAN("serve.interpret");
    ks = core::interpret(engine, kb, urel, options);
  }
  std::string payload;
  {
    const RequestContext::StageTimer timer(ctx, "serialize");
    payload = render_csv(ks);
  }
  ctx.rows = ks.num_rows();
  json::Object body = ctx.base();
  body.add("rows", static_cast<std::uint64_t>(ks.num_rows()))
      .add("columns", static_cast<std::uint64_t>(ks.schema().size()))
      .add("chunks_total", static_cast<std::uint64_t>(ctx.chunks_total))
      .add("chunks_scanned", static_cast<std::uint64_t>(ctx.chunks_scanned))
      .add("payload_format", "csv");
  return ctx.finish(body, std::move(payload));
}

std::shared_ptr<const StateEntry> QueryEngine::state_entry(
    RequestContext& ctx, const TraceEntry& entry) {
  // Tier-2 key: everything that changes the pipeline's output. Signals
  // are order-insensitive (U_comb is a set), so the key sorts them.
  std::vector<std::string> sorted = ctx.signals;
  std::sort(sorted.begin(), sorted.end());
  std::string key = entry.name + "|rate=";
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", ctx.rate_threshold_hz);
    key += buf;
  }
  for (const std::string& s : sorted) key += "|" + s;

  if (std::shared_ptr<const StateEntry> hit = state_cache_.get(key)) {
    return hit;
  }

  // Build: full-journey pipeline run (NOT time-sliced — the state
  // representation forward-fills from the journey start, so a slice is
  // applied to the finished table, never to the scan). Parameters match
  // the batch CLI defaults (`ivt run`) so served results are
  // byte-comparable with batch output.
  const dataflow::Table urel = build_urel(catalog_->db(), ctx.signals);
  const bool saved_min = ctx.has_min;
  const bool saved_max = ctx.has_max;
  ctx.has_min = false;
  ctx.has_max = false;
  const dataflow::Table kb = load_kb(ctx, entry, urel);
  ctx.has_min = saved_min;
  ctx.has_max = saved_max;

  auto built = std::make_shared<StateEntry>();
  {
    const RequestContext::StageTimer timer(ctx, "pipeline");
    OBS_SPAN("serve.pipeline");
    core::PipelineConfig config;
    config.signals = ctx.signals;
    config.classifier.rate_threshold_hz = ctx.rate_threshold_hz;
    dataflow::Engine engine = make_inline_engine();
    const core::Pipeline pipeline(catalog_->db(), config);
    core::PipelineResult result = pipeline.run(engine, kb);
    built->state = std::move(result.state);
    built->krep = std::move(result.krep);
  }
  state_cache_.put(key, built,
                   approx_table_bytes(built->state) +
                       approx_table_bytes(built->krep));
  return built;
}

QueryResult QueryEngine::op_state(RequestContext& ctx) {
  const TraceEntry& entry = catalog_->require(ctx.trace);
  const std::uint64_t hits_before = state_cache_stats().hits;
  const std::shared_ptr<const StateEntry> cached = state_entry(ctx, entry);
  const bool was_hit = state_cache_stats().hits > hits_before;
  ctx.state_cache_hit = was_hit;

  // Slice lazily: the common full-table query serializes straight from
  // the cached table without copying it.
  const dataflow::Table* result = &cached->state;
  dataflow::Table sliced;
  {
    const RequestContext::StageTimer timer(ctx, "slice");
    dataflow::Engine engine = make_inline_engine();
    if (ctx.has_time_range()) {
      const std::size_t t_col = result->schema().require("t");
      const std::int64_t lo = ctx.has_min
                                  ? ctx.min_t_ns
                                  : std::numeric_limits<std::int64_t>::min();
      const std::int64_t hi = ctx.has_max
                                  ? ctx.max_t_ns
                                  : std::numeric_limits<std::int64_t>::max();
      sliced = dataflow::filter(
          engine, *result,
          [t_col, lo, hi](const dataflow::RowView& row) {
            if (row.is_null(t_col)) return false;
            const std::int64_t t = row.int64_at(t_col);
            return t >= lo && t <= hi;
          },
          "serve.state_slice");
      result = &sliced;
    }
    if (!ctx.signals.empty()) {
      // Project "t" plus the requested signals that actually appear in
      // the representation (a signal with no instances grows no column).
      std::vector<std::string> columns{"t"};
      for (const std::string& s : ctx.signals) {
        if (result->schema().contains(s)) columns.push_back(s);
      }
      sliced = dataflow::project(engine, *result, columns);
      result = &sliced;
    }
  }
  std::string payload;
  {
    const RequestContext::StageTimer timer(ctx, "serialize");
    payload = render_csv(*result);
  }
  ctx.rows = result->num_rows();
  json::Object body = ctx.base();
  body.add("rows", static_cast<std::uint64_t>(result->num_rows()))
      .add("columns", static_cast<std::uint64_t>(result->schema().size()))
      .add("cached", was_hit)
      .add("payload_format", "csv");
  return ctx.finish(body, std::move(payload));
}

QueryResult QueryEngine::op_mine(RequestContext& ctx) {
  const TraceEntry& entry = catalog_->require(ctx.trace);
  const std::uint64_t hits_before = state_cache_stats().hits;
  const std::shared_ptr<const StateEntry> cached = state_entry(ctx, entry);
  const bool was_hit = state_cache_stats().hits > hits_before;
  ctx.state_cache_hit = was_hit;

  apps::AnomalyConfig config;
  config.top_k = static_cast<std::size_t>(std::max<std::int64_t>(ctx.top_k, 0));
  std::vector<apps::Anomaly> anomalies;
  {
    const RequestContext::StageTimer timer(ctx, "mine");
    OBS_SPAN("serve.mine");
    anomalies = apps::detect_element_anomalies(cached->krep, config);
  }
  std::string array = "[";
  for (std::size_t i = 0; i < anomalies.size(); ++i) {
    const apps::Anomaly& a = anomalies[i];
    json::Object obj;
    obj.add("t_ns", a.t_ns)
        .add("signal", a.signal)
        .add("description", a.description)
        .add("severity", a.severity)
        .add("occurrences", static_cast<std::uint64_t>(a.occurrences));
    if (i > 0) array += ",";
    array += obj.str();
  }
  array += "]";
  ctx.rows = anomalies.size();
  json::Object body = ctx.base();
  body.add("count", static_cast<std::uint64_t>(anomalies.size()))
      .add("cached", was_hit)
      .raw("anomalies", array);
  return ctx.finish(body);
}

std::size_t approx_table_bytes(const dataflow::Table& table) {
  std::size_t bytes = 0;
  for (std::size_t p = 0; p < table.num_partitions(); ++p) {
    const dataflow::Partition& part = table.partition(p);
    for (const dataflow::Column& col : part.columns) {
      bytes += col.size();  // validity mask
      switch (col.type()) {
        case dataflow::ValueType::Int64:
          bytes += col.size() * sizeof(std::int64_t);
          break;
        case dataflow::ValueType::Float64:
          bytes += col.size() * sizeof(double);
          break;
        case dataflow::ValueType::String:
          bytes += col.size() * sizeof(std::string);
          for (const std::string& s : col.string_data()) bytes += s.size();
          break;
        default:
          break;
      }
    }
  }
  return bytes;
}

}  // namespace ivt::serve
