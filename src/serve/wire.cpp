#include "serve/wire.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "errors/error.hpp"

namespace ivt::serve {
namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;  // EPIPE instead of SIGPIPE
#else
constexpr int kSendFlags = 0;
#endif

/// Read exactly `n` bytes. Returns the byte count actually read, which is
/// < n only on EOF; throws errors::Error(Io) on a socket error.
std::size_t read_exact(int fd, char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, buf + done, n - done);
    if (got == 0) break;  // EOF
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: the peer stalled, not a broken socket.
        IVT_THROW(errors::Category::Timeout,
                  "serve: socket read timed out waiting for peer");
      }
      IVT_THROW(errors::Category::Io,
                std::string("serve: socket read failed: ") +
                    std::strerror(errno));
    }
    done += static_cast<std::size_t>(got);
  }
  return done;
}

void write_exact(int fd, const char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::send(fd, buf + done, n - done, kSendFlags);
    if (put < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        IVT_THROW(errors::Category::Timeout,
                  "serve: socket write timed out waiting for peer");
      }
      IVT_THROW(errors::Category::Io,
                std::string("serve: socket write failed: ") +
                    std::strerror(errno));
    }
    done += static_cast<std::size_t>(put);
  }
}

std::uint32_t load_u32le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8U) |
         (static_cast<std::uint32_t>(b[2]) << 16U) |
         (static_cast<std::uint32_t>(b[3]) << 24U);
}

void store_u32le(char* p, std::uint32_t v) {
  auto* b = reinterpret_cast<unsigned char*>(p);
  b[0] = static_cast<unsigned char>(v & 0xFFU);
  b[1] = static_cast<unsigned char>((v >> 8U) & 0xFFU);
  b[2] = static_cast<unsigned char>((v >> 16U) & 0xFFU);
  b[3] = static_cast<unsigned char>((v >> 24U) & 0xFFU);
}

}  // namespace

bool read_frame(int fd, Frame& out) {
  char header[12];
  const std::size_t got = read_exact(fd, header, sizeof(header));
  if (got == 0) return false;  // clean EOF at a frame boundary
  if (got < sizeof(header)) {
    IVT_THROW(errors::Category::Io, "serve: connection closed mid-header");
  }
  const std::uint32_t magic = load_u32le(header);
  if (magic != kFrameMagic) {
    IVT_THROW(errors::Category::Format,
              "serve: bad frame magic 0x" + [&] {
                char buf[16];
                std::snprintf(buf, sizeof(buf), "%08x", magic);
                return std::string(buf);
              }());
  }
  const std::uint32_t json_len = load_u32le(header + 4);
  const std::uint32_t payload_len = load_u32le(header + 8);
  if (json_len > kMaxJsonBytes) {
    IVT_THROW(errors::Category::Format,
              "serve: frame JSON body of " + std::to_string(json_len) +
                  " bytes exceeds limit of " + std::to_string(kMaxJsonBytes));
  }
  if (payload_len > kMaxPayloadBytes) {
    IVT_THROW(errors::Category::Format,
              "serve: frame payload of " + std::to_string(payload_len) +
                  " bytes exceeds limit of " +
                  std::to_string(kMaxPayloadBytes));
  }
  out.json.resize(json_len);
  if (json_len > 0 && read_exact(fd, out.json.data(), json_len) < json_len) {
    IVT_THROW(errors::Category::Io, "serve: connection closed mid-frame");
  }
  out.payload.resize(payload_len);
  if (payload_len > 0 &&
      read_exact(fd, out.payload.data(), payload_len) < payload_len) {
    IVT_THROW(errors::Category::Io, "serve: connection closed mid-frame");
  }
  return true;
}

void write_frame(int fd, const Frame& frame) {
  if (frame.json.size() > kMaxJsonBytes) {
    IVT_THROW(errors::Category::Format,
              "serve: refusing to send JSON body of " +
                  std::to_string(frame.json.size()) + " bytes (limit " +
                  std::to_string(kMaxJsonBytes) + ")");
  }
  if (frame.payload.size() > kMaxPayloadBytes) {
    IVT_THROW(errors::Category::Format,
              "serve: refusing to send payload of " +
                  std::to_string(frame.payload.size()) + " bytes (limit " +
                  std::to_string(kMaxPayloadBytes) + ")");
  }
  char header[12];
  store_u32le(header, kFrameMagic);
  store_u32le(header + 4, static_cast<std::uint32_t>(frame.json.size()));
  store_u32le(header + 8, static_cast<std::uint32_t>(frame.payload.size()));
  write_exact(fd, header, sizeof(header));
  write_exact(fd, frame.json.data(), frame.json.size());
  write_exact(fd, frame.payload.data(), frame.payload.size());
}

}  // namespace ivt::serve
