// Minimal JSON support for the ivt-serve wire protocol.
//
// Requests and response headers are small JSON documents inside a
// length-prefixed frame (see serve/wire.hpp). This header provides the
// two halves the daemon needs and nothing more:
//
//   - json::parse(text)  — recursive-descent parser into a Value tree.
//     Malformed input throws errors::Error(Category::Decode): a bad
//     request body is data corruption from the server's point of view,
//     never a crash. Integer-looking numbers keep exact 64-bit values
//     (trace timestamps exceed double's 53-bit mantissa).
//   - json::Object       — ordered key -> rendered-value builder for
//     responses (same escaping rules as obs/bench emitters).
//
// Dependency-free by design: the container already bans new third-party
// dependencies, and the protocol needs only objects, arrays, strings,
// numbers and bools.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "errors/error.hpp"

namespace ivt::serve::json {

struct Value;
using Array = std::vector<Value>;
using Members = std::map<std::string, Value>;

struct Value {
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               Array, Members>
      v;

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v);
  }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(v);
  }
  [[nodiscard]] bool is_number() const {
    return is_int() || std::holds_alternative<double>(v);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Members>(v);
  }

  [[nodiscard]] bool boolean() const { return std::get<bool>(v); }
  [[nodiscard]] std::int64_t integer() const;
  [[nodiscard]] double number() const;
  [[nodiscard]] const std::string& string() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] const Array& array() const { return std::get<Array>(v); }
  [[nodiscard]] const Members& members() const {
    return std::get<Members>(v);
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;

  // Typed member accessors with fallbacks, the shape request parsing
  // wants. A present-but-wrong-type member throws errors::Error(Decode).
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  /// Member must be an array of strings when present; empty otherwise.
  [[nodiscard]] std::vector<std::string> get_string_list(
      const std::string& key) const;
};

/// Parse a complete JSON document. Throws errors::Error(Category::Decode)
/// on malformed input or trailing content.
[[nodiscard]] Value parse(const std::string& text);

/// RFC 8259 string escaping (shared with the writer below).
[[nodiscard]] std::string escape(const std::string& s);

/// Ordered JSON object builder for responses. Values render immediately,
/// so nesting is composed by passing a rendered Object/array via raw().
class Object {
 public:
  Object& add(const std::string& key, const std::string& value);
  Object& add(const std::string& key, const char* value);
  Object& add(const std::string& key, std::int64_t value);
  Object& add(const std::string& key, std::uint64_t value);
  Object& add(const std::string& key, double value);
  Object& add(const std::string& key, bool value);
  /// Pre-rendered JSON (nested object, array).
  Object& raw(const std::string& key, const std::string& rendered);

  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Render a string array ["a", "b"].
[[nodiscard]] std::string render_array(const std::vector<std::string>& items);

}  // namespace ivt::serve::json
