// The ivt-serve daemon: a concurrent trace-query server.
//
// Threading model (see DESIGN.md "Serving"):
//
//   accept thread ──► one reader thread per connection ──► worker pool
//
//   - The accept loop owns the listening socket and spawns one
//     lightweight reader thread per accepted connection.
//   - A reader thread only does framing I/O: it reads one frame, hands
//     the request to the shared dataflow::ThreadPool, blocks on the
//     result, writes the response frame. Requests on one connection are
//     processed in order; concurrency comes from concurrent connections.
//   - Query execution happens on the worker pool. Each request runs the
//     pipeline on an *inline* engine (see serve/query_engine.hpp), so
//     pool workers never nest pools.
//
// Admission control: an atomic in-flight counter gates the worker pool.
// When `max_in_flight` requests are already executing, the next request
// is rejected immediately with a typed, retryable Overloaded error —
// clients back off and retry; in-budget requests are unaffected. The
// same limit is passed to ThreadPool::submit_bounded as the structural
// backstop: even if gate accounting were wrong, the pool's bounded
// admission caps queued work.
//
// Shutdown: request_stop() is async-signal-safe (it writes one byte to a
// self-pipe), so the CLI's SIGTERM/SIGINT handler can call it directly;
// wait() unblocks, and stop() closes the listener, wakes readers via
// socket shutdown, joins every thread and drains the pool. In-flight
// requests complete and their responses are written before the
// connection closes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataflow/thread_pool.hpp"
#include "errors/error.hpp"
#include "obs/eventlog.hpp"
#include "serve/query_engine.hpp"
#include "serve/trace_catalog.hpp"
#include "serve/wire.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace ivt::serve {

/// What an error response puts on the wire for one errors::Category.
struct WireError {
  const char* category;  ///< "category" field of the error body
  bool retryable;        ///< "retryable" field
};

/// Maps a category to its wire representation; exhaustive over
/// errors::Category (an `error-table` anchor for ivt-analyze).
WireError wire_category(errors::Category category);

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks a free port, port() reports it.
  std::uint16_t port = 0;
  /// Worker pool size; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Admission window: requests executing concurrently before the server
  /// answers Overloaded. 0 = 2 × workers.
  std::size_t max_in_flight = 0;
  /// JSON-lines access/event log path; empty = disabled. One record per
  /// request (op, trace_id, stage timings, cache accounting, outcome)
  /// plus slow-query and lifecycle events. See obs/eventlog.hpp.
  std::string event_log_path;
  /// Requests slower than this log a "serve.slow_query" warning event.
  /// 0 = disabled.
  double slow_query_ms = 0.0;
  QueryEngineConfig query;
};

class Server {
 public:
  /// Takes ownership of the catalog; configures but does not start.
  Server(std::unique_ptr<TraceCatalog> catalog, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and start the accept thread. Throws errors::Error(Io)
  /// when the address cannot be bound or listened on (the CLI maps this
  /// to exit code 5).
  void start();

  /// Actual listening port (after start(); resolves port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& host() const { return config_.host; }

  /// Block until request_stop() is called (SIGTERM handler, shutdown op).
  void wait();

  /// Async-signal-safe stop request: wakes wait(). Does not tear down.
  void request_stop() noexcept;

  /// Full teardown: close the listener, unblock and join every
  /// connection thread (in-flight requests finish first), drain the
  /// pool. Idempotent.
  void stop();

  [[nodiscard]] QueryEngine& query_engine() { return engine_; }
  [[nodiscard]] std::size_t max_in_flight() const { return max_in_flight_; }
  /// nullptr when no event log was configured.
  [[nodiscard]] obs::EventLog* event_log() { return event_log_.get(); }

 private:
  void accept_loop();
  void serve_connection(int fd);

  /// What serve_connection needs to know about a handled request beyond
  /// the response frame: the access-record fields for the event log.
  struct AccessInfo {
    std::string op;
    std::uint64_t trace_id = 0;
    bool ok = false;
    std::string error_category;  ///< set when !ok
    QueryResult::Stats stats;    ///< set when ok
  };

  /// Admission + execution + rendering of one request. Always returns a
  /// response frame — failures become {"ok": false, "error": {...}}
  /// bodies, never dropped connections.
  Frame handle_request(const Frame& request, std::uint64_t request_id,
                       AccessInfo& access);

  ServerConfig config_;
  std::unique_ptr<TraceCatalog> catalog_;
  std::unique_ptr<obs::EventLog> event_log_;
  QueryEngine engine_;
  dataflow::ThreadPool pool_;
  std::size_t max_in_flight_ = 0;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::thread accept_thread_;

  support::Mutex mutex_{support::LockRank::k_serve_Server_mutex_};
  struct Connection {
    int fd = -1;
    std::thread thread;
  };
  std::vector<Connection> connections_ IVT_GUARDED_BY(mutex_);
};

}  // namespace ivt::serve
