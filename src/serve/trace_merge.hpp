// Merge Chrome trace-event exports from several processes into one
// timeline (`ivt trace-merge`).
//
// The client (`ivt query --trace-out`) and the daemon (`ivt serve
// --trace-out`) each export their own spans with pid 0. Loading them
// separately loses the request join; loading them merged, each input is
// re-assigned a distinct pid (its index) and labeled with a
// "process_name" metadata event, so chrome://tracing / Perfetto shows
// one timeline with a lane per process — and the propagated trace_id in
// the span args ties a client request row to the server-side spans it
// caused.
//
// Timestamps are NOT rebased: each process exports steady-clock time
// since its own trace epoch, so cross-process horizontal alignment is
// approximate. The alignment that matters — which server spans belong to
// which client request — comes from the trace_id args, not the clock.
#pragma once

#include <string>
#include <vector>

namespace ivt::serve {

struct TraceInput {
  std::string label;      ///< process lane name (e.g. the file basename)
  std::string json_text;  ///< a chrome_trace_json()-style document
};

/// Merge the inputs into one Chrome trace document. Each input's events
/// get pid = input index plus a process_name metadata event carrying its
/// label. Throws errors::Error(Category::Decode) when an input is not a
/// JSON object with a "traceEvents" array of objects.
[[nodiscard]] std::string merge_chrome_traces(
    const std::vector<TraceInput>& inputs);

}  // namespace ivt::serve
