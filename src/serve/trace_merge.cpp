#include "serve/trace_merge.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "errors/error.hpp"
#include "serve/json.hpp"

namespace ivt::serve {

namespace {

/// Re-render a parsed json::Value. The wire parser keeps integer-looking
/// numbers exact (int64), so round-tripping through this renderer does
/// not corrupt timestamps; doubles render with enough digits to
/// round-trip. Member order is not preserved (std::map sorts keys) —
/// Chrome trace consumers key on names, not order.
void render_value(std::ostringstream& os, const json::Value& value) {
  if (value.is_null()) {
    os << "null";
  } else if (value.is_bool()) {
    os << (value.boolean() ? "true" : "false");
  } else if (value.is_int()) {
    os << value.integer();
  } else if (value.is_number()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value.number());
    os << buf;
  } else if (value.is_string()) {
    os << '"' << json::escape(value.string()) << '"';
  } else if (value.is_array()) {
    os << '[';
    bool first = true;
    for (const json::Value& item : value.array()) {
      if (!first) os << ", ";
      first = false;
      render_value(os, item);
    }
    os << ']';
  } else {
    os << '{';
    bool first = true;
    for (const auto& [key, member] : value.members()) {
      if (!first) os << ", ";
      first = false;
      os << '"' << json::escape(key) << "\": ";
      render_value(os, member);
    }
    os << '}';
  }
}

/// Render one trace event with its "pid" forced to `pid`.
void render_event(std::ostringstream& os, const json::Value& event,
                  std::size_t pid) {
  os << "{\"pid\": " << pid;
  for (const auto& [key, member] : event.members()) {
    if (key == "pid") continue;
    os << ", \"" << json::escape(key) << "\": ";
    render_value(os, member);
  }
  os << '}';
}

}  // namespace

std::string merge_chrome_traces(const std::vector<TraceInput>& inputs) {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (std::size_t pid = 0; pid < inputs.size(); ++pid) {
    const TraceInput& input = inputs[pid];
    const json::Value doc = json::parse(input.json_text);
    const json::Value* events = doc.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      IVT_THROW(errors::Category::Decode,
                "trace-merge: input \"" + input.label +
                    "\" has no traceEvents array");
    }
    if (!first) os << ",\n";
    first = false;
    os << "{\"pid\": " << pid
       << ", \"ph\": \"M\", \"name\": \"process_name\", \"args\": "
          "{\"name\": \""
       << json::escape(input.label) << "\"}}";
    for (const json::Value& event : events->array()) {
      if (!event.is_object()) {
        IVT_THROW(errors::Category::Decode,
                  "trace-merge: input \"" + input.label +
                      "\" has a non-object trace event");
      }
      os << ",\n";
      render_event(os, event, pid);
    }
  }
  if (!first) os << "\n";
  os << "],\n\"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

}  // namespace ivt::serve
