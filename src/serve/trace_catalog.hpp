// The ivt-serve daemon's view of its servable data: a signal catalog
// (.ivsdb) plus a set of registered .ivc traces.
//
// Registration opens each .ivc once to parse the footer (chunk directory,
// zone maps, bus dictionary, vehicle/journey identity) and then DROPS the
// file image, keeping only the metadata and an O_RDONLY file descriptor.
// At query time, surviving chunks are fetched as their raw compressed
// extents [offset, offset + encoded_bytes) via pread(2) — or, on a warm
// path, straight from the tier-1 chunk cache — and decoded through
// colstore::decode_chunk_from_bytes. The daemon's resident footprint is
// therefore (cache budget + metadata), not (sum of trace files), which is
// what makes serving a large fleet catalog from one process viable.
//
// The catalog is immutable after construction completes (the server
// registers every trace before it starts accepting), so lookups are
// lock-free.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "colstore/format.hpp"
#include "serve/lru_cache.hpp"
#include "signaldb/catalog.hpp"

namespace ivt::serve {

/// Parsed footer metadata of one registered trace.
struct TraceEntry {
  std::string name;     ///< catalog key (request "trace" field)
  std::string path;
  std::string vehicle;
  std::string journey;
  std::int64_t start_unix_ns = 0;
  std::vector<std::string> buses;
  std::vector<colstore::ChunkInfo> chunks;
  /// Container format version + v2 join-key dictionary (empty for v1):
  /// the file context scan_chunk_from_bytes needs so cached extents can
  /// be evaluated compressed instead of re-decoded per request.
  std::uint32_t version = colstore::kColumnarFormatVersionV1;
  std::vector<colstore::KeyDictEntry> key_dict;
  std::size_t num_rows = 0;
  int fd = -1;          ///< owned O_RDONLY descriptor for pread

  TraceEntry() = default;
  TraceEntry(const TraceEntry&) = delete;
  TraceEntry& operator=(const TraceEntry&) = delete;
  ~TraceEntry();
};

/// Tier-1 cache key: one compressed chunk extent of one trace.
struct ChunkKey {
  std::string trace;
  std::uint64_t chunk = 0;

  bool operator==(const ChunkKey& other) const {
    return chunk == other.chunk && trace == other.trace;
  }
};

struct ChunkKeyHash {
  std::size_t operator()(const ChunkKey& key) const {
    return std::hash<std::string>{}(key.trace) * 1000003U +
           static_cast<std::size_t>(key.chunk);
  }
};

using ChunkCache = ShardedLruCache<ChunkKey, std::string, ChunkKeyHash>;

class TraceCatalog {
 public:
  explicit TraceCatalog(signaldb::Catalog db);

  /// Parse `path`'s footer and register it under `name`. Throws
  /// errors::Error(Io/Format) on unreadable or malformed files and
  /// errors::Error(Spec) on a duplicate name.
  void add_trace(const std::string& name, const std::string& path);

  /// nullptr when unknown.
  [[nodiscard]] const TraceEntry* find(const std::string& name) const;
  /// Like find, but throws errors::Error(Spec) for unknown traces (the
  /// typed-error path for bad request bodies).
  [[nodiscard]] const TraceEntry& require(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const signaldb::Catalog& db() const { return db_; }

  /// Fetch chunk `chunk_index` of `entry` as its raw compressed bytes,
  /// consulting (and on miss populating) `cache`. The returned bytes are
  /// exactly the on-disk extent; decode with
  /// colstore::decode_chunk_from_bytes. Fault site "serve.cache" fires on
  /// the miss path, modelling a failed backing-store read. `was_hit`
  /// (optional) reports whether the cache served the extent — per-request
  /// accounting for the access log, where the cache's lifetime hit
  /// counters are too coarse.
  [[nodiscard]] std::shared_ptr<const std::string> chunk_bytes(
      const TraceEntry& entry, std::size_t chunk_index, ChunkCache& cache,
      bool* was_hit = nullptr) const;

 private:
  signaldb::Catalog db_;
  std::map<std::string, std::unique_ptr<TraceEntry>> traces_;
};

}  // namespace ivt::serve
