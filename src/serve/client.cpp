#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "errors/error.hpp"

namespace ivt::serve {

std::string ClientResponse::error_category() const {
  if (const json::Value* e = body.find("error")) {
    return e->get_string("category", "");
  }
  return "";
}

std::string ClientResponse::error_message() const {
  if (const json::Value* e = body.find("error")) {
    return e->get_string("message", "");
  }
  return "";
}

bool ClientResponse::retryable() const {
  if (const json::Value* e = body.find("error")) {
    return e->get_bool("retryable", false);
  }
  return false;
}

namespace {

/// connect() bounded by poll(): the socket goes non-blocking for the
/// handshake, then back to blocking so SO_RCVTIMEO/SO_SNDTIMEO govern
/// the per-call deadlines afterwards.
void connect_with_deadline(int fd, const sockaddr_in& addr, int timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    IVT_THROW(errors::Category::Io,
              std::string("query: fcntl failed: ") + std::strerror(errno));
  }
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      IVT_THROW(errors::Category::Io,
                std::string("query: connect failed: ") + std::strerror(errno));
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int polled;
    do {
      polled = ::poll(&pfd, 1, timeout_ms);
    } while (polled < 0 && errno == EINTR);
    if (polled == 0) {
      IVT_THROW(errors::Category::Timeout,
                "query: connect timed out after " +
                    std::to_string(timeout_ms) + "ms");
    }
    if (polled < 0) {
      IVT_THROW(errors::Category::Io,
                std::string("query: poll failed: ") + std::strerror(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      IVT_THROW(errors::Category::Io,
                std::string("query: connect failed: ") +
                    std::strerror(err != 0 ? err : errno));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    IVT_THROW(errors::Category::Io,
              std::string("query: fcntl failed: ") + std::strerror(errno));
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  // Best-effort: a kernel refusing these just leaves the socket blocking.
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port, int timeout_ms) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    IVT_THROW(errors::Category::Io,
              std::string("query: socket failed: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    IVT_THROW(errors::Category::Io, "query: bad host address '" + host + "'");
  }
  try {
    if (timeout_ms > 0) {
      connect_with_deadline(fd_, addr, timeout_ms);
    } else if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) != 0) {
      IVT_THROW(errors::Category::Io,
                "query: cannot connect to " + host + ":" +
                    std::to_string(port) + ": " + std::strerror(errno));
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::request_raw(const Frame& frame) {
  write_frame(fd_, frame);
  Frame response;
  if (!read_frame(fd_, response)) {
    IVT_THROW(errors::Category::Io,
              "query: server closed the connection before responding");
  }
  return response;
}

ClientResponse Client::request(const std::string& request_json) {
  Frame response = request_raw(Frame{request_json, {}});
  ClientResponse out;
  out.body = json::parse(response.json);
  out.payload = std::move(response.payload);
  return out;
}

void add_trace_context(json::Object& request, const obs::TraceContext& ctx) {
  if (!ctx.valid()) return;
  json::Object tc;
  tc.add("trace_id", obs::trace_id_hex(ctx.trace_id))
      .add("parent_span_id", ctx.span_id);
  request.raw("trace_ctx", tc.str());
}

}  // namespace ivt::serve
