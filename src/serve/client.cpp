#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "errors/error.hpp"

namespace ivt::serve {

std::string ClientResponse::error_category() const {
  if (const json::Value* e = body.find("error")) {
    return e->get_string("category", "");
  }
  return "";
}

std::string ClientResponse::error_message() const {
  if (const json::Value* e = body.find("error")) {
    return e->get_string("message", "");
  }
  return "";
}

bool ClientResponse::retryable() const {
  if (const json::Value* e = body.find("error")) {
    return e->get_bool("retryable", false);
  }
  return false;
}

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    IVT_THROW(errors::Category::Io,
              std::string("query: socket failed: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    IVT_THROW(errors::Category::Io, "query: bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved_errno = errno;
    ::close(fd_);
    fd_ = -1;
    IVT_THROW(errors::Category::Io,
              "query: cannot connect to " + host + ":" +
                  std::to_string(port) + ": " + std::strerror(saved_errno));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::request_raw(const Frame& frame) {
  write_frame(fd_, frame);
  Frame response;
  if (!read_frame(fd_, response)) {
    IVT_THROW(errors::Category::Io,
              "query: server closed the connection before responding");
  }
  return response;
}

ClientResponse Client::request(const std::string& request_json) {
  Frame response = request_raw(Frame{request_json, {}});
  ClientResponse out;
  out.body = json::parse(response.json);
  out.payload = std::move(response.payload);
  return out;
}

void add_trace_context(json::Object& request, const obs::TraceContext& ctx) {
  if (!ctx.valid()) return;
  json::Object tc;
  tc.add("trace_id", obs::trace_id_hex(ctx.trace_id))
      .add("parent_span_id", ctx.span_id);
  request.raw("trace_ctx", tc.str());
}

}  // namespace ivt::serve
