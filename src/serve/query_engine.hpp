// Request execution for the ivt-serve daemon.
//
// A QueryEngine owns the two cache tiers and turns one parsed request
// into one response. It is called concurrently from the server's worker
// pool; all mutable state lives in the (internally synchronized) caches,
// so execute() itself is const-correct and thread-safe. Each request runs
// the relevant slice of the paper's Algorithm 1 on an *inline* dataflow
// engine — parallelism comes from concurrent requests, not from nesting a
// pool inside a pool worker.
//
// Request JSON (op-specific fields in parentheses):
//   {"op": "ping" | "list" | "stats" | "metrics" |
//          "preselect" | "extract" | "state" | "mine",
//    "trace_ctx": {"trace_id": "<hex>",
//                  "parent_span_id": N},     (optional; see
//                                             obs/trace_context.hpp)
//    "trace": "<name>",                      (data ops)
//    "signals": ["a", "b"],                  (optional; empty = all)
//    "min_t_ns": N, "max_t_ns": N,           (optional time slice)
//    "rate_threshold_hz": X,                 (state/mine; default 5.0)
//    "top_k": K}                             (mine; default 10)
//
// Response JSON: {"ok": true, "request_id": N, "op": ...,
//   "rows"/"columns"/..., "stages": {"<stage>": ms, ...},
//   "t_total_ms": ms}; table results travel as a CSV payload. Failures
// throw errors::Error — the server renders them as
//   {"ok": false, "error": {"category", "retryable", "message"}}.
//
// Cache tiers:
//   tier 1 ("serve.chunk_cache"): compressed chunk extents, keyed
//     (trace, chunk index). Hits skip the pread; decode still runs.
//   tier 2 ("serve.state_cache"): materialized state representations
//     (state + K_rep tables), keyed (trace, signal set, rate threshold).
//     Hits skip scan, decode and the whole pipeline — repeated state and
//     mine queries settle here, which is what makes the warm-path
//     "serve.chunks_decoded" counter go flat.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dataflow/table.hpp"
#include "obs/trace_context.hpp"
#include "obs/window.hpp"
#include "serve/json.hpp"
#include "serve/lru_cache.hpp"
#include "serve/trace_catalog.hpp"

namespace ivt::serve {

struct QueryEngineConfig {
  std::size_t chunk_cache_bytes = 64ULL << 20U;
  std::size_t state_cache_bytes = 64ULL << 20U;
  /// How cached chunk extents are evaluated (`ivt serve --scan`): under
  /// Compressed, a tier-1 hit on a v2 trace is scanned run-level — the
  /// request predicate prunes whole key runs without re-decoding the
  /// extent — instead of being fully decoded on every request. Results
  /// are byte-identical; v1 traces always decode.
  colstore::ScanMode scan_mode = colstore::ScanMode::Decoded;
  /// Window width (seconds) for the rolling latency / request-count
  /// views reported by the stats op (engine-owned, so per-server). The
  /// *registry mirrors* ("serve.request_window_ms" etc., what `--op
  /// metrics` exposes) fix their width at first registration, so servers
  /// sharing a process should still agree on it.
  std::size_t stats_window_s = 60;
};

/// Tier-2 entry: pipeline output worth re-slicing.
struct StateEntry {
  dataflow::Table state;
  dataflow::Table krep;
};

using StateCache = ShardedLruCache<std::string, StateEntry>;

/// Daemon-level request accounting, updated by the server's connection
/// loop and reported by the stats op. Like the cache counts and the
/// event log, this is functional state, not telemetry: it works with
/// IVT_OBS=OFF (the OBS_* macro sites only mirror the same numbers into
/// the process registry for the Prometheus/Chrome exports). The rolling
/// views are engine-owned, so every server gets exactly its configured
/// window width regardless of what else registered in the process.
struct RequestAccounting {
  explicit RequestAccounting(std::size_t window_s)
      : requests_window(window_s),
        latency_window_ms(obs::default_latency_bounds_ms(), window_s) {}

  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> requests_failed{0};
  std::atomic<std::uint64_t> requests_overloaded{0};
  std::atomic<std::uint64_t> chunks_decoded{0};
  std::atomic<std::uint64_t> chunks_loaded{0};
  std::atomic<std::int64_t> in_flight{0};
  obs::Histogram latency_ms{obs::default_latency_bounds_ms()};
  obs::RollingCounter requests_window;
  obs::RollingHistogram latency_window_ms;

  /// One finished request: bump the lifetime count and feed both latency
  /// views (lifetime histogram + decaying window).
  void record_request(double elapsed_ms) noexcept {
    requests_total.fetch_add(1, std::memory_order_relaxed);
    latency_ms.record(elapsed_ms);
    requests_window.add(1);
    latency_window_ms.record(elapsed_ms);
  }
};

struct QueryResult {
  std::string json;
  std::string payload;

  /// Per-request accounting, filled by execute() for the server's access
  /// record (event log) — how the request was served, not just what it
  /// returned.
  struct Stats {
    std::string op;
    std::uint64_t trace_id = 0;
    std::vector<std::pair<std::string, double>> stages;  ///< (name, ms)
    std::size_t chunks_total = 0;    ///< chunks in the target trace
    std::size_t chunks_scanned = 0;  ///< survived zone-map pruning
    std::size_t chunks_decoded = 0;  ///< actually decoded this request
    std::size_t chunk_cache_hits = 0;
    std::size_t chunk_cache_misses = 0;
    bool state_cache_hit = false;
    std::uint64_t rows = 0;  ///< result rows (0 for non-table ops)
  };
  Stats stats;
};

class QueryEngine {
 public:
  QueryEngine(const TraceCatalog& catalog, QueryEngineConfig config);

  /// Execute one request (already JSON-parsed). Thread-safe. Throws
  /// errors::Error with a category describing the failure; Spec for bad
  /// request semantics (unknown op/trace/signal), Decode for malformed
  /// bodies, Io for backing-store trouble. `trace_ctx` (when valid) is
  /// installed for the duration of the call so every span records under
  /// the caller's trace_id, which is also echoed in the response JSON.
  [[nodiscard]] QueryResult execute(const json::Value& request,
                                    std::uint64_t request_id,
                                    const obs::TraceContext& trace_ctx = {});

  [[nodiscard]] LruCacheStats chunk_cache_stats() const {
    return chunk_cache_.stats();
  }
  [[nodiscard]] LruCacheStats state_cache_stats() const {
    return state_cache_.stats();
  }

  [[nodiscard]] const TraceCatalog& catalog() const { return *catalog_; }

  /// The server's connection loop writes here; the stats op reads it.
  [[nodiscard]] RequestAccounting& accounting() { return accounting_; }

 private:
  struct RequestContext;

  QueryResult op_ping(RequestContext& ctx);
  QueryResult op_list(RequestContext& ctx);
  QueryResult op_stats(RequestContext& ctx);
  QueryResult op_metrics(RequestContext& ctx);
  QueryResult op_preselect(RequestContext& ctx);
  QueryResult op_extract(RequestContext& ctx);
  QueryResult op_state(RequestContext& ctx);
  QueryResult op_mine(RequestContext& ctx);

  /// Zone-map-pruned K_b load through the chunk cache.
  dataflow::Table load_kb(RequestContext& ctx, const TraceEntry& entry,
                          const dataflow::Table& urel);

  /// Tier-2 lookup / build of the state representation.
  std::shared_ptr<const StateEntry> state_entry(RequestContext& ctx,
                                                const TraceEntry& entry);

  const TraceCatalog* catalog_;
  ChunkCache chunk_cache_;
  StateCache state_cache_;
  colstore::ScanMode scan_mode_ = colstore::ScanMode::Decoded;
  RequestAccounting accounting_;
};

/// Rough resident size of a table (cache accounting): cell storage plus
/// string bytes. Not exact — it ignores allocator overhead — but
/// proportional, which is all byte-budget eviction needs.
[[nodiscard]] std::size_t approx_table_bytes(const dataflow::Table& table);

}  // namespace ivt::serve
