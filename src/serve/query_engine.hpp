// Request execution for the ivt-serve daemon.
//
// A QueryEngine owns the two cache tiers and turns one parsed request
// into one response. It is called concurrently from the server's worker
// pool; all mutable state lives in the (internally synchronized) caches,
// so execute() itself is const-correct and thread-safe. Each request runs
// the relevant slice of the paper's Algorithm 1 on an *inline* dataflow
// engine — parallelism comes from concurrent requests, not from nesting a
// pool inside a pool worker.
//
// Request JSON (op-specific fields in parentheses):
//   {"op": "ping" | "list" | "stats" |
//          "preselect" | "extract" | "state" | "mine",
//    "trace": "<name>",                      (data ops)
//    "signals": ["a", "b"],                  (optional; empty = all)
//    "min_t_ns": N, "max_t_ns": N,           (optional time slice)
//    "rate_threshold_hz": X,                 (state/mine; default 5.0)
//    "top_k": K}                             (mine; default 10)
//
// Response JSON: {"ok": true, "request_id": N, "op": ...,
//   "rows"/"columns"/..., "stages": {"<stage>": ms, ...},
//   "t_total_ms": ms}; table results travel as a CSV payload. Failures
// throw errors::Error — the server renders them as
//   {"ok": false, "error": {"category", "retryable", "message"}}.
//
// Cache tiers:
//   tier 1 ("serve.chunk_cache"): compressed chunk extents, keyed
//     (trace, chunk index). Hits skip the pread; decode still runs.
//   tier 2 ("serve.state_cache"): materialized state representations
//     (state + K_rep tables), keyed (trace, signal set, rate threshold).
//     Hits skip scan, decode and the whole pipeline — repeated state and
//     mine queries settle here, which is what makes the warm-path
//     "serve.chunks_decoded" counter go flat.
#pragma once

#include <cstdint>
#include <string>

#include "dataflow/table.hpp"
#include "serve/json.hpp"
#include "serve/lru_cache.hpp"
#include "serve/trace_catalog.hpp"

namespace ivt::serve {

struct QueryEngineConfig {
  std::size_t chunk_cache_bytes = 64ULL << 20U;
  std::size_t state_cache_bytes = 64ULL << 20U;
};

/// Tier-2 entry: pipeline output worth re-slicing.
struct StateEntry {
  dataflow::Table state;
  dataflow::Table krep;
};

using StateCache = ShardedLruCache<std::string, StateEntry>;

struct QueryResult {
  std::string json;
  std::string payload;
};

class QueryEngine {
 public:
  QueryEngine(const TraceCatalog& catalog, QueryEngineConfig config);

  /// Execute one request (already JSON-parsed). Thread-safe. Throws
  /// errors::Error with a category describing the failure; Spec for bad
  /// request semantics (unknown op/trace/signal), Decode for malformed
  /// bodies, Io for backing-store trouble.
  [[nodiscard]] QueryResult execute(const json::Value& request,
                                    std::uint64_t request_id);

  [[nodiscard]] LruCacheStats chunk_cache_stats() const {
    return chunk_cache_.stats();
  }
  [[nodiscard]] LruCacheStats state_cache_stats() const {
    return state_cache_.stats();
  }

  [[nodiscard]] const TraceCatalog& catalog() const { return *catalog_; }

 private:
  struct RequestContext;

  QueryResult op_ping(RequestContext& ctx);
  QueryResult op_list(RequestContext& ctx);
  QueryResult op_stats(RequestContext& ctx);
  QueryResult op_preselect(RequestContext& ctx);
  QueryResult op_extract(RequestContext& ctx);
  QueryResult op_state(RequestContext& ctx);
  QueryResult op_mine(RequestContext& ctx);

  /// Zone-map-pruned K_b load through the chunk cache.
  dataflow::Table load_kb(RequestContext& ctx, const TraceEntry& entry,
                          const dataflow::Table& urel);

  /// Tier-2 lookup / build of the state representation.
  std::shared_ptr<const StateEntry> state_entry(RequestContext& ctx,
                                                const TraceEntry& entry);

  const TraceCatalog* catalog_;
  ChunkCache chunk_cache_;
  StateCache state_cache_;
};

/// Rough resident size of a table (cache accounting): cell storage plus
/// string bytes. Not exact — it ignores allocator overhead — but
/// proportional, which is all byte-budget eviction needs.
[[nodiscard]] std::size_t approx_table_bytes(const dataflow::Table& table);

}  // namespace ivt::serve
