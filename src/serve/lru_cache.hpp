// Sharded byte-capacity LRU cache for the ivt-serve daemon.
//
// Two instances back the server (see serve/query_engine.hpp): a tier-1
// cache of *compressed* chunk extents (the bytes between two chunk
// directory offsets, exactly as stored in the .ivc file) and a tier-2
// cache of materialized state representations. Both tiers share this one
// template.
//
// Design:
//   - Keys hash onto `num_shards` independent shards, each with its own
//     support::Mutex, intrusive LRU list and byte budget
//     (capacity / num_shards). Concurrent requests touching different
//     chunks therefore rarely contend on a lock. Tiers with few, large
//     entries (the state cache) use a single shard so one entry can
//     occupy the whole budget; tiers with many small entries (the chunk
//     cache) use the default kShards for concurrency.
//   - Values are handed out as shared_ptr<const V>: an entry evicted
//     while a request still decodes from it stays alive until the last
//     reader drops it. Nothing is ever copied out under the lock.
//   - Eviction is strictly LRU within a shard and runs at insert time
//     until the shard is back under budget. A value larger than a whole
//     shard's budget is not cached (the insert immediately evicts it);
//     callers still get their shared_ptr, so oversized requests work,
//     they just never warm the cache.
//   - Hit/miss/eviction/insertion counts are functional state (the
//     stats op and the "cached" response flag depend on them), so the
//     cache keeps its own plain atomics that work with IVT_OBS=OFF.
//     The same counts are mirrored into the process obs registry
//     (<name>.hits / .misses / .evictions / .insertions plus a
//     <name>.bytes gauge) so the Prometheus/metrics exports see cache
//     effectiveness without serve-specific plumbing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace ivt::serve {

/// Aggregated point-in-time statistics of one cache instance.
struct LruCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t bytes = 0;
  std::uint64_t entries = 0;
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  static constexpr std::size_t kShards = 8;

  /// `name` prefixes the obs metrics (e.g. "serve.chunk_cache").
  /// `capacity_bytes` is the total budget across all shards.
  /// `num_shards` trades lock concurrency against the largest single
  /// entry the cache can hold (per-shard budget = capacity / shards).
  ShardedLruCache(std::string name, std::size_t capacity_bytes,
                  std::size_t num_shards = kShards)
      : name_(std::move(name)),
        num_shards_(num_shards == 0 ? 1 : num_shards),
        shard_capacity_(capacity_bytes / num_shards_),
        shards_(std::make_unique<Shard[]>(num_shards_)),
        hits_(obs::Registry::instance().counter(name_ + ".hits")),
        misses_(obs::Registry::instance().counter(name_ + ".misses")),
        evictions_(obs::Registry::instance().counter(name_ + ".evictions")),
        insertions_(obs::Registry::instance().counter(name_ + ".insertions")),
        bytes_gauge_(obs::Registry::instance().gauge(name_ + ".bytes")) {}

  /// Look up `key`; nullptr on miss. A hit moves the entry to the front
  /// of its shard's LRU list.
  [[nodiscard]] std::shared_ptr<const Value> get(const Key& key) {
    Shard& shard = shard_for(key);
    std::shared_ptr<const Value> out;
    {
      const support::MutexLock lock(shard.mutex);
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        out = it->second->value;
      }
    }
    if (out != nullptr) {
      hit_count_.fetch_add(1, std::memory_order_relaxed);
      hits_.add(1);
    } else {
      miss_count_.fetch_add(1, std::memory_order_relaxed);
      misses_.add(1);
    }
    return out;
  }

  /// Insert (or replace) `key`, charging `bytes` against the shard
  /// budget, then evict least-recently-used entries until the shard fits.
  void put(const Key& key, std::shared_ptr<const Value> value,
           std::size_t bytes) {
    Shard& shard = shard_for(key);
    std::uint64_t evicted = 0;
    std::int64_t byte_delta = 0;
    {
      const support::MutexLock lock(shard.mutex);
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        byte_delta -= static_cast<std::int64_t>(it->second->bytes);
        shard.bytes -= it->second->bytes;
        shard.lru.erase(it->second);
        shard.index.erase(it);
      }
      shard.lru.push_front(Entry{key, std::move(value), bytes});
      shard.index.emplace(key, shard.lru.begin());
      shard.bytes += bytes;
      byte_delta += static_cast<std::int64_t>(bytes);
      while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
        const Entry& victim = shard.lru.back();
        shard.bytes -= victim.bytes;
        byte_delta -= static_cast<std::int64_t>(victim.bytes);
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        ++evicted;
      }
    }
    insertion_count_.fetch_add(1, std::memory_order_relaxed);
    insertions_.add(1);
    if (evicted > 0) {
      eviction_count_.fetch_add(evicted, std::memory_order_relaxed);
      evictions_.add(evicted);
    }
    bytes_gauge_.add(byte_delta);
  }

  /// Drop every entry (admin/testing; readers holding shared_ptrs keep
  /// their values).
  void clear() {
    std::int64_t byte_delta = 0;
    for (std::size_t s = 0; s < num_shards_; ++s) {
      const support::MutexLock lock(shards_[s].mutex);
      byte_delta -= static_cast<std::int64_t>(shards_[s].bytes);
      shards_[s].bytes = 0;
      shards_[s].lru.clear();
      shards_[s].index.clear();
    }
    bytes_gauge_.add(byte_delta);
  }

  [[nodiscard]] LruCacheStats stats() const {
    LruCacheStats out;
    out.hits = hit_count_.load(std::memory_order_relaxed);
    out.misses = miss_count_.load(std::memory_order_relaxed);
    out.evictions = eviction_count_.load(std::memory_order_relaxed);
    out.insertions = insertion_count_.load(std::memory_order_relaxed);
    for (std::size_t s = 0; s < num_shards_; ++s) {
      const support::MutexLock lock(shards_[s].mutex);
      out.bytes += shards_[s].bytes;
      out.entries += shards_[s].lru.size();
    }
    return out;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t capacity_bytes() const {
    return shard_capacity_ * num_shards_;
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
    std::size_t bytes = 0;
  };

  struct Shard {
    mutable support::Mutex mutex{support::LockRank::k_serve_Shard_mutex};
    /// Front = most recently used.
    std::list<Entry> lru IVT_GUARDED_BY(mutex);
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index
        IVT_GUARDED_BY(mutex);
    std::size_t bytes IVT_GUARDED_BY(mutex) = 0;
  };

  Shard& shard_for(const Key& key) const {
    return shards_[Hash{}(key) % num_shards_];
  }

  const std::string name_;
  const std::size_t num_shards_;
  const std::size_t shard_capacity_;
  const std::unique_ptr<Shard[]> shards_;
  // Functional counts (stats() / the "cached" flag); see file comment.
  std::atomic<std::uint64_t> hit_count_{0};
  std::atomic<std::uint64_t> miss_count_{0};
  std::atomic<std::uint64_t> eviction_count_{0};
  std::atomic<std::uint64_t> insertion_count_{0};
  // Registry mirrors for the metrics exports (no-ops with IVT_OBS=OFF).
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Counter& insertions_;
  obs::Gauge& bytes_gauge_;
};

}  // namespace ivt::serve
