// Runtime cross-check of the static lock-order analysis.
//
// ivt-analyze builds the whole-program lock-acquisition graph and emits
// src/support/lock_ranks.inc: one rank per support::Mutex, rank =
// (topological level + 1) * 10. Each Mutex declaration binds its
// LockRank constant (the analyzer fails the build when one is missing
// or stale), and in checked builds every acquisition asserts that a
// thread only takes locks of strictly increasing level. The two views
// police each other: an acquisition the static analysis missed shows up
// as a runtime abort; a rank the runtime never exercises is still
// pinned by the static graph.
//
// Checked builds are Debug and TSan (IVT_LOCK_RANKS defaults to 1 when
// NDEBUG is unset; the TSan preset forces it on). In Release the hooks
// compile to nothing and Mutex stays layout-identical to std::mutex.
#pragma once

#include <cstdint>

#ifndef IVT_LOCK_RANKS
#ifdef NDEBUG
#define IVT_LOCK_RANKS 0
#else
#define IVT_LOCK_RANKS 1
#endif
#endif

#if IVT_LOCK_RANKS
#include <cstdio>
#include <cstdlib>
#endif

namespace ivt::support {

/// One constant per ranked lock, generated from lock_ranks.inc. The
/// enum value encodes (rank << 8) | line-in-inc, so constants stay
/// unique even when ranks tie (locks on the same topological level);
/// only the level (value >> 8) participates in the ordering check.
enum class LockRank : std::uint32_t {
  kUnranked = 0,  ///< default-constructed Mutex (tests, scratch locks)
#define IVT_LOCK_RANK(constant, rank, name) \
  constant = (static_cast<std::uint32_t>(rank) << 8) | (__LINE__ & 0xFFU),
#include "support/lock_ranks.inc"
#undef IVT_LOCK_RANK
};

constexpr std::uint32_t lock_rank_level(LockRank rank) {
  return static_cast<std::uint32_t>(rank) >> 8;
}

/// Display name for abort messages; matches ivt-analyze's identities.
inline const char* lock_rank_name(LockRank rank) {
  switch (rank) {
#define IVT_LOCK_RANK(constant, rank, name) \
  case LockRank::constant:                  \
    return name;
#include "support/lock_ranks.inc"
#undef IVT_LOCK_RANK
    case LockRank::kUnranked:
      return "unranked";
  }
  return "?";
}

namespace detail {

#if IVT_LOCK_RANKS

/// Per-thread stack of held ranks. Pushes are monotone in level (that
/// is the invariant being checked), so the top is always the maximum.
struct LockRankStack {
  static constexpr int kCapacity = 64;
  LockRank held[kCapacity];
  int size = 0;
};
inline thread_local LockRankStack t_lock_ranks;

/// Aborts when acquiring `rank` would violate the declared order.
/// Called before the underlying acquisition so the process dies with a
/// diagnostic instead of deadlocking.
inline void rank_check(LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  const LockRankStack& s = t_lock_ranks;
  if (s.size == 0) return;
  const LockRank top = s.held[s.size - 1];
  if (lock_rank_level(rank) <= lock_rank_level(top)) {
    std::fprintf(stderr,
                 "ivt: lock-rank violation: acquiring '%s' (rank %u) while "
                 "holding '%s' (rank %u) — the static lock graph in "
                 "src/support/lock_ranks.inc forbids this order\n",
                 lock_rank_name(rank), lock_rank_level(rank),
                 lock_rank_name(top), lock_rank_level(top));
    std::abort();
  }
}

inline void rank_push(LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  LockRankStack& s = t_lock_ranks;
  if (s.size < LockRankStack::kCapacity) s.held[s.size++] = rank;
}

/// Unlock order need not be LIFO (manual unlock windows release a lock
/// below the top), so pop removes the topmost matching entry.
inline void rank_pop(LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  LockRankStack& s = t_lock_ranks;
  for (int i = s.size; i-- > 0;) {
    if (s.held[i] == rank) {
      for (int j = i; j + 1 < s.size; ++j) s.held[j] = s.held[j + 1];
      --s.size;
      return;
    }
  }
}

#endif  // IVT_LOCK_RANKS

}  // namespace detail

}  // namespace ivt::support
