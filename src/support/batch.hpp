// SIMD-friendly batched kernel shapes shared by the colstore decoders and
// the branch-α hot loops (smoothing, SWAB error terms, SAX binning).
//
// Every kernel here has two implementations selected by IVT_SIMD
// (CMake option, default ON):
//
//   - the batched shape restructures the loop so the compiler's
//     auto-vectorizer can work on it: block-transposed window sums
//     (moving average), carry-unrolled prefix sums (delta decode),
//     elementwise residual evaluation split from the ordered reduction
//     (SWAB), and branchless breakpoint counting (SAX);
//   - the IVT_SIMD=OFF fallback is the plain scalar reference loop.
//
// Bit-exactness contract: both shapes perform the same floating-point
// operations in the same per-output order — vectorization only runs
// independent outputs (or independent elementwise terms) side by side,
// never reassociates a reduction — so results are bit-identical between
// the two modes and the differential harness can compare state CSVs
// across IVT_SIMD=ON/OFF builds. Integer kernels are order-independent
// and exact by construction. No intrinsics: plain C++ the vectorizer
// recognizes, so every target the toolchain supports gets the win and
// IVT_SIMD=OFF is a build-time contract, not a separate code path to
// port.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#ifndef IVT_SIMD_ENABLED
#define IVT_SIMD_ENABLED 1
#endif

namespace ivt::support::batch {

inline constexpr bool kSimdEnabled = IVT_SIMD_ENABLED != 0;

/// In-place inclusive prefix sum with wrapping two's-complement
/// arithmetic (the delta-decode accumulator of the .ivc t_ns column;
/// wrapping keeps adversarial deltas well-defined). Integer, therefore
/// exact in both shapes.
inline void prefix_sum_wrapping(std::int64_t* values, std::size_t n) {
#if IVT_SIMD_ENABLED
  // Carry-unrolled blocks of 4: the in-block sums are independent of the
  // running carry, so the compiler can schedule/vectorize them while the
  // serial dependency advances once per block instead of once per lane.
  std::uint64_t carry = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t d0 = static_cast<std::uint64_t>(values[i]);
    const std::uint64_t d1 = static_cast<std::uint64_t>(values[i + 1]);
    const std::uint64_t d2 = static_cast<std::uint64_t>(values[i + 2]);
    const std::uint64_t d3 = static_cast<std::uint64_t>(values[i + 3]);
    const std::uint64_t s0 = d0;
    const std::uint64_t s1 = s0 + d1;
    const std::uint64_t s2 = s1 + d2;
    const std::uint64_t s3 = s2 + d3;
    values[i] = static_cast<std::int64_t>(carry + s0);
    values[i + 1] = static_cast<std::int64_t>(carry + s1);
    values[i + 2] = static_cast<std::int64_t>(carry + s2);
    values[i + 3] = static_cast<std::int64_t>(carry + s3);
    carry += s3;
  }
  for (; i < n; ++i) {
    carry += static_cast<std::uint64_t>(values[i]);
    values[i] = static_cast<std::int64_t>(carry);
  }
#else
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    carry += static_cast<std::uint64_t>(values[i]);
    values[i] = static_cast<std::int64_t>(carry);
  }
#endif
}

/// Centered moving average with clamped edges: out[i] = mean of
/// xs[i-half .. i+half] intersected with the range. Per-output summation
/// is left-to-right in both shapes.
inline std::vector<double> moving_average(std::span<const double> xs,
                                          std::size_t half_window) {
  std::vector<double> out;
  out.reserve(xs.size());
  if (half_window == 0) {
    out.assign(xs.begin(), xs.end());
    return out;
  }
  const std::size_t n = xs.size();
  auto scalar_at = [&xs, half_window, n](std::size_t i) {
    const std::size_t lo = i >= half_window ? i - half_window : 0;
    const std::size_t hi = i + half_window + 1 < n ? i + half_window + 1 : n;
    double sum = 0.0;
    for (std::size_t j = lo; j < hi; ++j) sum += xs[j];
    return sum / static_cast<double>(hi - lo);
  };
#if IVT_SIMD_ENABLED
  out.resize(n);
  const std::size_t window = 2 * half_window + 1;
  // Outputs in [first, last) have full (unclamped) windows; everything
  // else is an edge and stays on the scalar path.
  const std::size_t first = n > half_window ? half_window : n;
  const std::size_t last = n >= half_window + 1 ? n - half_window : 0;
  for (std::size_t i = 0; i < first; ++i) out[i] = scalar_at(i);
  for (std::size_t i = last > first ? last : first; i < n; ++i) {
    out[i] = scalar_at(i);
  }
  // Interior outputs in lane blocks of 4: each lane accumulates its own
  // window left-to-right, so lane l's additions are exactly the scalar
  // order for output b + l, and the inner 4-wide loop is what vectorizes.
  std::size_t b = first;
  for (; b + 4 <= last; b += 4) {
    double acc[4] = {0.0, 0.0, 0.0, 0.0};
    const double* base = xs.data() + (b - half_window);
    for (std::size_t j = 0; j < window; ++j) {
      for (std::size_t l = 0; l < 4; ++l) acc[l] += base[j + l];
    }
    for (std::size_t l = 0; l < 4; ++l) {
      out[b + l] = acc[l] / static_cast<double>(window);
    }
  }
  for (; b < last; ++b) out[b] = scalar_at(b);
#else
  for (std::size_t i = 0; i < xs.size(); ++i) out.push_back(scalar_at(i));
#endif
  return out;
}

/// Σ (ys[i] - (slope·xs[i] + intercept))² over the first n pairs. The
/// residual terms are elementwise-independent (vectorizable); the
/// accumulation is strictly in index order in both shapes.
inline double residual_sum_squares(std::span<const double> xs,
                                   std::span<const double> ys, double slope,
                                   double intercept) {
  const std::size_t n = xs.size() < ys.size() ? xs.size() : ys.size();
  double rss = 0.0;
#if IVT_SIMD_ENABLED
  double sq[64];
  std::size_t i = 0;
  while (i < n) {
    const std::size_t block = (n - i) < 64 ? (n - i) : 64;
    for (std::size_t k = 0; k < block; ++k) {
      const double r = ys[i + k] - (slope * xs[i + k] + intercept);
      sq[k] = r * r;
    }
    for (std::size_t k = 0; k < block; ++k) rss += sq[k];
    i += block;
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ys[i] - (slope * xs[i] + intercept);
    rss += r * r;
  }
#endif
  return rss;
}

/// SAX region of each value against ascending breakpoints, appended to
/// `out` as characters 'a' + region. region(v) = |{ bp : v >= bp }| —
/// identical to the first-exceeding-breakpoint walk for an ascending
/// table (and for NaN, where every comparison is false). The count form
/// is branchless and vectorizes over the breakpoints.
inline void sax_symbols(std::span<const double> values,
                        std::span<const double> breakpoints,
                        std::string& out) {
  out.reserve(out.size() + values.size());
#if IVT_SIMD_ENABLED
  const std::size_t nb = breakpoints.size();
  for (const double v : values) {
    unsigned region = 0;
    for (std::size_t k = 0; k < nb; ++k) {
      region += v >= breakpoints[k] ? 1U : 0U;
    }
    out.push_back(static_cast<char>('a' + region));
  }
#else
  for (const double v : values) {
    std::size_t region = 0;
    while (region < breakpoints.size() && v >= breakpoints[region]) {
      ++region;
    }
    out.push_back(static_cast<char>('a' + region));
  }
#endif
}

}  // namespace ivt::support::batch
