// Clang thread-safety annotation macros (no-ops on other compilers).
//
// These wrap the attributes behind `-Wthread-safety` so the locking
// discipline of every concurrent class is a compiler-checked contract
// instead of a comment: fields carry IVT_GUARDED_BY(mutex), private
// helpers that expect the lock carry IVT_REQUIRES(mutex), and the build
// (CMake option IVT_THREAD_SAFETY_WERROR, CI lane "thread-safety")
// promotes any violation to an error.
//
// The analysis does not understand libstdc++'s std::lock_guard /
// std::unique_lock, so annotated code locks through the wrappers in
// support/mutex.hpp (support::Mutex + support::MutexLock) rather than raw
// std::mutex — ivt-lint's mutex-guard rule enforces this. Naming and
// semantics follow the Abseil/LLVM convention; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define IVT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IVT_THREAD_ANNOTATION(x)  // no-op: gcc/msvc have no analysis
#endif

/// Marks a class as a lockable capability ("mutex").
#define IVT_CAPABILITY(x) IVT_THREAD_ANNOTATION(capability(x))

/// Marks a RAII class whose constructor acquires and destructor releases.
#define IVT_SCOPED_CAPABILITY IVT_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding `x`.
#define IVT_GUARDED_BY(x) IVT_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data may only be accessed while holding `x`.
#define IVT_PT_GUARDED_BY(x) IVT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry.
#define IVT_REQUIRES(...) \
  IVT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define IVT_ACQUIRE(...) \
  IVT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define IVT_RELEASE(...) \
  IVT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire; returns `result` on success.
#define IVT_TRY_ACQUIRE(result, ...) \
  IVT_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock guard for self-locking public APIs).
#define IVT_EXCLUDES(...) IVT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define IVT_RETURN_CAPABILITY(x) IVT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use should
/// say why in a comment.
#define IVT_NO_THREAD_SAFETY_ANALYSIS \
  IVT_THREAD_ANNOTATION(no_thread_safety_analysis)
