// Annotated synchronization primitives for clang's thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so code locking through them is invisible to `-Wthread-safety` and every
// IVT_GUARDED_BY access would be flagged as unprotected. These thin
// wrappers restore the contract:
//
//   support::Mutex mutex_;
//   std::deque<Task> queue_ IVT_GUARDED_BY(mutex_);
//
//   void push(Task t) {
//     const support::MutexLock lock(mutex_);
//     queue_.push_back(std::move(t));            // analysis: OK
//   }
//
// Condition waits go through support::CondVar with an *explicit* predicate
// loop (`while (!pred()) cv.wait(lock);`) instead of the lambda-predicate
// overload, so the guarded reads inside the predicate stay in the
// annotated enclosing function where the analysis can see the held lock.
//
// Zero runtime cost over the std types: Mutex is std::mutex, MutexLock is
// std::unique_lock, CondVar is std::condition_variable; only attributes
// are added.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace ivt::support {

class CondVar;
class MutexLock;

/// std::mutex with the "mutex" capability attribute.
class IVT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IVT_ACQUIRE() { raw_.lock(); }
  void unlock() IVT_RELEASE() { raw_.unlock(); }
  bool try_lock() IVT_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex raw_;
};

/// RAII lock over a support::Mutex (a scoped capability). Supports the
/// manual unlock()/lock() window used when a held task must run outside
/// the critical section, and is the handle CondVar waits on.
class IVT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) IVT_ACQUIRE(mutex)
      : lock_(mutex.raw_) {}
  ~MutexLock() IVT_RELEASE() = default;  // unique_lock unlocks if held

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily release the mutex (e.g. to execute a dequeued task).
  void unlock() IVT_RELEASE() { lock_.unlock(); }
  /// Re-acquire after unlock().
  void lock() IVT_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable bound to support::MutexLock. wait() atomically
/// releases and re-acquires the lock; from the analysis' point of view the
/// capability is held across the call, which matches the post-condition
/// callers rely on. Always wrap waits in an explicit predicate loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ivt::support
