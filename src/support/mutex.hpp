// Annotated synchronization primitives for clang's thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so code locking through them is invisible to `-Wthread-safety` and every
// IVT_GUARDED_BY access would be flagged as unprotected. These thin
// wrappers restore the contract:
//
//   support::Mutex mutex_;
//   std::deque<Task> queue_ IVT_GUARDED_BY(mutex_);
//
//   void push(Task t) {
//     const support::MutexLock lock(mutex_);
//     queue_.push_back(std::move(t));            // analysis: OK
//   }
//
// Condition waits go through support::CondVar with an *explicit* predicate
// loop (`while (!pred()) cv.wait(lock);`) instead of the lambda-predicate
// overload, so the guarded reads inside the predicate stay in the
// annotated enclosing function where the analysis can see the held lock.
//
// Zero runtime cost over the std types in Release: Mutex is std::mutex,
// MutexLock is std::unique_lock, CondVar is std::condition_variable;
// only attributes are added. Checked builds (IVT_LOCK_RANKS, see
// support/lock_rank.hpp) additionally assert per-thread lock-rank
// monotonicity on every acquisition.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "support/lock_rank.hpp"
#include "support/thread_annotations.hpp"

namespace ivt::support {

class CondVar;
class MutexLock;

/// std::mutex with the "mutex" capability attribute. Long-lived mutexes
/// bind the LockRank constant generated for them in lock_ranks.inc
/// (ivt-analyze fails the build when one is missing); the default
/// constructor leaves the mutex unranked and exempt from the runtime
/// order check (test scaffolding, scratch locks).
class IVT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if IVT_LOCK_RANKS
  explicit Mutex(LockRank rank) : rank_(rank) {}
#else
  explicit Mutex(LockRank) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IVT_ACQUIRE() {
    rank_check();
    raw_.lock();
    rank_push();
  }
  void unlock() IVT_RELEASE() {
    raw_.unlock();
    rank_pop();
  }
  bool try_lock() IVT_TRY_ACQUIRE(true) {
    rank_check();
    if (!raw_.try_lock()) return false;
    rank_push();
    return true;
  }

 private:
  friend class MutexLock;
#if IVT_LOCK_RANKS
  void rank_check() const { detail::rank_check(rank_); }
  void rank_push() const { detail::rank_push(rank_); }
  void rank_pop() const { detail::rank_pop(rank_); }
  LockRank rank_ = LockRank::kUnranked;
#else
  void rank_check() const {}
  void rank_push() const {}
  void rank_pop() const {}
#endif
  std::mutex raw_;
};

#if !IVT_LOCK_RANKS
// The Release wrapper must add nothing over the raw primitive — this is
// what keeps the bench guard honest.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "support::Mutex must stay layout-identical to std::mutex "
              "in unchecked builds");
#endif

/// RAII lock over a support::Mutex (a scoped capability). Supports the
/// manual unlock()/lock() window used when a held task must run outside
/// the critical section, and is the handle CondVar waits on.
class IVT_SCOPED_CAPABILITY MutexLock {
 public:
#if IVT_LOCK_RANKS
  explicit MutexLock(Mutex& mutex) IVT_ACQUIRE(mutex)
      : mutex_(mutex), lock_((mutex.rank_check(), mutex.raw_)) {
    mutex_.rank_push();
  }
  ~MutexLock() IVT_RELEASE() {
    if (lock_.owns_lock()) {
      lock_.unlock();
      mutex_.rank_pop();
    }
  }
#else
  explicit MutexLock(Mutex& mutex) IVT_ACQUIRE(mutex)
      : lock_(mutex.raw_) {}
  ~MutexLock() IVT_RELEASE() = default;  // unique_lock unlocks if held
#endif

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily release the mutex (e.g. to execute a dequeued task).
  void unlock() IVT_RELEASE() {
    lock_.unlock();
#if IVT_LOCK_RANKS
    mutex_.rank_pop();
#endif
  }
  /// Re-acquire after unlock(). Counts as a fresh acquisition for the
  /// rank check: the ordering invariant must hold again from scratch.
  void lock() IVT_ACQUIRE() {
#if IVT_LOCK_RANKS
    mutex_.rank_check();
    lock_.lock();
    mutex_.rank_push();
#else
    lock_.lock();
#endif
  }

 private:
  friend class CondVar;
#if IVT_LOCK_RANKS
  Mutex& mutex_;
#endif
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable bound to support::MutexLock. wait() atomically
/// releases and re-acquires the lock; from the analysis' point of view the
/// capability is held across the call, which matches the post-condition
/// callers rely on. Always wrap waits in an explicit predicate loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ivt::support
