// Span tracing: RAII scopes recorded into per-thread ring buffers and
// exported as Chrome trace-event JSON (loadable in chrome://tracing and
// Perfetto).
//
// A span is `OBS_SPAN("stage.substage")` (see obs/obs.hpp): on scope exit
// it appends one complete-event record — name, start, duration, thread
// id, nesting depth, optional row/byte attributes — to its thread's ring.
// Rings are fixed-size (oldest events overwritten, overwrites counted),
// so tracing memory is bounded no matter how long a run is; rings outlive
// their threads so a pool can be destroyed before export.
//
// Recording is gated on `tracing_enabled()` (default on; a disabled span
// costs one relaxed atomic load). With IVT_OBS_ENABLED=0 the whole class
// compiles to an empty object and export returns an empty trace.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#ifndef IVT_OBS_ENABLED
#define IVT_OBS_ENABLED 1
#endif

namespace ivt::obs {

/// Span names longer than this are truncated (keep them short and
/// hierarchical: "stage.substage").
inline constexpr std::size_t kSpanNameCapacity = 47;

/// Events retained per thread before the ring wraps.
inline constexpr std::size_t kSpanRingCapacity = 1 << 13;

inline constexpr std::uint64_t kSpanAttrUnset = ~std::uint64_t{0};

struct SpanEvent {
  char name[kSpanNameCapacity + 1];
  std::int64_t start_ns = 0;  ///< steady time since the trace epoch
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;   ///< sequential per-process thread id
  std::uint32_t depth = 0; ///< nesting level within the thread
  std::uint64_t rows = kSpanAttrUnset;
  std::uint64_t bytes = kSpanAttrUnset;
  /// Cross-process trace id (obs/trace_context.hpp); 0 = no context. The
  /// Chrome export renders it as an "args" field so client- and
  /// server-side traces of one request can be matched up.
  std::uint64_t trace_id = 0;
  /// Distributed node tag (set_current_node); -1 = untagged. Lets one
  /// merged timeline attribute spans to coordinator (0) / worker (>0)
  /// even when sim nodes share a process.
  std::int32_t node = -1;
};

[[nodiscard]] bool tracing_enabled() noexcept;
void set_tracing_enabled(bool enabled) noexcept;

/// Tag every span recorded by THIS thread from now on with a distributed
/// node id (coordinator = 0, workers >= 1); -1 clears the tag. Rendered
/// as "args": {"node": N} in the Chrome export. Thread-local, so sim
/// nodes sharing one process stay distinguishable. No-op when IVT_OBS is
/// compiled out.
void set_current_node(std::int32_t node) noexcept;
[[nodiscard]] std::int32_t current_node() noexcept;

/// Steady-clock nanoseconds since the process trace epoch.
std::int64_t trace_now_ns() noexcept;

class SpanScope {
 public:
#if IVT_OBS_ENABLED
  explicit SpanScope(std::string_view name) noexcept;
  ~SpanScope();

  void set_rows(std::uint64_t rows) noexcept { rows_ = rows; }
  void set_bytes(std::uint64_t bytes) noexcept { bytes_ = bytes; }
#else
  explicit SpanScope(std::string_view) noexcept {}
  void set_rows(std::uint64_t) noexcept {}
  void set_bytes(std::uint64_t) noexcept {}
#endif

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

#if IVT_OBS_ENABLED
 private:
  std::int64_t start_ns_ = 0;
  std::uint64_t rows_ = kSpanAttrUnset;
  std::uint64_t bytes_ = kSpanAttrUnset;
  std::uint64_t trace_id_ = 0;  ///< captured from the thread's context
  std::int32_t node_ = -1;      ///< captured from set_current_node
  char name_[kSpanNameCapacity + 1];
  bool active_ = false;
#endif
};

/// Snapshot of every thread's recorded spans (ring order, then by tid).
[[nodiscard]] std::vector<SpanEvent> collect_spans();

/// Spans lost to ring wrap-around since the last reset.
[[nodiscard]] std::uint64_t dropped_span_count();

/// Drop all recorded spans (kept rings stay allocated).
void reset_spans();

/// Chrome trace-event JSON ({"traceEvents": [...]}, "X" complete events,
/// microsecond timestamps) of everything recorded so far.
[[nodiscard]] std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`; throws std::runtime_error when
/// the file cannot be opened.
void write_chrome_trace(const std::string& path);

}  // namespace ivt::obs
