#include "obs/window.hpp"

#include <algorithm>
#include <chrono>

namespace ivt::obs {

std::int64_t steady_now_s() noexcept {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RollingCounter::RollingCounter(std::size_t window_s)
    : slots_(window_s > 0 ? window_s : 1) {}

RollingCounter::Slot& RollingCounter::claim(std::int64_t now_s) noexcept {
  Slot& slot = slots_[static_cast<std::size_t>(now_s) % slots_.size()];
  std::int64_t stamped = slot.sec.load(std::memory_order_acquire);
  if (stamped != now_s) {
    // First writer of this second resets the recycled slot; losers of the
    // CAS see the new stamp and just add.
    if (slot.sec.compare_exchange_strong(stamped, now_s,
                                         std::memory_order_acq_rel)) {
      slot.count.store(0, std::memory_order_relaxed);
    }
  }
  return slot;
}

// Not gated on IVT_OBS_ENABLED: rolling views are functional when
// directly owned (serve request accounting) and the explicit-epoch
// entry points are the test hooks. The zero-cost instrumentation gate
// is the OBS_WINDOW_* macros, not these methods.
void RollingCounter::add_at(std::int64_t now_s,
                            std::uint64_t delta) noexcept {
  claim(now_s).count.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t RollingCounter::value_at(std::int64_t now_s) const noexcept {
  std::uint64_t total = 0;
  const auto window = static_cast<std::int64_t>(slots_.size());
  for (const Slot& slot : slots_) {
    const std::int64_t sec = slot.sec.load(std::memory_order_acquire);
    if (sec > now_s - window && sec <= now_s) {
      total += slot.count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

void RollingCounter::reset() noexcept {
  for (Slot& slot : slots_) {
    slot.sec.store(-1, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
  }
}

RollingHistogram::RollingHistogram(std::vector<double> bounds,
                                   std::size_t window_s)
    : bounds_(std::move(bounds)),
      slots_(window_s > 0 ? window_s : 1) {
  std::sort(bounds_.begin(), bounds_.end());
  for (Slot& slot : slots_) {
    slot.counts = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

RollingHistogram::Slot* RollingHistogram::claim(std::int64_t now_s) noexcept {
  Slot& slot = slots_[static_cast<std::size_t>(now_s) % slots_.size()];
  std::int64_t stamped = slot.sec.load(std::memory_order_acquire);
  if (stamped != now_s) {
    if (slot.sec.compare_exchange_strong(stamped, now_s,
                                         std::memory_order_acq_rel)) {
      for (auto& c : slot.counts) c.store(0, std::memory_order_relaxed);
      slot.sum.store(0.0, std::memory_order_relaxed);
      slot.count.store(0, std::memory_order_relaxed);
    }
  }
  return &slot;
}

void RollingHistogram::record_at(std::int64_t now_s, double value) noexcept {
  Slot* slot = claim(now_s);
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  slot->counts[bucket].fetch_add(1, std::memory_order_relaxed);
  slot->sum.fetch_add(value, std::memory_order_relaxed);
  slot->count.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Data RollingHistogram::data_at(std::int64_t now_s) const {
  Histogram::Data out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  const auto window = static_cast<std::int64_t>(slots_.size());
  for (const Slot& slot : slots_) {
    const std::int64_t sec = slot.sec.load(std::memory_order_acquire);
    if (sec <= now_s - window || sec > now_s) continue;
    for (std::size_t b = 0; b < out.counts.size(); ++b) {
      out.counts[b] += slot.counts[b].load(std::memory_order_relaxed);
    }
    out.sum += slot.sum.load(std::memory_order_relaxed);
    out.count += slot.count.load(std::memory_order_relaxed);
  }
  return out;
}

void RollingHistogram::reset() noexcept {
  for (Slot& slot : slots_) {
    slot.sec.store(-1, std::memory_order_relaxed);
    for (auto& c : slot.counts) c.store(0, std::memory_order_relaxed);
    slot.sum.store(0.0, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ivt::obs
