#include "obs/eventlog.hpp"

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace ivt::obs {

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
}

std::int64_t unix_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(EventLevel level) noexcept {
  switch (level) {
    case EventLevel::Debug:
      return "debug";
    case EventLevel::Info:
      return "info";
    case EventLevel::Warn:
      return "warn";
    case EventLevel::Error:
      return "error";
  }
  return "info";
}

EventLog::EventLog(const std::string& path, EventLogOptions options)
    : capacity_(options.capacity > 0 ? options.capacity : 1),
      flush_interval_ms_(options.flush_interval_ms > 0
                             ? options.flush_interval_ms
                             : 1) {
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("event log: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  flusher_ = std::thread([this] { flusher_loop(); });
}

EventLog::~EventLog() { close(); }

void EventLog::write(std::string line) {
  if (file_ == nullptr) return;
  {
    const support::MutexLock lock(mutex_);
    if (stopping_) return;
    if (queue_.size() >= capacity_) {
      ++dropped_;
      OBS_COUNT("obs.events_dropped", 1);
      return;
    }
    queue_.push_back(std::move(line));
  }
  cv_.notify_one();
}

std::uint64_t EventLog::dropped() const noexcept {
  const support::MutexLock lock(mutex_);
  return dropped_;
}

void EventLog::flush() {
  if (file_ == nullptr) return;
  support::MutexLock lock(mutex_);
  cv_.notify_one();
  while (!stopping_ && (!queue_.empty() || writing_)) {
    cv_drained_.wait(lock);
  }
}

void EventLog::close() {
  if (file_ == nullptr) return;
  {
    const support::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // The flusher drained the queue before exiting; just close the file.
  std::fclose(file_);
  file_ = nullptr;
}

void EventLog::flusher_loop() {
  std::vector<std::string> batch;
  support::MutexLock lock(mutex_);
  for (;;) {
    while (!stopping_ && queue_.empty()) {
      cv_.wait_for(lock, std::chrono::milliseconds(flush_interval_ms_));
      if (stopping_) break;
    }
    const bool exiting = stopping_;
    batch.swap(queue_);
    writing_ = !batch.empty();
    if (writing_ || exiting) {
      lock.unlock();
      for (const std::string& line : batch) {
        std::fwrite(line.data(), 1, line.size(), file_);
        std::fputc('\n', file_);
      }
      if (!batch.empty() || exiting) std::fflush(file_);
      batch.clear();
      lock.lock();
      writing_ = false;
      cv_drained_.notify_all();
    }
    if (exiting && queue_.empty()) return;
  }
}

EventRecord::EventRecord(EventLog* log, EventLevel level,
                         std::string_view name) {
  if (log == nullptr || !log->enabled()) return;
  log_ = log;
  buf_.reserve(160);
  buf_ += "{\"ts_ns\": ";
  char num[32];
  std::snprintf(num, sizeof(num), "%" PRId64, unix_now_ns());
  buf_ += num;
  buf_ += ", \"level\": \"";
  buf_ += to_string(level);
  buf_ += "\", \"event\": \"";
  append_json_escaped(buf_, name);
  buf_ += '"';
}

EventRecord::~EventRecord() {
  if (log_ == nullptr) return;
  buf_ += '}';
  log_->write(std::move(buf_));
}

EventRecord& EventRecord::kv(std::string_view key, std::string_view value) {
  if (log_ == nullptr) return *this;
  buf_ += ", \"";
  append_json_escaped(buf_, key);
  buf_ += "\": \"";
  append_json_escaped(buf_, value);
  buf_ += '"';
  return *this;
}

EventRecord& EventRecord::kv(std::string_view key, const char* value) {
  return kv(key, std::string_view(value));
}

EventRecord& EventRecord::kv(std::string_view key, std::int64_t value) {
  if (log_ == nullptr) return *this;
  char num[32];
  std::snprintf(num, sizeof(num), "%" PRId64, value);
  buf_ += ", \"";
  append_json_escaped(buf_, key);
  buf_ += "\": ";
  buf_ += num;
  return *this;
}

EventRecord& EventRecord::kv(std::string_view key, std::uint64_t value) {
  if (log_ == nullptr) return *this;
  char num[32];
  std::snprintf(num, sizeof(num), "%" PRIu64, value);
  buf_ += ", \"";
  append_json_escaped(buf_, key);
  buf_ += "\": ";
  buf_ += num;
  return *this;
}

EventRecord& EventRecord::kv(std::string_view key, double value) {
  if (log_ == nullptr) return *this;
  char num[64];
  std::snprintf(num, sizeof(num), "%.6g", value);
  buf_ += ", \"";
  append_json_escaped(buf_, key);
  buf_ += "\": ";
  buf_ += num;
  return *this;
}

EventRecord& EventRecord::kv(std::string_view key, bool value) {
  if (log_ == nullptr) return *this;
  buf_ += ", \"";
  append_json_escaped(buf_, key);
  buf_ += "\": ";
  buf_ += value ? "true" : "false";
  return *this;
}

}  // namespace ivt::obs
