// Umbrella header for instrumentation sites: span, metric and event
// macros.
//
// Naming scheme (see DESIGN.md "Observability"; enforced by ivt-lint's
// metric-name rule): lowercase dotted identifiers under a registered
// subsystem prefix.
//   spans    "stage.substage"        e.g. pipeline.interpret, branch.alpha
//   counters "subsystem.what[_unit]" e.g. pool.busy_ns, colstore.rows_emitted
//   gauges   "subsystem.what"        e.g. pool.queue_depth
//   events   "subsystem.what"        e.g. serve.query, serve.slow_query
//
// Every metric/span macro is an inline no-op (arguments unevaluated) when
// the build sets IVT_OBS_ENABLED=0, so hot paths can be instrumented
// freely. OBS_EVENT is the exception: the event log is operational
// accounting and stays functional in obs-off builds (it already no-ops
// whenever no log file is configured).
#pragma once

#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_context.hpp"
#include "obs/window.hpp"

#define IVT_OBS_CONCAT_INNER(a, b) a##b
#define IVT_OBS_CONCAT(a, b) IVT_OBS_CONCAT_INNER(a, b)

/// Anonymous RAII span covering the rest of the enclosing scope.
#define OBS_SPAN(name)                        \
  [[maybe_unused]] ::ivt::obs::SpanScope IVT_OBS_CONCAT( \
      obs_span_, __COUNTER__)(name)

/// Named span variable, for attaching attributes: OBS_SPAN_V(s, "x");
/// s.set_rows(n);
#define OBS_SPAN_V(var, name) ::ivt::obs::SpanScope var(name)

/// Structured event-log record builder; chain .kv() calls, the record is
/// enqueued when the temporary dies at the end of the statement:
///   OBS_EVENT(log, Warn, "serve.slow_query").kv("op", op).kv("ms", ms);
/// `log` is an EventLog* (null or closed -> the statement is a no-op).
/// NOT gated on IVT_OBS_ENABLED — see the header comment.
#define OBS_EVENT(log, level, name) \
  ::ivt::obs::EventRecord((log), ::ivt::obs::EventLevel::level, (name))

#if IVT_OBS_ENABLED

/// Add `delta` to the counter `name` (name must be a string literal; the
/// registry lookup happens once per call site).
#define OBS_COUNT(name, delta)                                    \
  do {                                                            \
    static ::ivt::obs::Counter& obs_counter_ =                    \
        ::ivt::obs::Registry::instance().counter(name);           \
    obs_counter_.add(static_cast<std::uint64_t>(delta));          \
  } while (0)

#define OBS_GAUGE_ADD(name, delta)                                \
  do {                                                            \
    static ::ivt::obs::Gauge& obs_gauge_ =                        \
        ::ivt::obs::Registry::instance().gauge(name);             \
    obs_gauge_.add(static_cast<std::int64_t>(delta));             \
  } while (0)

#define OBS_GAUGE_SET(name, value)                                \
  do {                                                            \
    static ::ivt::obs::Gauge& obs_gauge_ =                        \
        ::ivt::obs::Registry::instance().gauge(name);             \
    obs_gauge_.set(static_cast<std::int64_t>(value));             \
  } while (0)

/// Record `value` into the histogram `name` (default latency bounds, ms).
#define OBS_HIST_MS(name, value)                                  \
  do {                                                            \
    static ::ivt::obs::Histogram& obs_hist_ =                     \
        ::ivt::obs::Registry::instance().histogram(               \
            name, ::ivt::obs::default_latency_bounds_ms());       \
    obs_hist_.record(static_cast<double>(value));                 \
  } while (0)

/// Add `delta` to the rolling-window counter `name` (window width in
/// seconds; first registration wins, like OBS_HIST_MS bounds).
#define OBS_WINDOW_COUNT(name, window_s, delta)                   \
  do {                                                            \
    static ::ivt::obs::RollingCounter& obs_wcounter_ =            \
        ::ivt::obs::Registry::instance().window_counter(          \
            name, (window_s));                                    \
    obs_wcounter_.add(static_cast<std::uint64_t>(delta));         \
  } while (0)

/// Record `value` into the rolling-window histogram `name` (default
/// latency bounds, ms; window width in seconds, first registration wins).
#define OBS_WINDOW_HIST_MS(name, window_s, value)                 \
  do {                                                            \
    static ::ivt::obs::RollingHistogram& obs_whist_ =             \
        ::ivt::obs::Registry::instance().window_histogram(        \
            name, ::ivt::obs::default_latency_bounds_ms(),        \
            (window_s));                                          \
    obs_whist_.record(static_cast<double>(value));                \
  } while (0)

#else  // !IVT_OBS_ENABLED

#define OBS_COUNT(name, delta) \
  do {                         \
    (void)sizeof(delta);       \
  } while (0)
#define OBS_GAUGE_ADD(name, delta) \
  do {                             \
    (void)sizeof(delta);           \
  } while (0)
#define OBS_GAUGE_SET(name, value) \
  do {                             \
    (void)sizeof(value);           \
  } while (0)
#define OBS_HIST_MS(name, value) \
  do {                           \
    (void)sizeof(value);         \
  } while (0)
#define OBS_WINDOW_COUNT(name, window_s, delta) \
  do {                                          \
    (void)sizeof(window_s);                     \
    (void)sizeof(delta);                        \
  } while (0)
#define OBS_WINDOW_HIST_MS(name, window_s, value) \
  do {                                            \
    (void)sizeof(window_s);                       \
    (void)sizeof(value);                          \
  } while (0)

#endif  // IVT_OBS_ENABLED
