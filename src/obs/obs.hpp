// Umbrella header for instrumentation sites: span + metric macros.
//
// Naming scheme (see DESIGN.md "Observability"):
//   spans    "stage.substage"        e.g. pipeline.interpret, branch.alpha
//   counters "subsystem.what[_unit]" e.g. pool.busy_ns, colstore.rows_emitted
//   gauges   "subsystem.what"        e.g. pool.queue_depth
//
// Every macro is an inline no-op (arguments unevaluated) when the build
// sets IVT_OBS_ENABLED=0, so hot paths can be instrumented freely.
#pragma once

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#define IVT_OBS_CONCAT_INNER(a, b) a##b
#define IVT_OBS_CONCAT(a, b) IVT_OBS_CONCAT_INNER(a, b)

/// Anonymous RAII span covering the rest of the enclosing scope.
#define OBS_SPAN(name)                        \
  [[maybe_unused]] ::ivt::obs::SpanScope IVT_OBS_CONCAT( \
      obs_span_, __COUNTER__)(name)

/// Named span variable, for attaching attributes: OBS_SPAN_V(s, "x");
/// s.set_rows(n);
#define OBS_SPAN_V(var, name) ::ivt::obs::SpanScope var(name)

#if IVT_OBS_ENABLED

/// Add `delta` to the counter `name` (name must be a string literal; the
/// registry lookup happens once per call site).
#define OBS_COUNT(name, delta)                                    \
  do {                                                            \
    static ::ivt::obs::Counter& obs_counter_ =                    \
        ::ivt::obs::Registry::instance().counter(name);           \
    obs_counter_.add(static_cast<std::uint64_t>(delta));          \
  } while (0)

#define OBS_GAUGE_ADD(name, delta)                                \
  do {                                                            \
    static ::ivt::obs::Gauge& obs_gauge_ =                        \
        ::ivt::obs::Registry::instance().gauge(name);             \
    obs_gauge_.add(static_cast<std::int64_t>(delta));             \
  } while (0)

#define OBS_GAUGE_SET(name, value)                                \
  do {                                                            \
    static ::ivt::obs::Gauge& obs_gauge_ =                        \
        ::ivt::obs::Registry::instance().gauge(name);             \
    obs_gauge_.set(static_cast<std::int64_t>(value));             \
  } while (0)

/// Record `value` into the histogram `name` (default latency bounds, ms).
#define OBS_HIST_MS(name, value)                                  \
  do {                                                            \
    static ::ivt::obs::Histogram& obs_hist_ =                     \
        ::ivt::obs::Registry::instance().histogram(               \
            name, ::ivt::obs::default_latency_bounds_ms());       \
    obs_hist_.record(static_cast<double>(value));                 \
  } while (0)

#else  // !IVT_OBS_ENABLED

#define OBS_COUNT(name, delta) \
  do {                         \
    (void)sizeof(delta);       \
  } while (0)
#define OBS_GAUGE_ADD(name, delta) \
  do {                             \
    (void)sizeof(delta);           \
  } while (0)
#define OBS_GAUGE_SET(name, value) \
  do {                             \
    (void)sizeof(value);           \
  } while (0)
#define OBS_HIST_MS(name, value) \
  do {                           \
    (void)sizeof(value);         \
  } while (0)

#endif  // IVT_OBS_ENABLED
