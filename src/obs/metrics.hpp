// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms with a lock-free fast path.
//
// Writes go to per-thread shards (cache-line-padded atomic slots indexed
// by a thread-local shard id), so concurrent increments from the worker
// pool never contend on one cache line; a snapshot aggregates the shards.
// Registration (name -> metric lookup) takes a mutex, but instrumentation
// sites cache the returned reference in a function-local static, so the
// steady state is one relaxed atomic add per event.
//
// Compile-time switch: building with -DIVT_OBS_ENABLED=0 (CMake option
// IVT_OBS=OFF) compiles every OBS_* instrumentation site out, makes the
// registry's Counter/Gauge mutators inline no-ops and keeps the registry
// permanently empty, so instrumented code costs nothing. Directly-owned
// Histogram / rolling-window objects stay functional in both modes —
// they back operational state (serve request accounting, bench
// harnesses), not telemetry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

#ifndef IVT_OBS_ENABLED
#define IVT_OBS_ENABLED 1
#endif

namespace ivt::obs {

/// Number of write shards per metric. Threads hash onto a slot; more
/// threads than shards degrades to (still correct) shared fetch_adds.
inline constexpr std::size_t kMetricShards = 32;

/// This thread's shard slot (stable for the thread's lifetime).
std::size_t shard_index() noexcept;

/// Monotonically increasing event count (rows, tasks, bytes, ns...).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
#if IVT_OBS_ENABLED
    shards_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kMetricShards];
};

/// Signed instantaneous value (queue depth, in-flight tasks). `add` is
/// sharded and lock-free; `set` collapses all shards (use it only from
/// one writer at a time, e.g. configuration values).
class Gauge {
 public:
  void add(std::int64_t delta) noexcept {
#if IVT_OBS_ENABLED
    shards_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  void set(std::int64_t value) noexcept {
#if IVT_OBS_ENABLED
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
    shards_[0].v.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  Shard shards_[kMetricShards];
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket edges plus
/// an implicit overflow bucket, so there are bounds.size() + 1 counters.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double value) noexcept;

  struct Data {
    std::vector<double> bounds;        ///< upper edges (overflow implicit)
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 buckets
    double sum = 0.0;
    std::uint64_t count = 0;

    /// Estimate the q-quantile (q in [0, 1]) by linear interpolation
    /// within the bucket holding the q·count-th observation. The overflow
    /// bucket has no upper edge, so quantiles landing there return the
    /// last finite bound (a lower bound on the true value). Returns 0
    /// for an empty histogram.
    [[nodiscard]] double quantile(double q) const;
  };
  [[nodiscard]] Data data() const;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> count{0};
  };
  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// Default histogram edges for durations in milliseconds.
std::vector<double> default_latency_bounds_ms();

// Rolling-window views (obs/window.hpp); registrable alongside the
// lifetime metrics. Forward-declared here because window.hpp includes
// this header for Histogram::Data.
class RollingCounter;
class RollingHistogram;

/// Aggregated point-in-time view of every registered metric.
struct MetricsSnapshot {
  enum class Kind { Counter, Gauge, Histogram, WindowCounter,
                    WindowHistogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t counter = 0;  ///< Counter and WindowCounter kinds
    std::int64_t gauge = 0;
    Histogram::Data hist;       ///< Histogram and WindowHistogram kinds
    std::size_t window_seconds = 0;  ///< nonzero for Window* kinds
  };
  std::vector<Entry> entries;  ///< sorted by name

  /// nullptr when `name` is absent or not of the requested kind.
  [[nodiscard]] const Entry* find(std::string_view name) const;
  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback) const;
};

/// Process-wide registry. Metric objects live forever once registered
/// (references stay valid), mirroring how instrumentation sites cache
/// them in static locals.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name) IVT_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) IVT_EXCLUDES(mutex_);
  /// `bounds` is used on first registration only.
  Histogram& histogram(std::string_view name, std::vector<double> bounds)
      IVT_EXCLUDES(mutex_);
  /// Rolling-window variants. Like histogram(), the configuration
  /// (window width, bounds) is used on first registration only — later
  /// callers get the existing instance regardless of the arguments.
  RollingCounter& window_counter(std::string_view name, std::size_t window_s)
      IVT_EXCLUDES(mutex_);
  RollingHistogram& window_histogram(std::string_view name,
                                     std::vector<double> bounds,
                                     std::size_t window_s)
      IVT_EXCLUDES(mutex_);

  [[nodiscard]] MetricsSnapshot snapshot() const IVT_EXCLUDES(mutex_);

  /// Zero every registered metric (tests, per-run deltas). Entries stay
  /// registered.
  void reset() IVT_EXCLUDES(mutex_);

 private:
  Registry() = default;
  ~Registry();  // defined in metrics.cpp where Rolling* are complete

  // Registration order; the metric objects themselves are internally
  // sharded atomics and are written lock-free once the reference escapes.
  mutable support::Mutex mutex_{support::LockRank::k_obs_Registry_mutex_};
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_
      IVT_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_
      IVT_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_
      IVT_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, std::unique_ptr<RollingCounter>>>
      window_counters_ IVT_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, std::unique_ptr<RollingHistogram>>>
      window_histograms_ IVT_GUARDED_BY(mutex_);
};

/// Render a snapshot as a stable-key-order JSON document / aligned text.
std::string to_json(const MetricsSnapshot& snapshot);
std::string to_text(const MetricsSnapshot& snapshot);

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4). Metric names are sanitized (dots -> underscores) and prefixed
/// with "ivt_"; lifetime histograms become cumulative `_bucket{le=...}`
/// series, rolling-window histograms become summaries with quantile
/// labels, and rolling-window counters become gauges (a windowed count is
/// not monotonic).
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Snapshot the process registry and write it as JSON to `path`.
/// Throws std::runtime_error when the file cannot be opened.
void write_metrics_json(const std::string& path);

/// Process peak resident set size in bytes (getrusage ru_maxrss,
/// platform-normalized; 0 where unavailable). Monotonic over the process
/// lifetime — it never decreases after a high-water mark.
std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (/proc/self/statm on Linux; 0 where
/// unavailable). Unlike peak_rss_bytes this tracks frees, so benches can
/// compare modes run in one process.
std::uint64_t current_rss_bytes();

}  // namespace ivt::obs
