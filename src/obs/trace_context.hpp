// Cross-process trace context: the identity that stitches one request's
// spans together across the client, the daemon and (eventually) worker
// nodes.
//
// A TraceContext is a (trace_id, span_id) pair. The originator — `ivt
// query`, serve::Client, a future coordinator — mints one and carries it
// in the request JSON ("trace_ctx": {"trace_id": "<16 hex>",
// "parent_span_id": N}); the server installs it with a TraceContextScope
// around request execution, so every SpanScope recorded under it is
// tagged with the trace_id and the client- and server-side Chrome-trace
// exports can be joined into one timeline (`ivt trace-merge`).
//
// The context is a plain thread-local — it deliberately does NOT follow
// std::async / thread spawns. Whoever hands work to another thread (the
// server's worker lambda) re-installs the scope there; that is the whole
// propagation contract.
//
// Unlike span recording, trace contexts stay functional under
// IVT_OBS_ENABLED=0: minting and echoing the id is request accounting
// (the event log and response JSON carry it), not instrumentation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ivt::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no context
  std::uint64_t span_id = 0;   ///< this hop's span id; downstream's parent

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }

  /// Mint a fresh context: a process-unique, never-zero trace_id (time-
  /// seeded splitmix64 over an atomic counter) with span_id 1 (the root).
  [[nodiscard]] static TraceContext mint() noexcept;
};

/// Lowercase 16-digit hex rendering of an id ("00c0ffee...").
[[nodiscard]] std::string trace_id_hex(std::uint64_t id);

/// Parse a 1..16-digit lowercase/uppercase hex id; 0 when malformed.
[[nodiscard]] std::uint64_t parse_trace_id_hex(std::string_view hex) noexcept;

/// The calling thread's current context ({0, 0} when none installed).
[[nodiscard]] TraceContext current_trace_context() noexcept;

/// RAII: install `context` as the thread's current context, restore the
/// previous one on destruction. Scopes nest.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& context) noexcept;
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace ivt::obs
