// Rolling-window metric views: the last W seconds of a counter or
// histogram, not the process lifetime.
//
// A warm daemon's lifetime histogram stops moving — after an hour of
// traffic its p99 is frozen history. The rolling variants keep W
// one-second slots (default 60) in a ring indexed by `second mod W`; a
// writer claims the slot for the current second (resetting a stale one
// via CAS on its second stamp), and a reader aggregates only slots whose
// stamp lies in (now - W, now]. Values therefore decay to zero within W
// seconds of the load stopping, which is what makes "current p99" and
// "QPS right now" observable on a long-lived server.
//
// Everything is atomics — same TSan-clean, lock-free discipline as
// obs/metrics.hpp. The slot-claim race is benign: two writers racing a
// stale slot can drop at most one second-old slot's worth of samples,
// never corrupt counts.
//
// The *_at variants take an explicit epoch-seconds value so tests can
// drive the clock instead of sleeping through real windows.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

#ifndef IVT_OBS_ENABLED
#define IVT_OBS_ENABLED 1
#endif

namespace ivt::obs {

/// Default window width for rolling views, seconds.
inline constexpr std::size_t kDefaultWindowSeconds = 60;

/// Steady-clock seconds (monotonic; the rolling rings' production clock).
[[nodiscard]] std::int64_t steady_now_s() noexcept;

/// Events in the trailing `window_s` seconds.
class RollingCounter {
 public:
  explicit RollingCounter(std::size_t window_s = kDefaultWindowSeconds);

  // Not gated on IVT_OBS_ENABLED: directly-owned rolling views (serve
  // request accounting) are functional state; the zero-cost gate for
  // instrumentation is the OBS_WINDOW_COUNT macro.
  void add(std::uint64_t delta = 1) noexcept { add_at(steady_now_s(), delta); }
  /// Test hook: record at an explicit second.
  void add_at(std::int64_t now_s, std::uint64_t delta) noexcept;

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_at(steady_now_s());
  }
  [[nodiscard]] std::uint64_t value_at(std::int64_t now_s) const noexcept;

  [[nodiscard]] std::size_t window_seconds() const noexcept {
    return slots_.size();
  }

  void reset() noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> sec{-1};
    std::atomic<std::uint64_t> count{0};
  };
  std::vector<Slot> slots_;

  Slot& claim(std::int64_t now_s) noexcept;
};

/// Fixed-bucket histogram over the trailing `window_s` seconds. Bucket
/// semantics match obs::Histogram (inclusive upper edges + overflow);
/// data() returns the same Histogram::Data, so quantile() and the JSON
/// renderers apply unchanged.
class RollingHistogram {
 public:
  RollingHistogram(std::vector<double> bounds,
                   std::size_t window_s = kDefaultWindowSeconds);

  // Ungated, like RollingCounter::add — see there.
  void record(double value) noexcept { record_at(steady_now_s(), value); }
  /// Test hook: record at an explicit second.
  void record_at(std::int64_t now_s, double value) noexcept;

  [[nodiscard]] Histogram::Data data() const {
    return data_at(steady_now_s());
  }
  [[nodiscard]] Histogram::Data data_at(std::int64_t now_s) const;

  [[nodiscard]] std::size_t window_seconds() const noexcept {
    return slots_.size();
  }

  void reset() noexcept;

 private:
  struct Slot {
    std::atomic<std::int64_t> sec{-1};
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> count{0};
  };
  std::vector<double> bounds_;
  std::vector<Slot> slots_;

  Slot* claim(std::int64_t now_s) noexcept;
};

}  // namespace ivt::obs
