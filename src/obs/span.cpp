#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace_context.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace ivt::obs {

namespace {

std::atomic<bool> g_tracing_enabled{true};

/// One thread's bounded span storage. Owned jointly by the thread (via a
/// thread_local shared_ptr) and the global collector, so events survive
/// thread exit — a ThreadPool can be torn down before the trace is
/// exported.
struct ThreadRing {
  std::uint32_t tid = 0;  ///< const after registration (owner-thread write)
  ///< Uncontended except during collect/reset.
  support::Mutex mutex{support::LockRank::k_obs_ThreadRing_mutex};
  /// Grows to kSpanRingCapacity, then wraps.
  std::vector<SpanEvent> events IVT_GUARDED_BY(mutex);
  /// Next overwrite position once full.
  std::size_t head IVT_GUARDED_BY(mutex) = 0;
  std::uint64_t dropped IVT_GUARDED_BY(mutex) = 0;

  void push(const SpanEvent& e) IVT_EXCLUDES(mutex) {
    const support::MutexLock lock(mutex);
    if (events.size() < kSpanRingCapacity) {
      events.push_back(e);
    } else {
      events[head] = e;
      head = (head + 1) % kSpanRingCapacity;
      ++dropped;
      // Surface ring overflow in the metrics snapshot too, so bench runs
      // and the stats op can assert no spans were lost.
      static Counter& drops =
          Registry::instance().counter("obs.spans_dropped");
      drops.add(1);
    }
  }
};

struct Collector {
  support::Mutex mutex{support::LockRank::k_obs_Collector_mutex};
  std::vector<std::shared_ptr<ThreadRing>> rings IVT_GUARDED_BY(mutex);
  std::uint32_t next_tid IVT_GUARDED_BY(mutex) = 0;
};

Collector& collector() {
  static Collector* c = new Collector();  // leaked: outlives all threads
  return *c;
}

ThreadRing& this_thread_ring() {
  thread_local const std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    Collector& c = collector();
    const support::MutexLock lock(c.mutex);
    r->tid = c.next_tid++;
    c.rings.push_back(r);
    return r;
  }();
  return *ring;
}

thread_local std::uint32_t t_depth = 0;
thread_local std::int32_t t_node = -1;

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

bool tracing_enabled() noexcept {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool enabled) noexcept {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void set_current_node(std::int32_t node) noexcept { t_node = node; }

std::int32_t current_node() noexcept { return t_node; }

std::int64_t trace_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

#if IVT_OBS_ENABLED

SpanScope::SpanScope(std::string_view name) noexcept {
  if (!tracing_enabled()) return;
  active_ = true;
  const std::size_t n = std::min(name.size(), kSpanNameCapacity);
  std::memcpy(name_, name.data(), n);
  name_[n] = '\0';
  trace_id_ = current_trace_context().trace_id;
  node_ = t_node;
  ++t_depth;
  start_ns_ = trace_now_ns();
}

SpanScope::~SpanScope() {
  if (!active_) return;
  SpanEvent e;
  e.start_ns = start_ns_;
  e.dur_ns = trace_now_ns() - start_ns_;
  e.depth = --t_depth;
  e.rows = rows_;
  e.bytes = bytes_;
  e.trace_id = trace_id_;
  e.node = node_;
  std::memcpy(e.name, name_, sizeof(name_));
  ThreadRing& ring = this_thread_ring();
  e.tid = ring.tid;
  ring.push(e);
}

#endif  // IVT_OBS_ENABLED

std::vector<SpanEvent> collect_spans() {
  std::vector<SpanEvent> out;
  Collector& c = collector();
  const support::MutexLock lock(c.mutex);
  for (const std::shared_ptr<ThreadRing>& ring : c.rings) {
    const support::MutexLock ring_lock(ring->mutex);
    // Oldest-first: the segment after `head` predates the one before it.
    for (std::size_t i = ring->head; i < ring->events.size(); ++i) {
      out.push_back(ring->events[i]);
    }
    for (std::size_t i = 0; i < ring->head; ++i) {
      out.push_back(ring->events[i]);
    }
  }
  return out;
}

std::uint64_t dropped_span_count() {
  std::uint64_t dropped = 0;
  Collector& c = collector();
  const support::MutexLock lock(c.mutex);
  for (const std::shared_ptr<ThreadRing>& ring : c.rings) {
    const support::MutexLock ring_lock(ring->mutex);
    dropped += ring->dropped;
  }
  return dropped;
}

void reset_spans() {
  Collector& c = collector();
  const support::MutexLock lock(c.mutex);
  for (const std::shared_ptr<ThreadRing>& ring : c.rings) {
    const support::MutexLock ring_lock(ring->mutex);
    ring->events.clear();
    ring->head = 0;
    ring->dropped = 0;
  }
}

std::string chrome_trace_json() {
  std::vector<SpanEvent> spans = collect_spans();
  std::sort(spans.begin(), spans.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.tid < b.tid;
            });
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const SpanEvent& e : spans) {
    if (!first) os << ",\n";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"cat\": \"ivt\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %u, "
                  "\"args\": {\"depth\": %u",
                  e.name, static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, e.tid, e.depth);
    os << buf;
    if (e.rows != kSpanAttrUnset) os << ", \"rows\": " << e.rows;
    if (e.bytes != kSpanAttrUnset) os << ", \"bytes\": " << e.bytes;
    if (e.node >= 0) os << ", \"node\": " << e.node;
    if (e.trace_id != 0) {
      os << ", \"trace_id\": \"" << trace_id_hex(e.trace_id) << "\"";
    }
    os << "}}";
  }
  if (!first) os << "\n";
  os << "],\n\"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

void write_chrome_trace(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << chrome_trace_json();
}

}  // namespace ivt::obs
