// Structured JSON-lines event log with a bounded ring and a background
// flusher: the request path never blocks on disk.
//
// Producers render one record (a small JSON object) and enqueue it into a
// bounded in-memory ring under a short mutex hold; a dedicated flusher
// thread drains the ring to the file on a timer and on demand. When the
// ring is full the record is DROPPED and counted ("obs.events_dropped"
// plus EventLog::dropped()) — losing an access record under overload is
// acceptable, stalling a request on fwrite is not.
//
// Record shape (one per line):
//   {"ts_ns": <unix ns>, "level": "info", "event": "serve.query",
//    "op": "state", "trace_id": "00c0ffee...", ...}
//
// The builder API is the OBS_EVENT macro (obs/obs.hpp):
//   OBS_EVENT(log, Info, "serve.query").kv("op", op).kv("elapsed_ms", ms);
// The temporary renders its fields and enqueues on destruction. A null or
// closed log makes the whole statement a cheap no-op.
//
// Unlike spans/metrics, the event log stays functional under
// IVT_OBS_ENABLED=0: it is operational accounting the daemon's operators
// rely on (who queried what, how slow), not hot-path instrumentation —
// and it only runs at all when a log file was configured.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace ivt::obs {

enum class EventLevel { Debug, Info, Warn, Error };

[[nodiscard]] const char* to_string(EventLevel level) noexcept;

struct EventLogOptions {
  /// Ring capacity in records; a full ring drops (and counts) new records.
  std::size_t capacity = 4096;
  /// Flusher wakeup interval when idle.
  std::size_t flush_interval_ms = 50;
};

class EventLog {
 public:
  /// A default-constructed log is closed: enabled() is false and every
  /// write is a no-op.
  EventLog() = default;
  /// Open `path` for appending and start the flusher thread. Throws
  /// std::runtime_error when the file cannot be opened.
  explicit EventLog(const std::string& path, EventLogOptions options = {});
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return file_ != nullptr; }

  /// Enqueue one rendered JSON record (no trailing newline). Never blocks
  /// on I/O; drops (counted) when the ring is full or the log is closed.
  void write(std::string line);

  /// Records dropped to ring overflow since open.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Block until everything enqueued so far is on disk (tests, shutdown).
  void flush();

  /// Drain, stop the flusher and close the file. Idempotent.
  void close();

 private:
  void flusher_loop();

  std::FILE* file_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t flush_interval_ms_ = 50;
  std::thread flusher_;

  mutable support::Mutex mutex_{support::LockRank::k_obs_EventLog_mutex_};
  support::CondVar cv_;          ///< producers -> flusher (work available)
  support::CondVar cv_drained_;  ///< flusher -> flush() (all on disk)
  std::vector<std::string> queue_ IVT_GUARDED_BY(mutex_);
  std::uint64_t dropped_ IVT_GUARDED_BY(mutex_) = 0;
  bool writing_ IVT_GUARDED_BY(mutex_) = false;  ///< flusher mid-write
  bool stopping_ IVT_GUARDED_BY(mutex_) = false;
};

/// Builder for one event record; renders and enqueues on destruction.
/// Field values are JSON-escaped; numeric overloads render as numbers.
class EventRecord {
 public:
  /// `log` may be null/closed — the record then renders nothing.
  EventRecord(EventLog* log, EventLevel level, std::string_view name);
  ~EventRecord();

  EventRecord(const EventRecord&) = delete;
  EventRecord& operator=(const EventRecord&) = delete;

  EventRecord& kv(std::string_view key, std::string_view value);
  EventRecord& kv(std::string_view key, const char* value);
  EventRecord& kv(std::string_view key, std::int64_t value);
  EventRecord& kv(std::string_view key, std::uint64_t value);
  EventRecord& kv(std::string_view key, double value);
  EventRecord& kv(std::string_view key, bool value);

 private:
  EventLog* log_ = nullptr;
  std::string buf_;
};

}  // namespace ivt::obs
