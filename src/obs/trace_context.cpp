#include "obs/trace_context.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace ivt::obs {

namespace {

thread_local TraceContext t_context;

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30U)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27U)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31U);
}

}  // namespace

TraceContext TraceContext::mint() noexcept {
  // Seed once per process from the clock, then walk a counter through
  // splitmix64: ids are unique within the process and overwhelmingly
  // unlikely to collide across the client/server pair that shares them.
  static const std::uint64_t seed = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  static std::atomic<std::uint64_t> next{1};
  std::uint64_t id = 0;
  while (id == 0) {
    id = splitmix64(seed ^ next.fetch_add(1, std::memory_order_relaxed));
  }
  TraceContext ctx;
  ctx.trace_id = id;
  ctx.span_id = 1;
  return ctx;
}

std::string trace_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::uint64_t parse_trace_id_hex(std::string_view hex) noexcept {
  if (hex.empty() || hex.size() > 16) return 0;
  std::uint64_t id = 0;
  for (const char c : hex) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return 0;
    }
    id = (id << 4U) | digit;
  }
  return id;
}

TraceContext current_trace_context() noexcept { return t_context; }

TraceContextScope::TraceContextScope(const TraceContext& context) noexcept
    : saved_(t_context) {
  t_context = context;
}

TraceContextScope::~TraceContextScope() { t_context = saved_; }

}  // namespace ivt::obs
