#include "obs/metrics.hpp"

#include "obs/window.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace ivt::obs {

std::size_t shard_index() noexcept {
  // Sequentially assigned per thread so the first kMetricShards threads
  // (main + typical pool sizes) each own a private slot.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  shards_ = std::vector<Shard>(kMetricShards);
  for (Shard& s : shards_) {
    s.counts = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

// Not gated on IVT_OBS_ENABLED: directly-owned histograms (the serve
// request accounting, bench harnesses) are functional state. The
// zero-cost gate for *instrumentation* is the OBS_HIST_MS macro, which
// compiles the whole site out; registry lookups obs-off return a shared
// dummy that nothing reads.
void Histogram::record(double value) noexcept {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[shard_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Data Histogram::data() const {
  Data out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < out.counts.size(); ++b) {
      out.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    out.sum += shard.sum.load(std::memory_order_relaxed);
    out.count += shard.count.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
  }
}

double Histogram::Data::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based), then walk the cumulative
  // bucket counts until it is covered.
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    if (b >= bounds.size()) {
      // Overflow bucket: unbounded above; report the last finite edge.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double hi = bounds[b];
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double fraction =
        (rank - below) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * (fraction < 0.0 ? 0.0 : fraction);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> default_latency_bounds_ms() {
  return {0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000};
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    std::string_view name) const {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  const Entry* e = find(name);
  return e != nullptr && e->kind == Kind::Counter ? e->counter : fallback;
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // leaked: outlive all threads
  return *registry;
}

Registry::~Registry() = default;

namespace {

template <typename T, typename Make>
T& find_or_create(std::vector<std::pair<std::string, std::unique_ptr<T>>>& v,
                  std::string_view name, const Make& make) {
  for (auto& [n, metric] : v) {
    if (n == name) return *metric;
  }
  v.emplace_back(std::string(name), make());
  return *v.back().second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
#if IVT_OBS_ENABLED
  const support::MutexLock lock(mutex_);
  return find_or_create(counters_, name,
                        [] { return std::make_unique<Counter>(); });
#else
  (void)name;
  static Counter dummy;
  return dummy;
#endif
}

Gauge& Registry::gauge(std::string_view name) {
#if IVT_OBS_ENABLED
  const support::MutexLock lock(mutex_);
  return find_or_create(gauges_, name,
                        [] { return std::make_unique<Gauge>(); });
#else
  (void)name;
  static Gauge dummy;
  return dummy;
#endif
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
#if IVT_OBS_ENABLED
  const support::MutexLock lock(mutex_);
  return find_or_create(histograms_, name, [&bounds] {
    return std::make_unique<Histogram>(std::move(bounds));
  });
#else
  (void)name;
  static Histogram dummy{std::move(bounds)};
  return dummy;
#endif
}

RollingCounter& Registry::window_counter(std::string_view name,
                                         std::size_t window_s) {
#if IVT_OBS_ENABLED
  const support::MutexLock lock(mutex_);
  return find_or_create(window_counters_, name, [window_s] {
    return std::make_unique<RollingCounter>(window_s);
  });
#else
  (void)name;
  static RollingCounter dummy{window_s};
  return dummy;
#endif
}

RollingHistogram& Registry::window_histogram(std::string_view name,
                                             std::vector<double> bounds,
                                             std::size_t window_s) {
#if IVT_OBS_ENABLED
  const support::MutexLock lock(mutex_);
  return find_or_create(window_histograms_, name, [&bounds, window_s] {
    return std::make_unique<RollingHistogram>(std::move(bounds), window_s);
  });
#else
  (void)name;
  static RollingHistogram dummy{std::move(bounds), window_s};
  return dummy;
#endif
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  const support::MutexLock lock(mutex_);
  for (const auto& [name, c] : counters_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::Counter;
    e.counter = c->value();
    out.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::Gauge;
    e.gauge = g->value();
    out.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::Histogram;
    e.hist = h->data();
    out.entries.push_back(std::move(e));
  }
  for (const auto& [name, c] : window_counters_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::WindowCounter;
    e.counter = c->value();
    e.window_seconds = c->window_seconds();
    out.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : window_histograms_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::WindowHistogram;
    e.hist = h->data();
    e.window_seconds = h->window_seconds();
    out.entries.push_back(std::move(e));
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return out;
}

void Registry::reset() {
  const support::MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, c] : window_counters_) c->reset();
  for (auto& [name, h] : window_histograms_) h->reset();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < snapshot.entries.size(); ++i) {
    const MetricsSnapshot::Entry& e = snapshot.entries[i];
    os << "    \"" << json_escape(e.name) << "\": ";
    switch (e.kind) {
      case MetricsSnapshot::Kind::Counter:
        os << e.counter;
        break;
      case MetricsSnapshot::Kind::Gauge:
        os << e.gauge;
        break;
      case MetricsSnapshot::Kind::WindowCounter:
        os << "{\"value\": " << e.counter
           << ", \"window_seconds\": " << e.window_seconds << "}";
        break;
      case MetricsSnapshot::Kind::Histogram:
      case MetricsSnapshot::Kind::WindowHistogram: {
        os << "{\"count\": " << e.hist.count
           << ", \"sum\": " << render_double(e.hist.sum)
           << ", \"p50\": " << render_double(e.hist.quantile(0.50))
           << ", \"p90\": " << render_double(e.hist.quantile(0.90))
           << ", \"p99\": " << render_double(e.hist.quantile(0.99));
        if (e.kind == MetricsSnapshot::Kind::WindowHistogram) {
          os << ", \"window_seconds\": " << e.window_seconds;
        }
        os << ", \"bounds\": [";
        for (std::size_t b = 0; b < e.hist.bounds.size(); ++b) {
          os << (b > 0 ? ", " : "") << render_double(e.hist.bounds[b]);
        }
        os << "], \"counts\": [";
        for (std::size_t b = 0; b < e.hist.counts.size(); ++b) {
          os << (b > 0 ? ", " : "") << e.hist.counts[b];
        }
        os << "]}";
        break;
      }
    }
    os << (i + 1 < snapshot.entries.size() ? "," : "") << "\n";
  }
  os << "  }\n}\n";
  return os.str();
}

std::string to_text(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const MetricsSnapshot::Entry& e : snapshot.entries) {
    char line[160];
    switch (e.kind) {
      case MetricsSnapshot::Kind::Counter:
        std::snprintf(line, sizeof(line), "%-44s %20llu\n", e.name.c_str(),
                      static_cast<unsigned long long>(e.counter));
        break;
      case MetricsSnapshot::Kind::Gauge:
        std::snprintf(line, sizeof(line), "%-44s %20lld\n", e.name.c_str(),
                      static_cast<long long>(e.gauge));
        break;
      case MetricsSnapshot::Kind::WindowCounter:
        std::snprintf(line, sizeof(line), "%-44s %20llu (last %zus)\n",
                      e.name.c_str(),
                      static_cast<unsigned long long>(e.counter),
                      e.window_seconds);
        break;
      case MetricsSnapshot::Kind::WindowHistogram:
        std::snprintf(line, sizeof(line),
                      "%-44s count=%llu p50=%.6g p90=%.6g p99=%.6g "
                      "(last %zus)\n",
                      e.name.c_str(),
                      static_cast<unsigned long long>(e.hist.count),
                      e.hist.quantile(0.50), e.hist.quantile(0.90),
                      e.hist.quantile(0.99), e.window_seconds);
        break;
      case MetricsSnapshot::Kind::Histogram:
        std::snprintf(line, sizeof(line),
                      "%-44s count=%llu sum=%.6g mean=%.6g p50=%.6g "
                      "p90=%.6g p99=%.6g\n",
                      e.name.c_str(),
                      static_cast<unsigned long long>(e.hist.count),
                      e.hist.sum,
                      e.hist.count > 0
                          ? e.hist.sum / static_cast<double>(e.hist.count)
                          : 0.0,
                      e.hist.quantile(0.50), e.hist.quantile(0.90),
                      e.hist.quantile(0.99));
        break;
    }
    os << line;
  }
  return os.str();
}

namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted
/// lowercase identifiers map cleanly by replacing dots with underscores.
std::string prometheus_name(const std::string& name) {
  std::string out = "ivt_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const MetricsSnapshot::Entry& e : snapshot.entries) {
    const std::string name = prometheus_name(e.name);
    switch (e.kind) {
      case MetricsSnapshot::Kind::Counter:
        os << "# TYPE " << name << " counter\n";
        os << name << " " << e.counter << "\n";
        break;
      case MetricsSnapshot::Kind::Gauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << e.gauge << "\n";
        break;
      case MetricsSnapshot::Kind::WindowCounter:
        // A trailing-window count decays, so it is a gauge, not a counter.
        os << "# TYPE " << name << " gauge\n";
        os << name << "{window=\"" << e.window_seconds << "s\"} "
           << e.counter << "\n";
        break;
      case MetricsSnapshot::Kind::Histogram: {
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < e.hist.bounds.size(); ++b) {
          cumulative += e.hist.counts[b];
          os << name << "_bucket{le=\"" << prometheus_double(e.hist.bounds[b])
             << "\"} " << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << e.hist.count << "\n";
        os << name << "_sum " << prometheus_double(e.hist.sum) << "\n";
        os << name << "_count " << e.hist.count << "\n";
        break;
      }
      case MetricsSnapshot::Kind::WindowHistogram: {
        // Quantiles over a trailing window are what a summary models.
        os << "# TYPE " << name << " summary\n";
        // Label values are matched textually by scrapers: keep the
        // conventional short forms, not %.17g round-trip spellings.
        for (const char* q : {"0.5", "0.9", "0.99"}) {
          os << name << "{quantile=\"" << q << "\",window=\""
             << e.window_seconds << "s\"} "
             << prometheus_double(e.hist.quantile(std::stod(q))) << "\n";
        }
        os << name << "_sum " << prometheus_double(e.hist.sum) << "\n";
        os << name << "_count " << e.hist.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

void write_metrics_json(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << to_json(Registry::instance().snapshot());
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports bytes; Linux and the BSDs report KiB.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  std::uint64_t pages_total = 0;
  std::uint64_t pages_resident = 0;
  statm >> pages_total >> pages_resident;
  if (!statm) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return pages_resident * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

}  // namespace ivt::obs
