#include "cli/commands.hpp"

int main(int argc, char** argv) { return ivt::cli::run_cli(argc, argv); }
