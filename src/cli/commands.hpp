// Subcommands of the `ivt` tool.
//
//   ivt simulate  — generate SYN/LIG/STA-style traces + catalog files
//   ivt inspect   — trace statistics (.ivt) or chunk/zone-map dump (.ivc)
//   ivt catalog   — validate and summarize a catalog file
//   ivt pack      — convert a row-oriented .ivt trace into columnar .ivc
//   ivt extract   — Algorithm 1 lines 3–6: trace -> K_s (CSV / .ivtbl)
//   ivt run       — the full pipeline: trace -> R_out + state table
//   ivt mine      — Sec. 4.4 applications on a preprocessed journey
//   ivt export-asc — textual trace dump
//   ivt serve     — concurrent trace-query daemon (src/serve)
//   ivt query     — one request against a running ivt serve daemon
//   ivt trace-merge — join client/server Chrome traces into one timeline
//   ivt top       — live terminal dashboard over a daemon's stats op
//   ivt coordinator — dist job coordinator (range assignment + merge)
//   ivt worker    — one dist worker against a running coordinator
//
// Commands taking --trace accept both containers; .ivc inputs to
// `extract` use zone-map predicate pushdown for preselection.
//
// Each command returns a process exit code; diagnostics go to stderr.
#pragma once

#include "cli/args.hpp"
#include "errors/error.hpp"

namespace ivt::cli {

/// The CLI exit-code contract for a failure of the given category:
/// 3 for bad input data (Format/Decode/Spec), 1 otherwise. Exhaustive
/// over errors::Category (an `error-table` anchor for ivt-analyze).
int category_exit_code(errors::Category category);

int cmd_simulate(const Args& args);
int cmd_inspect(const Args& args);
int cmd_catalog(const Args& args);
int cmd_pack(const Args& args);
int cmd_extract(const Args& args);
int cmd_run(const Args& args);
int cmd_mine(const Args& args);
int cmd_export_asc(const Args& args);
int cmd_serve(const Args& args);
int cmd_query(const Args& args);
int cmd_trace_merge(const Args& args);
int cmd_top(const Args& args);
int cmd_coordinator(const Args& args);
int cmd_worker(const Args& args);

/// Dispatch on argv[1]; prints usage and returns 2 for unknown commands.
int run_cli(int argc, const char* const* argv);

/// Full usage text.
const char* usage();

}  // namespace ivt::cli
