// Minimal command-line argument parsing for the ivt tool.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ivt::cli {

/// Parses "--key value", "--key=value", bare "--flag" and positional
/// arguments. Keys keep their leading dashes stripped.
class Args {
 public:
  Args(int argc, const char* const* argv, int first = 1);

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Presence check for bare flags. Counts as a read: a flag the command
  /// consulted is not "unknown", even when absent from this invocation.
  [[nodiscard]] bool has(const std::string& key) const {
    if (!options_.contains(key)) return false;
    used_[key] = true;
    return true;
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  /// Throws std::invalid_argument with a usage-friendly message if absent.
  [[nodiscard]] std::string require(const std::string& key) const;

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;

  /// Comma-separated list value; empty vector when absent.
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& key) const;

  /// Options that were never read — surfaced as typo protection.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace ivt::cli
