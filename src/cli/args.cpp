#include "cli/args.hpp"

#include <stdexcept>

namespace ivt::cli {

Args::Args(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is another option or absent.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "";  // bare flag
    }
  }
}

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  used_[key] = true;
  return it->second;
}

std::string Args::get_or(const std::string& key,
                         const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::string Args::require(const std::string& key) const {
  if (const auto v = get(key)) return *v;
  throw std::invalid_argument("missing required option --" + key);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                *v + "'");
  }
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key +
                                " expects an integer, got '" + *v + "'");
  }
}

std::vector<std::string> Args::get_list(const std::string& key) const {
  std::vector<std::string> out;
  const auto v = get(key);
  if (!v || v->empty()) return out;
  std::size_t start = 0;
  while (start <= v->size()) {
    const std::size_t comma = v->find(',', start);
    if (comma == std::string::npos) {
      out.push_back(v->substr(start));
      break;
    }
    out.push_back(v->substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_) {
    if (!used_.contains(key)) out.push_back(key);
  }
  return out;
}

}  // namespace ivt::cli
