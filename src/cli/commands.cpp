#include "cli/commands.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <algorithm>

#include "apps/anomaly.hpp"
#include "apps/association_rules.hpp"
#include "apps/transition_graph.hpp"
#include "colstore/columnar_reader.hpp"
#include "colstore/columnar_writer.hpp"
#include "core/interpret.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/urel.hpp"
#include "dataflow/csv.hpp"
#include "dataflow/ops.hpp"
#include "dataflow/summary.hpp"
#include "dataflow/table_io.hpp"
#include "dist/coordinator.hpp"
#include "dist/sim.hpp"
#include "dist/worker.hpp"
#include "errors/error.hpp"
#include "errors/failure_log.hpp"
#include "faultfx/faultfx.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/trace_merge.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/binary_format.hpp"

namespace ivt::cli {

namespace {

constexpr const char* kUsage = R"(ivt — in-vehicle network trace preprocessing (DAC'18 reproduction)

usage: ivt <command> [options]

commands:
  simulate     generate a synthetic journey (and catalog) of a vehicle model
      --dataset SYN|LIG|STA   vehicle model (default SYN)
      --scale S               fraction of the 20 h recording (default 0.001)
      --seed N                model + journey seed (default 42)
      --journeys N            number of journeys (default 1)
      --out PREFIX            output prefix: PREFIX_J<i>.ivt (default ./<dataset>)
      --catalog PATH          also write the catalog (default PREFIX.ivsdb)
      --no-faults             disable fault injection

  inspect      statistics of a recorded trace (.ivt or .ivc); for .ivc
               also dumps the chunk directory with its zone maps
      --trace PATH            trace file (required)
      --catalog PATH          optional: report catalog coverage

  catalog      validate and summarize a catalog file
      --file PATH             .ivsdb catalog (required)

  pack         convert a row-oriented .ivt trace into the columnar .ivc
               container (chunked columns + per-chunk zone maps)
      --trace PATH            .ivt input (required)
      --out PATH              .ivc output (required)
      --chunk-rows N          rows per chunk (default 65536)

  extract      signal extraction (Algorithm 1 lines 3-6) to a table file;
               .ivc traces are scanned with zone-map predicate pushdown
      --trace PATH            .ivt or .ivc trace (required)
      --catalog PATH          .ivsdb catalog (required)
      --signals a,b,c         U_comb selection (default: all signals)
      --out PATH              .csv or .ivtbl output (required)
      --workers N             engine workers (default: hardware); a literal
                              --workers=0 runs every task inline on the
                              caller (deterministic debugging mode)
      --skip-error-frames     drop monitor-flagged error frames
      --on-error fail|skip|quarantine   corrupt-input policy (default fail)
      --scan decoded|compressed   .ivc chunk evaluation (default decoded):
                              compressed evaluates the predicate on the
                              v2 key-run headers — rejected runs are
                              skipped without materializing a row, and
                              U_comb joins by dictionary index. Output is
                              byte-identical; v1 files fall back to
                              decoded
      --trace-out PATH        write a Chrome trace (chrome://tracing,
                              Perfetto) of the run's spans
      --metrics-out PATH      write the metrics registry snapshot as JSON

  run          full preprocessing pipeline (Algorithm 1)
      --trace, --catalog, --signals, --workers   as in extract
      --exec batch|streaming|dist   execution mode (default batch).
                              streaming fuses decode+preselect+interpret+
                              split into one bounded-admission task per
                              .ivc chunk — same output, bounded peak
                              memory. dist runs the sharded coordinator/
                              worker executor in-process over loopback
                              (byte-identical output; see the coordinator
                              and worker commands for the multi-process
                              form). Both require a columnar .ivc trace
      --sim-nodes N           dist: simulated worker nodes (default 4)
      --sim-failure-rate P    dist: per-assignment probability a node dies
                              mid-range (seeded + deterministic; dead
                              nodes respawn and the job still finishes
                              with identical bytes; default 0)
      --sim-latency-ms MS     dist: added latency per worker RPC
      --sim-slow-factor F     dist: per-morsel slowdown, provokes the
                              straggler/speculation policy (default 1.0)
      --seed N                dist: failure-schedule seed (default 0)
      --ranges N              dist: ranges to cut the job into (default:
                              4 per node, min 8)
      --scan decoded|compressed   chunk evaluation mode, all exec modes
                              (see extract; dist ships it to workers)
      --rate-threshold HZ     classifier z_rate threshold T (default 5)
      --no-reduction          disable the constraint set C
      --extensions gap,cycle_violation,derivative   extension rules E
      --state PATH            write the state representation (.csv/.ivtbl)
      --krep PATH             write the homogenized sequence R_out
      --report text|json      processing report to stdout (default text)
      --on-error fail|skip|quarantine   failure policy: fail aborts on the
                              first corrupt chunk / failed sequence; skip
                              drops the unit and records it in the report;
                              quarantine additionally writes a
                              <trace>.quarantine.json sidecar manifest
      --trace-out PATH        write a Chrome trace of the run's spans
      --metrics-out PATH      write the metrics registry snapshot as JSON

  mine         Sec. 4.4 applications on one journey (runs the pipeline,
               then anomaly ranking, rare transitions and IF-THEN rules)
      --trace, --catalog, --signals, --workers, --rate-threshold  as in run
      --trace-out, --metrics-out                 as in run
      --top-k N               anomalies to report (default 10)
      --rare-probability P    rare-transition threshold (default 0.05)
      --min-support S         Apriori minimum support (default 0.1)
      --min-confidence C      Apriori minimum confidence (default 0.9)
      --rule-columns a,b,c    state columns to mine rules over
                              (default: first 6)
      --dot PATH              write a transition graph (first nominal γ
                              signal) as Graphviz DOT

  export-asc   dump a trace as readable text
      --trace PATH            .ivt or .ivc trace (required)
      --out PATH              output file (default: stdout)

  serve        run the ivt-serve daemon: answers concurrent preselect /
               extract / state / mine queries over registered .ivc traces
               (length-prefixed binary protocol, see src/serve). Prints
               "listening on HOST:PORT" once ready; SIGTERM/SIGINT shut
               it down cleanly after in-flight requests finish
      --catalog PATH          .ivsdb catalog (required)
      --traces a.ivc,b.ivc    traces to register; each is served under its
                              basename without extension (required)
      --host ADDR             bind address (default 127.0.0.1)
      --port N                listen port; 0 picks a free port (default 0)
      --workers N             query worker threads (default: hardware)
      --max-in-flight N       admission window before requests are
                              rejected Overloaded (default: 2 x workers)
      --cache-mb N            tier-1 compressed-chunk cache (default 64)
      --state-cache-mb N      tier-2 state-representation cache (default 64)
      --scan decoded|compressed   evaluate cached chunk extents run-level
                              instead of re-decoding per request (see
                              extract; default decoded)
      --event-log PATH        append one JSON-lines access record per
                              request (plus slow-query warnings)
      --slow-query-ms MS      warn-log requests slower than MS (default:
                              off)
      --stats-window-s S      rolling-window width for the stats op and
                              Prometheus exposition (default 60)
      --trace-out PATH        write the server's Chrome trace at shutdown

  query        send one request to a running daemon and print the reply
      --host ADDR             daemon address (default 127.0.0.1)
      --port N                daemon port (required)
      --op NAME               ping|list|stats|metrics|preselect|extract|
                              state|mine|shutdown (default ping);
                              metrics returns the Prometheus text
                              exposition as the payload
      --trace NAME            registered trace name (data ops)
      --signals a,b,c         signal selection (default: all)
      --min-t-ns N, --max-t-ns N   time slice bounds
      --rate-threshold HZ     state/mine classifier threshold (default 5)
      --top-k N               mine: anomalies to report (default 10)
      --timeout-ms MS         client deadline per request: connect, send
                              and receive each must finish within MS or
                              the query fails with a retryable timeout
                              instead of hanging on a stalled daemon
                              (default: block indefinitely)
      --out PATH              write the table payload here (default:
                              payload follows the JSON on stdout)
      --trace-out PATH        write the client-side Chrome trace; the
                              minted trace id is propagated to the server
                              so both traces share it

  trace-merge  join Chrome traces (e.g. client + server of one query)
               into a single timeline; each input becomes one process
               row, named after the file
      inputs: positional trace file paths (at least one)
      --out PATH              merged Chrome trace (required)

  top          live terminal dashboard over a daemon's stats op: QPS,
               in-flight, overload rejects, cache hit ratios and the
               rolling-window p50/p99
      --host ADDR             daemon address (default 127.0.0.1)
      --port N                daemon port (required)
      --interval S            poll interval in seconds (default 2)
      --iterations N          stop after N polls; 0 = run until ^C
                              (default 0)
      --no-clear              append frames instead of redrawing

  coordinator  run the dist coordinator: cuts a columnar trace into
               chunk ranges, assigns them to registering workers via
               consistent hashing, declares workers dead after missed
               heartbeats (re-queuing their in-flight ranges), launches
               speculative duplicates for stragglers and merges the
               accepted partials into the standard run report. Prints
               "coordinating on HOST:PORT ranges=N" once ready;
               SIGTERM/SIGINT abort the job cleanly
      --trace PATH            .ivc trace (required); workers open the
                              same path themselves — only control data
                              and partial results cross the wire
      --catalog PATH          .ivsdb catalog (required)
      --signals, --rate-threshold, --no-reduction, --on-error, --scan,
      --state, --krep, --report, --workers            as in run
      --host ADDR             bind address (default 127.0.0.1)
      --port N                listen port; 0 picks a free port (default 0)
      --ranges N              ranges to cut the job into (default:
                              4 x --expect-workers, min 8)
      --expect-workers N      sizing hint for --ranges (default 4)
      --heartbeat-ms MS       heartbeat cadence workers are told to use
                              (default 50)
      --dead-after-missed K   beats missed before a worker is declared
                              dead and its ranges re-assigned (default 3)
      --speculate-min-age G   duplicate an in-flight range at least G
                              grants old when a worker goes idle; first
                              completion wins, the loser is deduplicated;
                              0 disables speculation (default 2)

  worker       run one dist worker: registers with the coordinator under
               jittered backoff, heartbeats, pulls chunk ranges and ships
               partial results until the job is done
      --host ADDR             coordinator address (default 127.0.0.1)
      --port N                coordinator port (required)
      --name ID               stable identity on the coordinator's hash
                              ring (required; re-registering under the
                              same name supersedes the old registration)
      --timeout-ms MS         per-RPC client deadline (default 5000)
      --register-timeout-ms MS  give up when the coordinator has not
                              accepted registration after MS (default
                              10000)
      --sim-failure-rate P, --sim-latency-ms MS, --sim-slow-factor F,
      --seed N                as in run --exec dist

environment:
  IVT_FAULTS   failpoint recipe armed before the command runs, e.g.
               colstore.decode_chunk:error:0.01:seed=7 (see src/faultfx)

exit codes:
  0  success            2  usage error (bad command line)
  1  other failure      3  input format error (corrupt trace / catalog)
  5  server bind/       4  partial success (units dropped under
     listen failure        --on-error=skip|quarantine)
)";

signaldb::Catalog load_catalog_arg(const Args& args, const char* key) {
  return signaldb::load_catalog(args.require(key));
}

void write_table_arg(const dataflow::Table& table, const std::string& path) {
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".csv") {
    dataflow::write_csv_file(table, path);
  } else {
    dataflow::save_table(table, path);
  }
}

void warn_unused(const Args& args) {
  for (const std::string& key : args.unused()) {
    std::fprintf(stderr, "warning: unknown option --%s ignored\n",
                 key.c_str());
  }
}

/// --trace-out / --metrics-out handling shared by extract/run/mine.
/// Read the options before the command runs (so warn_unused stays
/// accurate), write the artifacts after it finishes.
class ObsOutputs {
 public:
  explicit ObsOutputs(const Args& args)
      : trace_out_(args.get("trace-out")),
        metrics_out_(args.get("metrics-out")) {}

  void write() const {
    if (trace_out_) {
      obs::write_chrome_trace(*trace_out_);
      std::fprintf(stderr, "chrome trace written to %s (%zu spans)\n",
                   trace_out_->c_str(), obs::collect_spans().size());
    }
    if (metrics_out_) {
      obs::write_metrics_json(*metrics_out_);
      std::fprintf(stderr, "metrics snapshot written to %s\n",
                   metrics_out_->c_str());
    }
  }

 private:
  std::optional<std::string> trace_out_;
  std::optional<std::string> metrics_out_;
};

/// --workers=N (default: hardware concurrency). A literal --workers=0
/// selects inline execution: every engine task runs immediately on the
/// calling thread, so task order is deterministic and single-stepping
/// under a debugger follows the data. Bounded-admission semantics hold
/// trivially (at most one task exists at a time).
dataflow::EngineConfig engine_config_from_args(const Args& args) {
  dataflow::EngineConfig config;
  config.workers = static_cast<std::size_t>(args.get_int("workers", 0));
  const auto text = args.get("workers");
  if (text && config.workers == 0) config.inline_execution = true;
  return config;
}

/// --on-error=fail|skip|quarantine (default fail). A bad value is a usage
/// error.
errors::ErrorPolicy error_policy_arg(const Args& args) {
  const auto text = args.get("on-error");
  if (!text) return errors::ErrorPolicy::Fail;
  const auto policy = errors::parse_error_policy(*text);
  if (!policy) {
    throw std::invalid_argument("bad --on-error '" + *text +
                                "' (expected fail, skip or quarantine)");
  }
  return *policy;
}

/// K_b table from either container. Columnar traces decode straight into
/// a partitioned table on the engine's workers (and populate the
/// colstore.* metrics); row traces go through the in-memory Trace model.
/// Under Skip/Quarantine, corrupt chunks / record-stream tails are dropped
/// and recorded in `failures` instead of aborting.
dataflow::Table load_kb_table(const std::string& trace_path,
                              dataflow::Engine& engine,
                              errors::ErrorPolicy on_error =
                                  errors::ErrorPolicy::Fail,
                              errors::FailureLog* failures = nullptr) {
  if (colstore::is_columnar_trace_file(trace_path)) {
    const colstore::ColumnarReader reader(trace_path);
    colstore::ScanOptions options;
    options.on_error = on_error;
    options.failures = failures;
    return reader.scan({}, engine, options);
  }
  const tracefile::Trace trace =
      tracefile::load_trace_tolerant(trace_path, on_error, failures);
  return tracefile::to_kb_table(trace, engine.default_partitions());
}

/// Quarantine epilogue shared by extract/run: writes the sidecar manifest
/// next to the input and tells the user on stderr.
void write_quarantine_sidecar(const std::string& trace_path,
                              const errors::FailureLog& failures) {
  const std::string manifest_path = trace_path + ".quarantine.json";
  errors::write_quarantine_manifest(manifest_path, trace_path,
                                    failures.records());
  std::fprintf(stderr, "quarantine manifest written to %s (%zu failures)\n",
               manifest_path.c_str(), failures.size());
}

simnet::DatasetSpec spec_by_name(const std::string& name) {
  if (name == "SYN") return simnet::syn_spec();
  if (name == "LIG") return simnet::lig_spec();
  if (name == "STA") return simnet::sta_spec();
  throw std::invalid_argument("unknown dataset '" + name +
                              "' (expected SYN, LIG or STA)");
}

}  // namespace

const char* usage() { return kUsage; }

int category_exit_code(errors::Category category) {
  // The CLI exit-code contract: 0 success, 1 runtime failure, 2 usage,
  // 3 bad input data, 4 partial results, 5 bind failure. This switch is
  // an `error-table` anchor in tools/ivt-lint.conf: ivt-analyze fails
  // when any thrown errors::Category is missing from it, so a new
  // category can never silently fall into a default exit code.
  switch (category) {
    case errors::Category::Format:
    case errors::Category::Decode:
    case errors::Category::Spec:
      return 3;  // the input, not the invocation, is at fault
    case errors::Category::Io:
    case errors::Category::Resource:
    case errors::Category::Overloaded:
    case errors::Category::Timeout:
    case errors::Category::Internal:
      return 1;
  }
  return 1;
}

int cmd_simulate(const Args& args) {
  const std::string dataset = args.get_or("dataset", "SYN");
  const simnet::DatasetSpec spec = spec_by_name(dataset);
  simnet::DatasetConfig config;
  config.scale = args.get_double("scale", 0.001);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.inject_faults = !args.has("no-faults");
  const std::size_t journeys =
      static_cast<std::size_t>(args.get_int("journeys", 1));
  const std::string prefix = args.get_or("out", dataset);
  const std::string catalog_path = args.get_or("catalog", prefix + ".ivsdb");
  warn_unused(args);

  const simnet::Fleet fleet = simnet::make_fleet(journeys, spec, config);
  signaldb::save_catalog(fleet.catalog, catalog_path);
  std::fprintf(stderr, "catalog: %s (%zu messages, %zu signals)\n",
               catalog_path.c_str(), fleet.catalog.num_messages(),
               fleet.catalog.num_signals());
  for (std::size_t j = 0; j < fleet.journeys.size(); ++j) {
    const std::string path =
        prefix + "_J" + std::to_string(j + 1) + ".ivt";
    tracefile::save_trace(fleet.journeys[j], path);
    std::fprintf(stderr, "journey %zu: %s (%zu records, %.1f s)\n", j + 1,
                 path.c_str(), fleet.journeys[j].size(),
                 static_cast<double>(fleet.journeys[j].duration_ns()) / 1e9);
  }
  return 0;
}

/// Chunk-directory / zone-map dump of a columnar container.
int inspect_columnar(const std::string& path, const Args& args) {
  warn_unused(args);
  const colstore::ColumnarReader reader(path);
  std::printf("container    : ivc (columnar, %zu chunks)\n",
              reader.num_chunks());
  std::printf("vehicle      : %s\n", reader.vehicle().c_str());
  std::printf("journey      : %s\n", reader.journey().c_str());
  std::printf("records      : %zu\n", reader.num_rows());
  std::printf("buses        :");
  for (const std::string& bus : reader.bus_names()) {
    std::printf(" %s", bus.c_str());
  }
  std::printf("\n\n%-6s %10s %10s %22s %22s  %s\n", "chunk", "rows",
              "bytes", "t_ns [min,max]", "m_id [min,max]", "buses");
  for (std::size_t i = 0; i < reader.num_chunks(); ++i) {
    const colstore::ChunkInfo& c = reader.chunk(i);
    std::string buses;
    for (std::size_t b = 0; b < reader.bus_names().size(); ++b) {
      if (c.has_bus(static_cast<std::uint16_t>(b))) {
        if (!buses.empty()) buses += ',';
        buses += reader.bus_names()[b];
      }
    }
    std::printf("%-6zu %10u %10llu [%10lld,%10lld] [%10lld,%10lld]  %s\n",
                i, c.row_count,
                static_cast<unsigned long long>(c.encoded_bytes),
                static_cast<long long>(c.min_t_ns),
                static_cast<long long>(c.max_t_ns),
                static_cast<long long>(c.min_message_id),
                static_cast<long long>(c.max_message_id), buses.c_str());
  }
  return 0;
}

int cmd_inspect(const Args& args) {
  const std::string trace_path = args.require("trace");
  if (colstore::is_columnar_trace_file(trace_path)) {
    return inspect_columnar(trace_path, args);
  }
  const tracefile::Trace trace = tracefile::load_trace(trace_path);
  const auto catalog_path = args.get("catalog");
  warn_unused(args);

  const tracefile::TraceStats stats = tracefile::compute_stats(trace);
  std::printf("vehicle      : %s\n", trace.vehicle.c_str());
  std::printf("journey      : %s\n", trace.journey.c_str());
  std::printf("records      : %zu\n", stats.num_records);
  std::printf("duration     : %.3f s\n",
              static_cast<double>(stats.duration_ns) / 1e9);
  std::printf("time ordered : %s\n", trace.is_time_ordered() ? "yes" : "no");
  std::printf("\nrecords per channel:\n");
  for (const auto& [bus, count] : stats.records_per_bus) {
    std::printf("  %-12s %10zu\n", bus.c_str(), count);
  }
  std::printf("\nmessage types: %zu\n", stats.records_per_message.size());

  if (catalog_path) {
    const signaldb::Catalog catalog = signaldb::load_catalog(*catalog_path);
    std::size_t known = 0;
    std::size_t unknown = 0;
    for (const auto& [m_id, count] : stats.records_per_message) {
      bool found = false;
      for (const auto& bus : catalog.bus_names()) {
        if (catalog.find_message(bus, m_id) != nullptr) {
          found = true;
          break;
        }
      }
      (found ? known : unknown) += count;
    }
    std::printf("\ncatalog coverage: %zu records documented, %zu unknown\n",
                known, unknown);
  }
  return 0;
}

int cmd_catalog(const Args& args) {
  const signaldb::Catalog catalog = signaldb::load_catalog(args.require("file"));
  warn_unused(args);
  std::printf("messages: %zu, signals: %zu\n", catalog.num_messages(),
              catalog.num_signals());
  std::printf("buses:");
  for (const std::string& bus : catalog.bus_names()) {
    std::printf(" %s", bus.c_str());
  }
  std::printf("\n\n%-24s %-8s %6s %6s %8s %10s\n", "message", "bus", "id",
              "size", "signals", "protocol");
  for (const signaldb::MessageSpec& m : catalog.messages()) {
    std::printf("%-24s %-8s %6lld %6zu %8zu %10s\n", m.name.c_str(),
                m.bus.c_str(), static_cast<long long>(m.message_id),
                m.payload_size, m.signals.size(),
                std::string(protocol::to_string(m.protocol)).c_str());
  }
  return 0;
}

int cmd_pack(const Args& args) {
  const std::string trace_path = args.require("trace");
  const std::string out_path = args.require("out");
  colstore::ColumnarWriterOptions options;
  options.chunk_rows = static_cast<std::size_t>(
      args.get_int("chunk-rows",
                   static_cast<std::int64_t>(colstore::kDefaultChunkRows)));
  warn_unused(args);

  const colstore::PackStats stats =
      colstore::pack_trace_file(trace_path, out_path, options);
  std::fprintf(stderr,
               "packed %zu records into %zu chunks: %llu -> %llu bytes "
               "(%.2fx)\n",
               stats.records, stats.chunks,
               static_cast<unsigned long long>(stats.input_bytes),
               static_cast<unsigned long long>(stats.output_bytes),
               stats.output_bytes > 0
                   ? static_cast<double>(stats.input_bytes) /
                         static_cast<double>(stats.output_bytes)
                   : 0.0);
  return 0;
}

int cmd_extract(const Args& args) {
  const std::string trace_path = args.require("trace");
  const signaldb::Catalog catalog = load_catalog_arg(args, "catalog");
  const std::vector<std::string> signals = args.get_list("signals");
  const std::string out_path = args.require("out");
  const dataflow::EngineConfig engine_config = engine_config_from_args(args);
  core::InterpretOptions options;
  options.catalog = &catalog;
  options.skip_error_frames = args.has("skip-error-frames");
  const errors::ErrorPolicy on_error = error_policy_arg(args);
  const colstore::ScanMode scan_mode =
      colstore::parse_scan_mode(args.get_or("scan", "decoded"));
  const ObsOutputs obs_outputs(args);
  warn_unused(args);

  dataflow::Engine engine(engine_config);
  const auto urel = signals.empty()
                        ? core::make_full_urel_table(catalog)
                        : core::make_urel_table(catalog, signals);
  errors::FailureLog failures;
  dataflow::Table ks;
  std::size_t input_rows = 0;
  if (colstore::is_columnar_trace_file(trace_path)) {
    // Columnar container: push U_comb down into the scan so only chunks
    // whose zone maps can match are decoded at all.
    const colstore::ColumnarReader reader(trace_path);
    input_rows = reader.num_rows();
    colstore::ScanStats stats;
    colstore::ScanOptions scan_options;
    scan_options.on_error = on_error;
    scan_options.failures = &failures;
    scan_options.mode = scan_mode;
    const auto kpre =
        core::preselect(engine, reader, urel, scan_options, &stats);
    ks = core::interpret(engine, kpre, urel, options);
    std::fprintf(stderr,
                 "pushdown scan: %zu/%zu chunks decoded, %zu/%zu rows "
                 "materialized\n",
                 stats.chunks_scanned, stats.chunks_total,
                 stats.rows_emitted, input_rows);
    if (stats.chunks_quarantined > 0) {
      std::fprintf(stderr, "corrupt chunks dropped: %zu (%zu rows)\n",
                   stats.chunks_quarantined, stats.rows_quarantined);
    }
  } else {
    const tracefile::Trace trace =
        tracefile::load_trace_tolerant(trace_path, on_error, &failures);
    const auto kb =
        tracefile::to_kb_table(trace, engine.default_partitions());
    input_rows = kb.num_rows();
    ks = core::extract_signals(engine, kb, urel, options);
  }
  write_table_arg(ks, out_path);
  std::fprintf(stderr, "extracted %zu signal instances from %zu records -> %s\n",
               ks.num_rows(), input_rows, out_path.c_str());
  std::printf("%s",
              dataflow::to_display_string(dataflow::summarize(engine, ks))
                  .c_str());
  if (on_error == errors::ErrorPolicy::Quarantine && !failures.empty()) {
    write_quarantine_sidecar(trace_path, failures);
  }
  obs_outputs.write();
  return failures.empty() ? 0 : 4;
}

int cmd_run(const Args& args) {
  const std::string trace_path = args.require("trace");
  // Dist mode ships the catalog path to workers in the JobSpec, so keep
  // the path itself, not just the loaded catalog.
  const std::string catalog_path = args.require("catalog");
  const signaldb::Catalog catalog = signaldb::load_catalog(catalog_path);

  core::PipelineConfig config;
  config.signals = args.get_list("signals");
  config.classifier.rate_threshold_hz = args.get_double("rate-threshold", 5.0);
  if (args.has("no-reduction")) config.constraints.clear();
  for (const std::string& name : args.get_list("extensions")) {
    if (name == "gap") {
      config.extensions.push_back(core::gap_extension());
    } else if (name == "cycle_violation") {
      config.extensions.push_back(core::cycle_violation_extension(1.5));
    } else if (name == "derivative") {
      config.extensions.push_back(core::derivative_extension());
    } else {
      throw std::invalid_argument("unknown extension '" + name +
                                  "' (gap, cycle_violation, derivative)");
    }
  }
  const dataflow::EngineConfig engine_config = engine_config_from_args(args);
  config.exec_mode = core::parse_exec_mode(args.get_or("exec", "batch"));
  const std::string report_kind = args.get_or("report", "text");
  if (report_kind != "json" && report_kind != "text") {
    throw std::invalid_argument("unknown report kind '" + report_kind + "'");
  }
  config.on_error = error_policy_arg(args);
  config.scan_mode = colstore::parse_scan_mode(args.get_or("scan", "decoded"));
  const auto state_path = args.get("state");
  const auto krep_path = args.get("krep");
  // Sim knobs are read unconditionally so warn_unused stays accurate;
  // they only take effect under --exec dist.
  dist::DistRunConfig dist_config;
  dist_config.trace_path = trace_path;
  dist_config.catalog_path = catalog_path;
  dist_config.nodes = static_cast<std::size_t>(args.get_int("sim-nodes", 4));
  dist_config.target_ranges =
      static_cast<std::uint64_t>(args.get_int("ranges", 0));
  dist_config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  dist_config.failure_rate = args.get_double("sim-failure-rate", 0.0);
  dist_config.latency_ms =
      static_cast<int>(args.get_int("sim-latency-ms", 0));
  dist_config.slow_factor = args.get_double("sim-slow-factor", 1.0);
  const ObsOutputs obs_outputs(args);
  warn_unused(args);

  dataflow::Engine engine(engine_config);
  const core::Pipeline pipeline(catalog, config);
  core::PipelineResult result;
  if (colstore::is_columnar_trace_file(trace_path)) {
    const colstore::ColumnarReader reader(trace_path);
    if (config.exec_mode == core::ExecMode::Dist) {
      // Sharded coordinator/worker execution over loopback: one real
      // coordinator plus N node threads running the real worker loop.
      // Recovery events land in the report's "failures"."dist" section,
      // not result.failures — a recovered run is a clean run.
      result = dist::run_dist(catalog, config, reader, dist_config, engine);
    } else {
      // The reader overload dispatches on config.exec_mode and already
      // folds scan-level losses (quarantined chunks) into
      // result.failures.
      result = pipeline.run(engine, reader);
    }
  } else {
    if (config.exec_mode != core::ExecMode::Batch) {
      throw std::invalid_argument(
          std::string("--exec=") + core::to_string(config.exec_mode) +
          " requires a columnar .ivc trace ('" + trace_path +
          "' is not one; convert it with 'ivt pack' first)");
    }
    errors::FailureLog ingest_failures;
    const auto kb =
        load_kb_table(trace_path, engine, config.on_error, &ingest_failures);
    result = pipeline.run(engine, kb);

    // Fold upstream ingest losses (truncated record streams) into the run
    // report next to the dropped sequences.
    std::vector<errors::FailureRecord> combined = ingest_failures.records();
    for (errors::FailureRecord& f : result.failures) {
      combined.push_back(std::move(f));
    }
    result.failures = std::move(combined);
  }

  if (state_path) write_table_arg(result.state, *state_path);
  if (krep_path) write_table_arg(result.krep, *krep_path);

  if (report_kind == "json") {
    std::printf("%s", core::report_to_json(result).c_str());
  } else {
    std::printf("%s", core::report_to_text(result).c_str());
  }
  if (config.on_error == errors::ErrorPolicy::Quarantine &&
      !result.failures.empty()) {
    const std::string manifest_path = trace_path + ".quarantine.json";
    errors::write_quarantine_manifest(manifest_path, trace_path,
                                      result.failures);
    std::fprintf(stderr,
                 "quarantine manifest written to %s (%zu failures)\n",
                 manifest_path.c_str(), result.failures.size());
  }
  obs_outputs.write();
  return result.failures.empty() ? 0 : 4;
}

int cmd_mine(const Args& args) {
  const std::string trace_path = args.require("trace");
  const signaldb::Catalog catalog = load_catalog_arg(args, "catalog");

  core::PipelineConfig config;
  config.signals = args.get_list("signals");
  config.classifier.rate_threshold_hz = args.get_double("rate-threshold", 5.0);
  config.extensions = {core::cycle_violation_extension(1.5)};
  const dataflow::EngineConfig engine_config = engine_config_from_args(args);
  const std::size_t top_k =
      static_cast<std::size_t>(args.get_int("top-k", 10));
  const double rare_probability =
      args.get_double("rare-probability", 0.05);
  const double min_support = args.get_double("min-support", 0.1);
  const double min_confidence = args.get_double("min-confidence", 0.9);
  std::vector<std::string> rule_columns = args.get_list("rule-columns");
  const auto dot_path = args.get("dot");
  const ObsOutputs obs_outputs(args);
  warn_unused(args);

  dataflow::Engine engine(engine_config);
  const core::Pipeline pipeline(catalog, config);
  const core::PipelineResult result =
      pipeline.run(engine, load_kb_table(trace_path, engine));
  std::printf("%s\n", core::report_summary_line(result).c_str());

  // 1. Element anomalies.
  apps::AnomalyConfig anomaly_config;
  anomaly_config.top_k = top_k;
  std::printf("\n== top %zu element anomalies ==\n", top_k);
  for (const apps::Anomaly& a :
       apps::detect_element_anomalies(result.krep, anomaly_config)) {
    std::printf("  sev %6.2f  t=%10.3fs  %-20s %s\n", a.severity,
                static_cast<double>(a.t_ns) / 1e9, a.signal.c_str(),
                a.description.c_str());
  }

  // 2. Transition graph of the first multi-state γ signal.
  std::string graph_signal;
  for (const core::SequenceReport& report : result.sequences) {
    if (report.classification.branch == core::Branch::Gamma &&
        report.classification.criteria.z_num > 2 &&
        result.state.schema().contains(report.s_id)) {
      graph_signal = report.s_id;
      break;
    }
  }
  if (!graph_signal.empty()) {
    const auto graph =
        apps::TransitionGraph::from_column(result.state, graph_signal);
    std::printf("\n== rare transitions of '%s' (p <= %.3f) ==\n",
                graph_signal.c_str(), rare_probability);
    for (const apps::TransitionEdge& edge :
         graph.rare_transitions(rare_probability)) {
      std::printf("  %-16s -> %-16s p=%.4f (x%zu)\n", edge.from.c_str(),
                  edge.to.c_str(), edge.probability, edge.count);
    }
    if (dot_path) {
      std::ofstream dot(*dot_path, std::ios::binary);
      if (!dot) throw std::runtime_error("cannot open: " + *dot_path);
      dot << graph.to_dot(rare_probability);
      std::fprintf(stderr, "transition graph written to %s\n",
                   dot_path->c_str());
    }
  }

  // 3. Association rules over a manageable column subset.
  if (rule_columns.empty()) {
    for (std::size_t c = 0;
         c < result.state.schema().size() && rule_columns.size() < 6; ++c) {
      rule_columns.push_back(result.state.schema().field(c).name);
    }
  } else {
    rule_columns.insert(rule_columns.begin(), "t");
  }
  const auto trimmed = dataflow::project(engine, result.state, rule_columns);
  apps::MinerConfig miner;
  miner.min_support = min_support;
  miner.min_confidence = min_confidence;
  miner.max_itemset_size = 2;
  const auto rules = apps::mine_rules(trimmed, miner);
  std::printf("\n== association rules (top %zu of %zu) ==\n",
              std::min<std::size_t>(top_k, rules.size()), rules.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(top_k, rules.size());
       ++i) {
    std::printf("  %s\n", rules[i].to_display_string().c_str());
  }
  return 0;
}

int cmd_export_asc(const Args& args) {
  const tracefile::Trace trace =
      colstore::load_any_trace(args.require("trace"));
  const auto out_path = args.get("out");
  warn_unused(args);
  if (out_path) {
    std::ofstream out(*out_path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open for write: " + *out_path);
    tracefile::export_asc(trace, out);
  } else {
    tracefile::export_asc(trace, std::cout);
  }
  return 0;
}

namespace {

/// cmd_serve's SIGTERM/SIGINT target. request_stop() is async-signal-safe
/// (one write to a self-pipe), so calling it from the handler is legal.
serve::Server* g_serve_instance = nullptr;

extern "C" void handle_serve_signal(int) {
  if (g_serve_instance != nullptr) g_serve_instance->request_stop();
}

/// cmd_coordinator's SIGTERM/SIGINT target — same self-pipe pattern.
dist::Coordinator* g_coordinator_instance = nullptr;

extern "C" void handle_coordinator_signal(int) {
  if (g_coordinator_instance != nullptr) {
    g_coordinator_instance->request_stop();
  }
}

/// Registered trace name: basename without the extension
/// ("out/SYN_J0.ivc" -> "SYN_J0").
std::string trace_name_from_path(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name.resize(dot);
  return name;
}

}  // namespace

int cmd_serve(const Args& args) {
  signaldb::Catalog db = load_catalog_arg(args, "catalog");
  const std::vector<std::string> trace_paths = args.get_list("traces");
  if (trace_paths.empty()) {
    throw std::invalid_argument(
        "serve: --traces a.ivc[,b.ivc...] is required");
  }
  serve::ServerConfig config;
  config.host = args.get_or("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  config.workers = static_cast<std::size_t>(args.get_int("workers", 0));
  config.max_in_flight =
      static_cast<std::size_t>(args.get_int("max-in-flight", 0));
  config.query.chunk_cache_bytes =
      static_cast<std::size_t>(args.get_int("cache-mb", 64)) << 20U;
  config.query.state_cache_bytes =
      static_cast<std::size_t>(args.get_int("state-cache-mb", 64)) << 20U;
  config.query.stats_window_s =
      static_cast<std::size_t>(args.get_int("stats-window-s", 60));
  config.query.scan_mode =
      colstore::parse_scan_mode(args.get_or("scan", "decoded"));
  config.event_log_path = args.get_or("event-log", "");
  config.slow_query_ms = args.get_double("slow-query-ms", 0.0);
  const auto trace_out = args.get("trace-out");
  warn_unused(args);

  auto catalog = std::make_unique<serve::TraceCatalog>(std::move(db));
  for (const std::string& path : trace_paths) {
    catalog->add_trace(trace_name_from_path(path), path);
    std::fprintf(stderr, "serve: registered %s as '%s'\n", path.c_str(),
                 trace_name_from_path(path).c_str());
  }
  serve::Server server(std::move(catalog), config);
  try {
    server.start();
  } catch (const errors::Error& e) {
    std::fprintf(stderr, "serve: %s\n", e.describe().c_str());
    return 5;  // bind/listen failure — distinct so scripts can tell
               // "port taken" from "query failed"
  }
  g_serve_instance = &server;
  std::signal(SIGTERM, handle_serve_signal);
  std::signal(SIGINT, handle_serve_signal);
  // The readiness line scripts (and the CI smoke lane) wait for.
  std::printf("listening on %s:%u\n", server.host().c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  server.wait();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_serve_instance = nullptr;
  server.stop();
  if (trace_out) {
    obs::write_chrome_trace(*trace_out);
    std::fprintf(stderr, "serve: chrome trace written to %s (%zu spans)\n",
                 trace_out->c_str(), obs::collect_spans().size());
  }
  std::fprintf(stderr, "serve: shut down cleanly\n");
  return 0;
}

int cmd_query(const Args& args) {
  const std::string host = args.get_or("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
  if (port == 0) {
    throw std::invalid_argument("query: --port is required");
  }
  const std::string op = args.get_or("op", "ping");
  serve::json::Object request;
  request.add("op", op);
  if (const auto trace = args.get("trace")) request.add("trace", *trace);
  const auto signals = args.get_list("signals");
  if (!signals.empty()) {
    request.raw("signals", serve::json::render_array(signals));
  }
  if (args.has("min-t-ns")) {
    request.add("min_t_ns", args.get_int("min-t-ns", 0));
  }
  if (args.has("max-t-ns")) {
    request.add("max_t_ns", args.get_int("max-t-ns", 0));
  }
  if (args.has("rate-threshold")) {
    request.add("rate_threshold_hz", args.get_double("rate-threshold", 5.0));
  }
  if (args.has("top-k")) request.add("top_k", args.get_int("top-k", 10));
  const auto out_path = args.get("out");
  const auto trace_out = args.get("trace-out");
  const int timeout_ms = static_cast<int>(args.get_int("timeout-ms", 0));
  warn_unused(args);

  // Mint a trace context and attach it to the request so the server's
  // spans and access record carry the same trace id as the client span
  // below; `ivt trace-merge` then lines both exports up by that id.
  const obs::TraceContext trace_ctx = obs::TraceContext::mint();
  serve::add_trace_context(request, trace_ctx);
  serve::Client client(host, port, timeout_ms);
  serve::Frame raw;
  {
    const obs::TraceContextScope trace_scope(trace_ctx);
    OBS_SPAN("serve.client.request");
    raw = client.request_raw(serve::Frame{request.str(), {}});
  }
  if (trace_out) {
    obs::write_chrome_trace(*trace_out);
    std::fprintf(stderr, "query: chrome trace written to %s\n",
                 trace_out->c_str());
  }
  serve::ClientResponse response;
  response.body = serve::json::parse(raw.json);
  std::printf("%s\n", raw.json.c_str());
  if (!response.ok()) {
    std::fprintf(stderr, "query: %s error%s: %s\n",
                 response.error_category().c_str(),
                 response.retryable() ? " (retryable)" : "",
                 response.error_message().c_str());
    // Mirror run_cli's category mapping for server-side failures.
    if (const std::optional<errors::Category> category =
            errors::parse_category(response.error_category())) {
      return category_exit_code(*category);
    }
    return 1;
  }
  if (out_path) {
    std::ofstream out(*out_path, std::ios::binary);
    if (!out) {
      IVT_THROW(errors::Category::Io, "cannot open for write: " + *out_path);
    }
    out.write(raw.payload.data(),
              static_cast<std::streamsize>(raw.payload.size()));
    std::fprintf(stderr, "payload written to %s (%zu bytes)\n",
                 out_path->c_str(), raw.payload.size());
  } else if (!raw.payload.empty()) {
    std::fwrite(raw.payload.data(), 1, raw.payload.size(), stdout);
  }
  return 0;
}

int cmd_trace_merge(const Args& args) {
  const std::string out_path = args.require("out");
  const std::vector<std::string>& inputs = args.positional();
  warn_unused(args);
  if (inputs.empty()) {
    throw std::invalid_argument(
        "trace-merge: at least one input trace path is required");
  }
  std::vector<serve::TraceInput> traces;
  traces.reserve(inputs.size());
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      IVT_THROW(errors::Category::Io, "trace-merge: cannot open: " + path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    traces.push_back({trace_name_from_path(path), text.str()});
  }
  const std::string merged = serve::merge_chrome_traces(traces);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    IVT_THROW(errors::Category::Io,
              "trace-merge: cannot open for write: " + out_path);
  }
  out << merged;
  std::fprintf(stderr, "merged %zu trace(s) into %s\n", traces.size(),
               out_path.c_str());
  return 0;
}

int cmd_coordinator(const Args& args) {
  const std::string trace_path = args.require("trace");
  const std::string catalog_path = args.require("catalog");
  const signaldb::Catalog catalog = signaldb::load_catalog(catalog_path);

  core::PipelineConfig config;
  config.signals = args.get_list("signals");
  config.classifier.rate_threshold_hz = args.get_double("rate-threshold", 5.0);
  if (args.has("no-reduction")) config.constraints.clear();
  config.exec_mode = core::ExecMode::Dist;
  config.on_error = error_policy_arg(args);
  config.scan_mode = colstore::parse_scan_mode(args.get_or("scan", "decoded"));
  const dataflow::EngineConfig engine_config = engine_config_from_args(args);

  dist::CoordinatorConfig ccfg;
  ccfg.host = args.get_or("host", "127.0.0.1");
  ccfg.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  ccfg.trace_path = trace_path;
  ccfg.catalog_path = catalog_path;
  ccfg.target_ranges = static_cast<std::uint64_t>(args.get_int("ranges", 0));
  ccfg.expected_workers =
      static_cast<std::size_t>(args.get_int("expect-workers", 4));
  ccfg.heartbeat_ms = static_cast<int>(args.get_int("heartbeat-ms", 50));
  ccfg.dead_after_missed =
      static_cast<int>(args.get_int("dead-after-missed", 3));
  ccfg.speculate_min_age =
      static_cast<std::uint64_t>(args.get_int("speculate-min-age", 2));
  const auto state_path = args.get("state");
  const auto krep_path = args.get("krep");
  const std::string report_kind = args.get_or("report", "text");
  if (report_kind != "json" && report_kind != "text") {
    throw std::invalid_argument("unknown report kind '" + report_kind + "'");
  }
  const ObsOutputs obs_outputs(args);
  warn_unused(args);

  if (!colstore::is_columnar_trace_file(trace_path)) {
    throw std::invalid_argument(
        "coordinator: --trace must be a columnar .ivc file ('" + trace_path +
        "' is not one; convert it with 'ivt pack' first)");
  }
  const colstore::ColumnarReader reader(trace_path);
  dataflow::Engine engine(engine_config);
  dist::Coordinator coordinator(catalog, config, reader, ccfg);
  try {
    coordinator.start();
  } catch (const errors::Error& e) {
    std::fprintf(stderr, "coordinator: %s\n", e.describe().c_str());
    return 5;  // bind/listen failure, same contract as `ivt serve`
  }
  g_coordinator_instance = &coordinator;
  std::signal(SIGTERM, handle_coordinator_signal);
  std::signal(SIGINT, handle_coordinator_signal);
  // The readiness line scripts (and the CI smoke lane) wait for.
  std::printf("coordinating on %s:%u ranges=%llu\n",
              coordinator.host().c_str(),
              static_cast<unsigned>(coordinator.port()),
              static_cast<unsigned long long>(coordinator.num_ranges()));
  std::fflush(stdout);

  core::PipelineResult result;
  try {
    result = coordinator.wait_result(engine);
  } catch (...) {
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    g_coordinator_instance = nullptr;
    coordinator.stop();
    throw;
  }
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_coordinator_instance = nullptr;

  if (state_path) write_table_arg(result.state, *state_path);
  if (krep_path) write_table_arg(result.krep, *krep_path);
  if (report_kind == "json") {
    std::printf("%s", core::report_to_json(result).c_str());
  } else {
    std::printf("%s", core::report_to_text(result).c_str());
  }
  // Keep answering dist.next with done:true for a couple of heartbeats so
  // idle workers polling at heartbeat cadence observe completion instead
  // of a refused connection (they would still terminate — bounded by
  // their unreachable deadline — but this way they exit cleanly).
  std::this_thread::sleep_for(
      std::chrono::milliseconds(2 * ccfg.heartbeat_ms));
  coordinator.stop();
  obs_outputs.write();
  return result.failures.empty() ? 0 : 4;
}

int cmd_worker(const Args& args) {
  dist::WorkerOptions options;
  options.host = args.get_or("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  if (options.port == 0) {
    throw std::invalid_argument("worker: --port is required");
  }
  options.name = args.require("name");
  options.timeout_ms = static_cast<int>(args.get_int("timeout-ms", 5000));
  options.register_timeout_ms =
      static_cast<int>(args.get_int("register-timeout-ms", 10000));
  options.sim.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  options.sim.failure_rate = args.get_double("sim-failure-rate", 0.0);
  options.sim.latency_ms =
      static_cast<int>(args.get_int("sim-latency-ms", 0));
  options.sim.slow_factor = args.get_double("sim-slow-factor", 1.0);
  warn_unused(args);

  const dist::WorkerOutcome outcome = dist::run_worker(options);
  if (outcome.completed) {
    std::fprintf(stderr,
                 "worker %s: job done (%llu ranges, %llu register "
                 "attempts, %llu result retries)\n",
                 options.name.c_str(),
                 static_cast<unsigned long long>(outcome.ranges_done),
                 static_cast<unsigned long long>(outcome.register_attempts),
                 static_cast<unsigned long long>(outcome.result_retries));
    return 0;
  }
  // A simulated death is a deliberate, reported crash — nonzero so a
  // shell respawn loop can tell it from completion.
  std::fprintf(stderr, "worker %s: simulated death after %llu ranges\n",
               options.name.c_str(),
               static_cast<unsigned long long>(outcome.ranges_done));
  return 1;
}

namespace {

/// One rendered frame of `ivt top`. Missing fields (older daemon, no
/// traffic yet) render as zeros rather than erroring — the dashboard
/// keeps polling.
void render_top_frame(const serve::json::Value& body, const std::string& host,
                      std::uint16_t port) {
  const auto ratio = [](std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(hits) /
                            static_cast<double>(total);
  };
  std::uint64_t window_s = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  std::uint64_t window_count = 0;
  if (const serve::json::Value* lat = body.find("latency_windowed")) {
    window_s = static_cast<std::uint64_t>(lat->get_int("window_seconds", 0));
    p50 = lat->get_double("p50_ms", 0.0);
    p99 = lat->get_double("p99_ms", 0.0);
    window_count = static_cast<std::uint64_t>(lat->get_int("count", 0));
  }
  std::printf("ivt top — %s:%u (stats op", host.c_str(),
              static_cast<unsigned>(port));
  if (window_s > 0) std::printf(", %llus window",
                                static_cast<unsigned long long>(window_s));
  std::printf(")\n\n");
  std::printf("  qps        %10.1f    in-flight %8lld    window reqs %8llu\n",
              body.get_double("qps", 0.0),
              static_cast<long long>(body.get_int("in_flight", 0)),
              static_cast<unsigned long long>(
                  body.get_int("requests_window", 0)));
  std::printf("  requests   %10llu    failed    %8llu    overloaded  %8llu\n",
              static_cast<unsigned long long>(
                  body.get_int("requests_total", 0)),
              static_cast<unsigned long long>(
                  body.get_int("requests_failed", 0)),
              static_cast<unsigned long long>(
                  body.get_int("requests_overloaded", 0)));
  std::printf("  latency    p50 %9.2f ms    p99 %9.2f ms    (%llu in window)\n",
              p50, p99, static_cast<unsigned long long>(window_count));
  if (const serve::json::Value* cache = body.find("chunk_cache")) {
    const auto hits = static_cast<std::uint64_t>(cache->get_int("hits", 0));
    const auto misses =
        static_cast<std::uint64_t>(cache->get_int("misses", 0));
    std::printf("  chunk $    %10llu hit  %8llu miss    %6.1f%% hit\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                ratio(hits, misses));
  }
  if (const serve::json::Value* cache = body.find("state_cache")) {
    const auto hits = static_cast<std::uint64_t>(cache->get_int("hits", 0));
    const auto misses =
        static_cast<std::uint64_t>(cache->get_int("misses", 0));
    std::printf("  state $    %10llu hit  %8llu miss    %6.1f%% hit\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                ratio(hits, misses));
  }
  std::printf("  obs        spans dropped %6llu    events dropped %6llu\n",
              static_cast<unsigned long long>(
                  body.get_int("spans_dropped", 0)),
              static_cast<unsigned long long>(
                  body.get_int("events_dropped", 0)));
}

}  // namespace

int cmd_top(const Args& args) {
  const std::string host = args.get_or("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
  if (port == 0) {
    throw std::invalid_argument("top: --port is required");
  }
  const double interval_s = args.get_double("interval", 2.0);
  const auto iterations = args.get_int("iterations", 0);  // 0 = forever
  const bool no_clear = args.has("no-clear");
  warn_unused(args);

  serve::json::Object request;
  request.add("op", "stats");
  const std::string request_json = request.str();

  for (std::int64_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          interval_s > 0.0 ? interval_s : 0.0));
    }
    // One connection per poll: a daemon restart between frames only costs
    // one failed poll's error message, not a wedged dashboard.
    serve::Client client(host, port);
    const serve::ClientResponse response = client.request(request_json);
    if (!response.ok()) {
      std::fprintf(stderr, "top: %s error: %s\n",
                   response.error_category().c_str(),
                   response.error_message().c_str());
      return 1;
    }
    if (!no_clear) std::printf("\033[2J\033[H");
    render_top_frame(response.body, host, port);
    std::fflush(stdout);
  }
  return 0;
}

int run_cli(int argc, const char* const* argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  try {
    // Arm failpoints before any I/O so injected faults cover the whole
    // command; a malformed recipe aborts (a typo'd IVT_FAULTS must not
    // silently run without faults).
    faultfx::arm_from_env();
    if (command == "simulate") return cmd_simulate(args);
    if (command == "inspect") return cmd_inspect(args);
    if (command == "catalog") return cmd_catalog(args);
    if (command == "pack") return cmd_pack(args);
    if (command == "extract") return cmd_extract(args);
    if (command == "run") return cmd_run(args);
    if (command == "mine") return cmd_mine(args);
    if (command == "export-asc") return cmd_export_asc(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "query") return cmd_query(args);
    if (command == "trace-merge") return cmd_trace_merge(args);
    if (command == "top") return cmd_top(args);
    if (command == "coordinator") return cmd_coordinator(args);
    if (command == "worker") return cmd_worker(args);
    if (command == "help" || command == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    std::fprintf(stderr, "unknown command '%s'\n\n%s", command.c_str(),
                 kUsage);
    return 2;
  } catch (const errors::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.describe().c_str());
    return category_exit_code(e.category());
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "usage error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace ivt::cli
