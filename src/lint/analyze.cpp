#include "lint/analyze.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "lint/tokenizer.hpp"

namespace ivt::lint {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

/// Identifiers that can precede a '(' without being a callable name.
bool is_keyword_head(const std::string& t) {
  static const char* kWords[] = {
      "if",       "for",      "while",    "switch",     "catch",
      "return",   "sizeof",   "alignof",  "decltype",   "noexcept",
      "alignas",  "typeid",   "operator", "static_assert",
      "assert",   "defined",  "_Pragma",  "va_arg",
  };
  for (const char* w : kWords) {
    if (t == w) return true;
  }
  return false;
}

/// Identifiers after which an `Ident (` is still a call, not a
/// declaration (`new Foo(x)`, `return f(x)`).
bool is_expr_context_ident(const std::string& t) {
  static const char* kWords[] = {"new",  "return", "else",      "do",
                                 "case", "throw",  "co_return", "co_yield",
                                 "co_await"};
  for (const char* w : kWords) {
    if (t == w) return true;
  }
  return false;
}

bool is_type_noise_ident(const std::string& t) {
  static const char* kWords[] = {"const",  "constexpr", "static", "mutable",
                                 "inline", "volatile",  "auto",   "typename",
                                 "struct", "class",     "using",  "register",
                                 "thread_local"};
  for (const char* w : kWords) {
    if (t == w) return true;
  }
  return false;
}

// ---- per-file extraction ------------------------------------------------

/// A function (or lambda) body [open, close] with its resolution context.
struct FunctionDef {
  std::string cls;    ///< enclosing/qualifying class name; "" = free
  std::string name;   ///< "~Foo" for destructors
  std::size_t header = 0;  ///< token index of the name
  std::size_t open = 0;    ///< '{' token index
  std::size_t close = 0;   ///< matching '}'
};

/// One support::Mutex declaration (member, namespace-scope, or local).
struct MutexDecl {
  std::string identity;  ///< module_Class_member / module_stem_name
  std::string display;   ///< module::Class::member form
  std::string var;       ///< declared name
  std::string cls;       ///< owning class; "" for non-members
  std::string file;
  std::size_t line = 0;
  std::string bound;     ///< LockRank constant it binds, "" if none
};

struct FileUnit {
  const FileContent* file = nullptr;
  std::string module;
  std::string stem;
  std::vector<Token> tokens;
  std::vector<TokenClassSpan> spans;
  std::vector<FunctionDef> funcs;
  std::map<std::string, std::string> local_mutexes;  ///< var -> identity
};

/// Collects support::Mutex declarations in a unit. A declaration is
/// `[support::] Mutex <name>` followed by ';' or a paren/brace
/// initializer; the initializer is searched for a bound LockRank
/// constant.
void collect_mutex_decls(const FileUnit& unit, std::vector<MutexDecl>* out,
                         std::map<std::string, std::string>* locals) {
  const std::vector<Token>& tokens = unit.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!is_ident(tokens[i], "Mutex")) continue;
    if (i > 0 && is_punct(tokens[i - 1], "::") &&
        !(i > 1 && is_ident(tokens[i - 2], "support"))) {
      continue;  // someone else's Mutex type
    }
    if (i > 0 && (is_ident(tokens[i - 1], "class") ||
                  is_ident(tokens[i - 1], "struct") ||
                  is_ident(tokens[i - 1], "friend") ||
                  is_punct(tokens[i - 1], "~"))) {
      continue;
    }
    if (i + 1 >= tokens.size() ||
        tokens[i + 1].kind != Token::Kind::Ident) {
      continue;  // Mutex& param, Mutex( ctor, etc.
    }
    const std::string var = tokens[i + 1].text;
    std::size_t after = i + 2;
    std::string bound;
    if (after < tokens.size() && (is_punct(tokens[after], "{") ||
                                  is_punct(tokens[after], "("))) {
      const std::size_t close = is_punct(tokens[after], "{")
                                    ? match_brace(tokens, after)
                                    : match_paren(tokens, after);
      for (std::size_t k = after + 1; k + 2 < close + 1 && k + 2 <= close;
           ++k) {
        if (is_ident(tokens[k], "LockRank") && is_punct(tokens[k + 1], "::") &&
            tokens[k + 2].kind == Token::Kind::Ident) {
          bound = tokens[k + 2].text;
          break;
        }
      }
      after = close + 1;
    }
    if (after >= tokens.size() || !is_punct(tokens[after], ";")) {
      continue;  // not a plain declaration
    }
    MutexDecl decl;
    decl.var = var;
    decl.file = unit.file->path;
    decl.line = tokens[i].line;
    decl.bound = bound;
    const TokenClassSpan* span = innermost_class(unit.spans, i);
    if (span != nullptr && !span->name.empty()) {
      decl.cls = span->name;
      decl.identity = unit.module + "_" + span->name + "_" + var;
      decl.display = unit.module + "::" + span->name + "::" + var;
    } else {
      decl.identity = unit.module + "_" + unit.stem + "_" + var;
      decl.display = unit.module + "::" + unit.stem + "::" + var;
      (*locals)[var] = decl.identity;
    }
    out->push_back(std::move(decl));
  }
}

/// Member name -> type identifiers, per class, for receiver resolution
/// (`shards_[i].mutex` needs the element type of `shards_`).
using MemberTypes = std::map<std::string, std::map<std::string,
                                                   std::vector<std::string>>>;

void collect_member_types(const FileUnit& unit, MemberTypes* out) {
  const std::vector<Token>& tokens = unit.tokens;
  for (const TokenClassSpan& span : unit.spans) {
    if (span.name.empty()) continue;
    std::vector<std::size_t> stmt;  // token indices of the current stmt
    for (std::size_t j = span.open + 1; j < span.close; ++j) {
      const Token& t = tokens[j];
      if (is_punct(t, "{")) {
        // Brace after an identifier is a default member initializer;
        // anything else opens a nested body (method, nested record) —
        // skip it, its members belong to its own span.
        const bool init = j > span.open + 1 &&
                          tokens[j - 1].kind == Token::Kind::Ident;
        j = match_brace(tokens, j);
        if (!init) stmt.clear();
        continue;
      }
      if (is_punct(t, ";")) {
        // Drop a trailing `= init`, then trailing attribute-macro groups
        // `IDENT ( ... )`; the member name is the last identifier left.
        std::vector<std::size_t> s = stmt;
        stmt.clear();
        for (std::size_t k = 0; k < s.size(); ++k) {
          if (is_punct(tokens[s[k]], "=")) {
            s.resize(k);
            break;
          }
        }
        while (s.size() >= 3 && is_punct(tokens[s.back()], ")")) {
          std::size_t k = s.size();
          int depth = 0;
          while (k-- > 0) {
            if (is_punct(tokens[s[k]], ")")) ++depth;
            if (is_punct(tokens[s[k]], "(") && --depth == 0) break;
          }
          if (k == 0 || tokens[s[k - 1]].kind != Token::Kind::Ident) break;
          s.resize(k - 1);
        }
        if (s.size() < 2) continue;
        const Token& name = tokens[s.back()];
        if (name.kind != Token::Kind::Ident) continue;
        std::vector<std::string> types;
        for (std::size_t k = 0; k + 1 < s.size(); ++k) {
          const Token& ty = tokens[s[k]];
          if (ty.kind == Token::Kind::Ident && !is_type_noise_ident(ty.text)) {
            types.push_back(ty.text);
          }
        }
        if (!types.empty()) (*out)[span.name][name.text] = std::move(types);
        continue;
      }
      if (is_punct(t, ":") && stmt.size() == 1 &&
          (is_ident(tokens[stmt[0]], "public") ||
           is_ident(tokens[stmt[0]], "private") ||
           is_ident(tokens[stmt[0]], "protected"))) {
        stmt.clear();
        continue;
      }
      stmt.push_back(j);
    }
  }
}

/// Finds function definitions outside other function bodies. Lambdas are
/// discovered later, during body parsing.
std::vector<FunctionDef> extract_functions(const FileUnit& unit) {
  const std::vector<Token>& tokens = unit.tokens;
  std::vector<FunctionDef> funcs;
  std::size_t i = 0;
  while (i < tokens.size()) {
    const Token& t = tokens[i];
    if (t.kind != Token::Kind::Ident || is_keyword_head(t.text) ||
        i + 1 >= tokens.size() || !is_punct(tokens[i + 1], "(")) {
      ++i;
      continue;
    }
    if (i > 0 && (is_punct(tokens[i - 1], ".") ||
                  is_punct(tokens[i - 1], "->") ||
                  is_punct(tokens[i - 1], "#"))) {
      ++i;  // member call in an initializer / preprocessor directive
      continue;
    }
    const std::size_t params_close = match_paren(tokens, i + 1);
    if (params_close >= tokens.size()) {
      ++i;
      continue;
    }
    // Qualifier run: const/noexcept/override/attribute-macros, possibly
    // with balanced parens; `->` starts a trailing return type.
    std::size_t j = params_close + 1;
    bool giveup = false;
    while (j < tokens.size()) {
      const Token& q = tokens[j];
      if (q.kind == Token::Kind::Ident) {
        if (j + 1 < tokens.size() && is_punct(tokens[j + 1], "(")) {
          j = match_paren(tokens, j + 1) + 1;
        } else {
          ++j;
        }
        continue;
      }
      if (is_punct(q, "&") || is_punct(q, "&&")) {
        ++j;
        continue;
      }
      if (is_punct(q, "->")) {
        // Trailing return type: scan to '{', ';' or '=' at paren depth 0.
        int depth = 0;
        ++j;
        while (j < tokens.size()) {
          if (is_punct(tokens[j], "(") || is_punct(tokens[j], "[")) ++depth;
          if (is_punct(tokens[j], ")") || is_punct(tokens[j], "]")) --depth;
          if (depth == 0 && (is_punct(tokens[j], "{") ||
                             is_punct(tokens[j], ";") ||
                             is_punct(tokens[j], "="))) {
            break;
          }
          ++j;
        }
        continue;
      }
      break;
    }
    if (j < tokens.size() && is_punct(tokens[j], ":")) {
      // Constructor member-init list: a '{' at depth 0 whose previous
      // token is an identifier or '>' is an init-brace; any other '{'
      // is the body.
      ++j;
      while (j < tokens.size()) {
        if (is_punct(tokens[j], "(")) {
          j = match_paren(tokens, j) + 1;
          continue;
        }
        if (is_punct(tokens[j], "{")) {
          const Token& prev = tokens[j - 1];
          if (prev.kind == Token::Kind::Ident || is_punct(prev, ">")) {
            j = match_brace(tokens, j) + 1;
            continue;
          }
          break;  // body
        }
        if (is_punct(tokens[j], ";")) {
          giveup = true;
          break;
        }
        ++j;
      }
    }
    if (giveup || j >= tokens.size() || !is_punct(tokens[j], "{")) {
      ++i;
      continue;
    }
    FunctionDef def;
    def.name = t.text;
    def.header = i;
    def.open = j;
    def.close = match_brace(tokens, j);
    std::size_t base = i;
    if (i > 0 && is_punct(tokens[i - 1], "~")) {
      def.name = "~" + def.name;
      base = i - 1;
    }
    if (base > 1 && is_punct(tokens[base - 1], "::") &&
        tokens[base - 2].kind == Token::Kind::Ident) {
      def.cls = tokens[base - 2].text;  // out-of-line member
    } else {
      const TokenClassSpan* span = innermost_class(unit.spans, i);
      if (span != nullptr) def.cls = span->name;
    }
    const std::size_t resume = def.close + 1;
    funcs.push_back(std::move(def));
    i = resume;
  }
  return funcs;
}

}  // namespace

std::string module_of(const std::string& path) {
  // Last ".../src/<module>/..." component wins, so fixture trees under
  // tests/lint/fixtures/<tree>/src/<module>/ resolve like the real tree.
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    if (slash == std::string::npos) {
      parts.push_back(path.substr(start));
      break;
    }
    parts.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  for (std::size_t k = parts.size(); k-- > 0;) {
    if (parts[k] == "src") {
      // parts[k + 1] is the module unless the file sits directly in src/.
      return k + 2 < parts.size() ? parts[k + 1] : "";
    }
  }
  return parts.size() >= 2 ? parts[parts.size() - 2] : "";
}

namespace {

FileUnit build_unit(const FileContent& file) {
  FileUnit unit;
  unit.file = &file;
  unit.module = module_of(file.path);
  unit.stem = stem_of(file.path);
  unit.tokens = tokenize(file.content);
  unit.spans = token_class_spans(unit.tokens);
  unit.funcs = extract_functions(unit);
  return unit;
}

std::vector<FileUnit> build_units(const std::vector<FileContent>& files) {
  std::vector<FileUnit> units;
  units.reserve(files.size());
  for (const FileContent& f : files) units.push_back(build_unit(f));
  return units;
}

}  // namespace

// ---- module layering ----------------------------------------------------

LayersConfig parse_layers(const std::string& content,
                          std::vector<std::string>* errors) {
  LayersConfig config;
  std::istringstream in(content);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;
    if (directive != "layer") {
      if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineno) +
                          ": unknown directive '" + directive + "'");
      }
      continue;
    }
    std::vector<std::string> modules;
    std::string module;
    while (fields >> module) {
      if (config.level.count(module) != 0) {
        if (errors != nullptr) {
          errors->push_back("line " + std::to_string(lineno) + ": module '" +
                            module + "' declared in more than one layer");
        }
        continue;
      }
      config.level[module] = config.layers.size();
      modules.push_back(std::move(module));
    }
    if (modules.empty()) {
      if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineno) +
                          ": layer needs at least one <module>");
      }
      continue;
    }
    config.layers.push_back(std::move(modules));
  }
  return config;
}

IncludeGraph build_include_graph(const std::vector<FileContent>& files) {
  IncludeGraph graph;
  std::map<std::pair<std::string, std::string>, IncludeEdge> edges;
  for (const FileContent& f : files) {
    const std::string from = module_of(f.path);
    if (from.empty()) continue;
    graph.modules.insert(from);
    for (const Token& t : tokenize(f.content)) {
      if (t.kind != Token::Kind::IncludeQuoted) continue;
      const std::size_t slash = t.text.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string to = t.text.substr(0, slash);
      if (to == from) continue;
      IncludeEdge& e = edges[{from, to}];
      if (e.count++ == 0) {
        e.from_module = from;
        e.to_module = to;
        e.via_file = f.path;
        e.via_line = t.line;
      }
    }
  }
  for (auto& [key, e] : edges) {
    graph.modules.insert(e.to_module);
    graph.edges.push_back(std::move(e));
  }
  return graph;
}

std::vector<Finding> check_layering(const IncludeGraph& graph,
                                    const LayersConfig& layers) {
  std::vector<Finding> findings;
  std::set<std::string> undeclared;
  for (const std::string& m : graph.modules) {
    if (layers.level.count(m) == 0) undeclared.insert(m);
  }
  for (const std::string& m : undeclared) {
    // Attribute to a witness edge touching the module when one exists.
    std::string file;
    std::size_t line = 0;
    for (const IncludeEdge& e : graph.edges) {
      if (e.from_module == m || e.to_module == m) {
        file = e.via_file;
        line = e.via_line;
        break;
      }
    }
    findings.push_back({"layering", file, line,
                        "module '" + m +
                            "' is not declared in the layer config — add it "
                            "to a `layer` line in tools/ivt-layers.conf"});
  }
  for (const IncludeEdge& e : graph.edges) {
    const auto from = layers.level.find(e.from_module);
    const auto to = layers.level.find(e.to_module);
    if (from == layers.level.end() || to == layers.level.end()) continue;
    if (to->second >= from->second) {
      const bool back = to->second > from->second;
      findings.push_back(
          {"layering", e.via_file, e.via_line,
           std::string(back ? "back-edge" : "same-layer edge") + ": module '" +
               e.from_module + "' (layer " + std::to_string(from->second) +
               ") includes '" + e.to_module + "' (layer " +
               std::to_string(to->second) + ") " + std::to_string(e.count) +
               " time(s) — modules may only include strictly lower layers"});
    }
  }
  return findings;
}

std::string include_graph_dot(const IncludeGraph& graph,
                              const LayersConfig& layers) {
  std::ostringstream out;
  out << "digraph includes {\n  rankdir=BT;\n  node [shape=box];\n";
  for (std::size_t l = 0; l < layers.layers.size(); ++l) {
    out << "  subgraph cluster_layer" << l << " {\n    label=\"layer " << l
        << "\";\n    rank=same;\n";
    for (const std::string& m : layers.layers[l]) {
      if (graph.modules.count(m) != 0) out << "    \"" << m << "\";\n";
    }
    out << "  }\n";
  }
  for (const std::string& m : graph.modules) {
    if (layers.level.count(m) == 0) {
      out << "  \"" << m << "\" [color=red];\n";
    }
  }
  for (const IncludeEdge& e : graph.edges) {
    out << "  \"" << e.from_module << "\" -> \"" << e.to_module
        << "\" [label=\"" << e.count << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

// ---- error-taxonomy exhaustiveness --------------------------------------

std::vector<Finding> check_error_taxonomy(const std::vector<FileContent>& files,
                                          const Config& config) {
  std::vector<Finding> findings;
  if (config.error_tables.empty()) return findings;
  const std::vector<FileUnit> units = build_units(files);

  // Categories actually thrown: the first argument of IVT_THROW /
  // IVT_THROW_FATAL, and any Category mentioned between a `throw` and
  // the statement end (direct errors::Error construction).
  std::map<std::string, std::string> used;  // category -> witness site
  for (const FileUnit& unit : units) {
    const std::vector<Token>& tokens = unit.tokens;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      std::size_t begin = 0;
      std::size_t end = 0;
      if ((is_ident(tokens[i], "IVT_THROW") ||
           is_ident(tokens[i], "IVT_THROW_FATAL")) &&
          is_punct(tokens[i + 1], "(")) {
        begin = i + 2;
        end = match_paren(tokens, i + 1);
        // First argument only: stop at the first top-level comma.
        int depth = 0;
        for (std::size_t k = begin; k < end; ++k) {
          if (is_punct(tokens[k], "(")) ++depth;
          if (is_punct(tokens[k], ")")) --depth;
          if (depth == 0 && is_punct(tokens[k], ",")) {
            end = k;
            break;
          }
        }
      } else if (is_ident(tokens[i], "throw")) {
        begin = i + 1;
        end = begin;
        while (end < tokens.size() && !is_punct(tokens[end], ";")) ++end;
      } else {
        continue;
      }
      for (std::size_t k = begin; k + 2 < end; ++k) {
        if (is_ident(tokens[k], "Category") && is_punct(tokens[k + 1], "::") &&
            tokens[k + 2].kind == Token::Kind::Ident) {
          used.emplace(tokens[k + 2].text,
                       unit.file->path + ":" +
                           std::to_string(tokens[k].line));
        }
      }
      i = end;
    }
  }

  for (const std::string& table : config.error_tables) {
    bool found = false;
    for (const FileUnit& unit : units) {
      for (const FunctionDef& def : unit.funcs) {
        if (def.name != table) continue;
        found = true;
        std::set<std::string> present;
        for (std::size_t k = def.open; k + 2 < def.close; ++k) {
          if (is_ident(unit.tokens[k], "Category") &&
              is_punct(unit.tokens[k + 1], "::") &&
              unit.tokens[k + 2].kind == Token::Kind::Ident) {
            present.insert(unit.tokens[k + 2].text);
          }
        }
        for (const auto& [category, site] : used) {
          if (present.count(category) == 0) {
            findings.push_back(
                {"error-taxonomy", unit.file->path,
                 unit.tokens[def.header].line,
                 "error table '" + table + "' does not map errors::Category::" +
                     category + " (thrown at " + site +
                     ") — every thrown category needs an explicit mapping"});
          }
        }
      }
    }
    if (!found) {
      findings.push_back(
          {"error-taxonomy", "", 0,
           "error-table function '" + table +
               "' was not found in the scanned files — fix the `error-table` "
               "directive or restore the anchor function"});
    }
  }
  return findings;
}

// ---- lock-order analysis ------------------------------------------------

namespace {

/// Global resolution tables shared by every function body parse.
struct LockTables {
  MemberTypes member_types;  ///< class -> member -> type idents
  /// class -> mutex member -> identities (same class name can exist in
  /// two modules; resolution requires a unique identity).
  std::map<std::string, std::map<std::string, std::vector<std::string>>>
      member_mutex;
  /// mutex member name -> identities across all classes (global fallback).
  std::map<std::string, std::vector<std::string>> any_mutex_member;
  /// file path -> function/namespace-local mutex var -> identity.
  std::map<std::string, std::map<std::string, std::string>> file_locals;
  /// function name -> classes defining a member function of that name.
  std::map<std::string, std::set<std::string>> member_funcs;
  std::set<std::string> known_classes;
  const std::map<std::string, std::vector<std::string>>* macro_calls = nullptr;
};

struct CallSite {
  std::string name;
  std::string hint;  ///< "" free/self, "*" any member, else a class name
  std::string caller_cls;
  std::vector<std::string> held;
  std::string file;
  std::size_t line = 0;
};

struct FuncInfo {
  std::set<std::string> direct;  ///< identities acquired in this body
  std::vector<CallSite> calls;
};

using FuncKey = std::pair<std::string, std::string>;  // (class, name)

struct RawEdge {
  std::string file;
  std::size_t line = 0;
  std::string context;  ///< function (and callee) the edge was seen in
};

struct LockBuild {
  std::map<FuncKey, FuncInfo> funcs;
  std::map<std::pair<std::string, std::string>, RawEdge> edges;
  std::vector<Finding> findings;
  std::size_t lambda_count = 0;
};

using Env = std::map<std::string, std::vector<std::string>>;

/// Resolves a type-identifier list to a unique known class, preferring
/// (when `method` is non-empty) classes that define that member function.
std::string unique_class_of(const std::vector<std::string>& idents,
                            const std::string& method,
                            const LockTables& tables) {
  std::vector<std::string> candidates;
  for (const std::string& t : idents) {
    if (tables.known_classes.count(t) != 0) candidates.push_back(t);
  }
  if (candidates.size() > 1 && !method.empty()) {
    const auto it = tables.member_funcs.find(method);
    if (it != tables.member_funcs.end()) {
      std::vector<std::string> narrowed;
      for (const std::string& c : candidates) {
        if (it->second.count(c) != 0) narrowed.push_back(c);
      }
      if (!narrowed.empty()) candidates = std::move(narrowed);
    }
  }
  return candidates.size() == 1 ? candidates[0] : std::string();
}

/// Resolves the mutex expression tokens [begin, end) to a lock identity.
/// Returns "" when the identity cannot be pinned down.
std::string resolve_mutex_expr(const std::vector<Token>& tokens,
                               std::size_t begin, std::size_t end,
                               const FileUnit& unit, const std::string& cls,
                               const Env& env, const LockTables& tables) {
  // Parse an `a.b[i]->c` style chain.
  std::vector<std::string> chain;
  std::size_t i = begin;
  while (i < end && (is_punct(tokens[i], "*") || is_punct(tokens[i], "&"))) {
    ++i;
  }
  while (i < end) {
    const Token& t = tokens[i];
    if (t.kind == Token::Kind::Ident) {
      chain.push_back(t.text);
      ++i;
      if (i < end && is_punct(tokens[i], "[")) {
        int depth = 0;
        while (i < end) {
          if (is_punct(tokens[i], "[")) ++depth;
          if (is_punct(tokens[i], "]") && --depth == 0) break;
          ++i;
        }
        ++i;
      }
      if (i < end && (is_punct(tokens[i], ".") || is_punct(tokens[i], "->") ||
                      is_punct(tokens[i], "::"))) {
        ++i;
        continue;
      }
      break;
    }
    return "";  // parenthesized / computed expression
  }
  if (i != end || chain.empty()) return "";

  const auto unique_identity =
      [](const std::vector<std::string>& ids) -> std::string {
    return ids.size() == 1 ? ids[0] : std::string();
  };
  const auto class_member = [&](const std::string& c,
                                const std::string& m) -> std::string {
    const auto ci = tables.member_mutex.find(c);
    if (ci == tables.member_mutex.end()) return "";
    const auto mi = ci->second.find(m);
    return mi == ci->second.end() ? "" : unique_identity(mi->second);
  };

  const std::string member = chain.back();
  if (chain.size() == 1) {
    const auto fl = tables.file_locals.find(unit.file->path);
    if (fl != tables.file_locals.end()) {
      const auto li = fl->second.find(member);
      if (li != fl->second.end()) return li->second;
    }
    if (!cls.empty()) {
      const std::string id = class_member(cls, member);
      if (!id.empty()) return id;
    }
  } else {
    // Resolve the owner of `member` along the chain.
    std::string owner;
    const std::string& base = chain.front();
    if (base == "this") {
      owner = cls;
    } else {
      const auto ei = env.find(base);
      if (ei != env.end()) {
        owner = unique_class_of(ei->second, "", tables);
      }
      if (owner.empty() && !cls.empty()) {
        const auto ci = tables.member_types.find(cls);
        if (ci != tables.member_types.end()) {
          const auto mi = ci->second.find(base);
          if (mi != ci->second.end()) {
            owner = unique_class_of(mi->second, "", tables);
          }
        }
      }
    }
    for (std::size_t k = 1; !owner.empty() && k + 1 < chain.size(); ++k) {
      const auto ci = tables.member_types.find(owner);
      owner.clear();
      if (ci != tables.member_types.end()) {
        const auto mi = ci->second.find(chain[k]);
        if (mi != ci->second.end()) {
          owner = unique_class_of(mi->second, "", tables);
        }
      }
    }
    if (!owner.empty()) {
      const std::string id = class_member(owner, member);
      if (!id.empty()) return id;
    }
  }
  // Global fallback: a mutex member with this name in exactly one class.
  const auto gi = tables.any_mutex_member.find(member);
  if (gi != tables.any_mutex_member.end()) {
    return unique_identity(gi->second);
  }
  return "";
}

/// Receiver class hint for `<chain> . name (` at token index `at` (the
/// callee name). "*" = any class's member of that name.
std::string member_call_hint(const std::vector<Token>& tokens, std::size_t at,
                             const std::string& cls, const Env& env,
                             const LockTables& tables,
                             const std::string& name) {
  // Walk the receiver chain backwards from the '.'/'->' at at-1.
  std::vector<std::string> chain;  // reversed: member...base
  std::size_t k = at - 1;          // the '.'/'->'
  while (k > 0) {
    const Token& p = tokens[k - 1];
    if (is_punct(p, "]")) {
      int depth = 0;
      while (k-- > 0) {
        if (is_punct(tokens[k], "]")) ++depth;
        if (is_punct(tokens[k], "[") && --depth == 0) break;
      }
      if (k == 0) return "*";
      continue;
    }
    if (p.kind == Token::Kind::Ident) {
      chain.push_back(p.text);
      --k;
      if (k > 0 && (is_punct(tokens[k - 1], ".") ||
                    is_punct(tokens[k - 1], "->") ||
                    is_punct(tokens[k - 1], "::"))) {
        --k;
        continue;
      }
      break;
    }
    return "*";  // method on a call result or other expression
  }
  if (chain.empty()) return "*";
  std::reverse(chain.begin(), chain.end());
  std::string owner;
  if (chain.front() == "this") {
    owner = cls;
  } else {
    const auto ei = env.find(chain.front());
    if (ei != env.end()) {
      owner = unique_class_of(ei->second, chain.size() == 1 ? name : "",
                              tables);
    }
    if (owner.empty() && !cls.empty()) {
      const auto ci = tables.member_types.find(cls);
      if (ci != tables.member_types.end()) {
        const auto mi = ci->second.find(chain.front());
        if (mi != ci->second.end()) {
          owner = unique_class_of(mi->second,
                                  chain.size() == 1 ? name : "", tables);
        }
      }
    }
  }
  for (std::size_t m = 1; !owner.empty() && m < chain.size(); ++m) {
    const auto ci = tables.member_types.find(owner);
    owner.clear();
    if (ci != tables.member_types.end()) {
      const auto mi = ci->second.find(chain[m]);
      if (mi != ci->second.end()) {
        owner = unique_class_of(mi->second, m + 1 == chain.size() ? name : "",
                                tables);
      }
    }
  }
  return owner.empty() ? "*" : owner;
}

struct Window {
  std::string var;
  std::string identity;  ///< "" when the acquisition was unresolvable
  int depth = 0;
  bool active = false;
};

void parse_body(const FileUnit& unit, std::size_t open, std::size_t close,
                const std::string& cls, const std::string& display,
                const FuncKey& key, Env env, LockTables& tables,
                LockBuild& build);

/// Walks one body, tracking MutexLock windows and recording acquisitions
/// and calls into build.funcs[key].
void walk_body(const FileUnit& unit, std::size_t open, std::size_t close,
               const std::string& cls, const std::string& display,
               const FuncKey& key, Env& env, LockTables& tables,
               LockBuild& build) {
  const std::vector<Token>& tokens = unit.tokens;
  FuncInfo& info = build.funcs[key];
  std::vector<Window> windows;
  int depth = 0;
  std::size_t stmt_start = open + 1;

  const auto held = [&]() {
    std::vector<std::string> ids;
    for (const Window& w : windows) {
      if (w.active && !w.identity.empty()) ids.push_back(w.identity);
    }
    return ids;
  };
  const auto add_edges_for = [&](const std::string& id, std::size_t line) {
    info.direct.insert(id);
    for (const std::string& h : held()) {
      if (h == id) continue;  // the window being re-locked
      const auto edge_key = std::make_pair(h, id);
      if (build.edges.count(edge_key) == 0) {
        build.edges[edge_key] = {unit.file->path, line, display};
      }
    }
  };

  std::size_t i = open;
  while (i <= close && i < tokens.size()) {
    const Token& t = tokens[i];
    if (is_punct(t, "{")) {
      ++depth;
      stmt_start = i + 1;
      ++i;
      continue;
    }
    if (is_punct(t, "}")) {
      --depth;
      for (Window& w : windows) {
        if (w.depth > depth) w.active = false;
      }
      windows.erase(std::remove_if(windows.begin(), windows.end(),
                                   [&](const Window& w) {
                                     return w.depth > depth;
                                   }),
                    windows.end());
      stmt_start = i + 1;
      ++i;
      continue;
    }

    // Lambda: its body runs later (thread entry, deferred callback), so
    // it is analyzed as a separate anonymous function with an empty
    // held-set — lexical nesting must not order its locks under ours.
    if (is_punct(t, "[") &&
        (i == open + 1 ||
         !(tokens[i - 1].kind == Token::Kind::Ident ||
           tokens[i - 1].kind == Token::Kind::Str ||
           tokens[i - 1].kind == Token::Kind::Number ||
           is_punct(tokens[i - 1], ")") || is_punct(tokens[i - 1], "]")))) {
      int bdepth = 0;
      std::size_t k = i;
      while (k <= close) {
        if (is_punct(tokens[k], "[")) ++bdepth;
        if (is_punct(tokens[k], "]") && --bdepth == 0) break;
        ++k;
      }
      std::size_t j = k + 1;
      if (j <= close && is_punct(tokens[j], "(")) {
        j = match_paren(tokens, j) + 1;
      }
      while (j <= close) {
        if (tokens[j].kind == Token::Kind::Ident) {
          if (j + 1 <= close && is_punct(tokens[j + 1], "(")) {
            j = match_paren(tokens, j + 1) + 1;
          } else {
            ++j;
          }
          continue;
        }
        if (is_punct(tokens[j], "->")) {
          ++j;
          continue;
        }
        break;
      }
      if (j <= close && is_punct(tokens[j], "{")) {
        const std::size_t lam_close = match_brace(tokens, j);
        if (lam_close + 1 <= close && is_punct(tokens[lam_close + 1], "(")) {
          // Immediately-invoked lambda: the body runs inline (e.g. a
          // thread_local initializer), so its acquisitions happen under
          // whatever the caller holds — scan it in the current context.
          i = k + 1;
          continue;
        }
        const std::string lam_name =
            "<lambda#" + std::to_string(++build.lambda_count) + ">";
        parse_body(unit, j, lam_close, cls, display + lam_name,
                   {std::string(), lam_name}, env, tables, build);
        i = lam_close + 1;
        continue;
      }
    }

    // MutexLock acquisition: `MutexLock <var> ( expr )` or `{ expr }`.
    if (is_ident(t, "MutexLock") && i + 2 <= close &&
        tokens[i + 1].kind == Token::Kind::Ident &&
        (is_punct(tokens[i + 2], "(") || is_punct(tokens[i + 2], "{"))) {
      const std::string var = tokens[i + 1].text;
      const std::size_t expr_open = i + 2;
      const std::size_t expr_close = is_punct(tokens[expr_open], "(")
                                         ? match_paren(tokens, expr_open)
                                         : match_brace(tokens, expr_open);
      const std::string id = resolve_mutex_expr(
          tokens, expr_open + 1, expr_close, unit, cls, env, tables);
      if (id.empty()) {
        std::string expr;
        for (std::size_t k = expr_open + 1; k < expr_close; ++k) {
          if (!expr.empty()) expr += ' ';
          expr += tokens[k].text;
        }
        build.findings.push_back(
            {"lock-order", unit.file->path, t.line,
             "cannot resolve the mutex in `MutexLock " + var + "(" + expr +
                 ")` (in " + display +
                 ") to a declared support::Mutex — the lock graph would be "
                 "incomplete"});
        windows.push_back({var, std::string(), depth, false});
      } else {
        add_edges_for(id, t.line);
        windows.push_back({var, id, depth, true});
      }
      i = expr_close + 1;
      continue;
    }

    // Manual window control: `<var>.unlock()` ends the hold,
    // `<var>.lock()` re-opens it (a fresh acquisition for ordering).
    if (t.kind == Token::Kind::Ident && i + 3 <= close &&
        is_punct(tokens[i + 1], ".") &&
        (is_ident(tokens[i + 2], "unlock") ||
         is_ident(tokens[i + 2], "lock")) &&
        is_punct(tokens[i + 3], "(")) {
      Window* w = nullptr;
      for (auto it = windows.rbegin(); it != windows.rend(); ++it) {
        if (it->var == t.text) {
          w = &*it;
          break;
        }
      }
      if (w != nullptr) {
        if (is_ident(tokens[i + 2], "unlock")) {
          w->active = false;
        } else {
          if (!w->identity.empty()) add_edges_for(w->identity, t.line);
          w->active = true;
        }
        i = match_paren(tokens, i + 3) + 1;
        continue;
      }
    }

    // Declared macro expansions: the config names the functions a macro
    // invokes (OBS_* go through the metrics registry, FAULT_POINT through
    // the site registry), so locks taken inside count.
    if (t.kind == Token::Kind::Ident && tables.macro_calls != nullptr) {
      const auto mi = tables.macro_calls->find(t.text);
      if (mi != tables.macro_calls->end()) {
        for (const std::string& target : mi->second) {
          const std::size_t sep = target.rfind("::");
          CallSite call;
          if (sep == std::string::npos) {
            call.name = target;
          } else {
            call.hint = target.substr(0, sep);
            call.name = target.substr(sep + 2);
          }
          call.caller_cls = cls;
          call.held = held();
          call.file = unit.file->path;
          call.line = t.line;
          info.calls.push_back(std::move(call));
        }
        ++i;
        continue;
      }
    }

    // Local declaration: remember `Type name =/;/:` for receiver typing.
    if (t.kind == Token::Kind::Ident && i + 1 <= close &&
        (is_punct(tokens[i + 1], "=") || is_punct(tokens[i + 1], ";") ||
         is_punct(tokens[i + 1], ":"))) {
      std::vector<std::string> types;
      for (std::size_t k = stmt_start; k < i; ++k) {
        if (tokens[k].kind == Token::Kind::Ident &&
            !is_type_noise_ident(tokens[k].text)) {
          types.push_back(tokens[k].text);
        }
      }
      if (!types.empty()) env[t.text] = std::move(types);
    }

    // Generic call.
    if (t.kind == Token::Kind::Ident && !is_keyword_head(t.text) &&
        i + 1 <= close && is_punct(tokens[i + 1], "(")) {
      const Token& prev = tokens[i - 1];
      const bool decl_like =
          (prev.kind == Token::Kind::Ident &&
           !is_expr_context_ident(prev.text)) ||
          is_punct(prev, "~") || is_punct(prev, ">");
      if (!decl_like) {
        CallSite call;
        call.name = t.text;
        call.caller_cls = cls;
        if (is_punct(prev, ".") || is_punct(prev, "->")) {
          call.hint = member_call_hint(tokens, i, cls, env, tables, t.text);
        } else if (is_punct(prev, "::") && i >= 2 &&
                   tokens[i - 2].kind == Token::Kind::Ident) {
          call.hint = tokens[i - 2].text;
        }
        call.held = held();
        call.file = unit.file->path;
        call.line = t.line;
        info.calls.push_back(std::move(call));
      }
    }

    if (is_punct(t, ";") || is_punct(t, ",") || is_punct(t, "(")) {
      stmt_start = i + 1;
    }
    ++i;
  }
}

void parse_body(const FileUnit& unit, std::size_t open, std::size_t close,
                const std::string& cls, const std::string& display,
                const FuncKey& key, Env env, LockTables& tables,
                LockBuild& build) {
  walk_body(unit, open, close, cls, display, key, env, tables, build);
}

/// Parameter list of a function definition -> initial local environment.
Env params_env(const std::vector<Token>& tokens, const FunctionDef& def) {
  Env env;
  const std::size_t open = def.header + 1;
  const std::size_t close = match_paren(tokens, open);
  std::size_t start = open + 1;
  int depth = 0;
  for (std::size_t i = open + 1; i <= close && i < tokens.size(); ++i) {
    const bool last = i == close;
    if (is_punct(tokens[i], "(") || is_punct(tokens[i], "[") ||
        is_punct(tokens[i], "{") || is_punct(tokens[i], "<")) {
      ++depth;
    } else if (is_punct(tokens[i], ")") || is_punct(tokens[i], "]") ||
               is_punct(tokens[i], "}") || is_punct(tokens[i], ">")) {
      --depth;
    }
    if (!last && !(depth == 0 && is_punct(tokens[i], ","))) continue;
    // Parameter tokens [start, i): name = last ident before '=' if any.
    std::size_t end = i;
    for (std::size_t k = start; k < end; ++k) {
      if (is_punct(tokens[k], "=")) {
        end = k;
        break;
      }
    }
    std::size_t name_idx = end;
    while (name_idx-- > start) {
      if (tokens[name_idx].kind == Token::Kind::Ident) break;
    }
    if (name_idx > start && name_idx < end) {
      std::vector<std::string> types;
      for (std::size_t k = start; k < name_idx; ++k) {
        if (tokens[k].kind == Token::Kind::Ident &&
            !is_type_noise_ident(tokens[k].text)) {
          types.push_back(tokens[k].text);
        }
      }
      if (!types.empty()) env[tokens[name_idx].text] = std::move(types);
    }
    start = i + 1;
  }
  return env;
}

}  // namespace

LockAnalysis analyze_locks(const std::vector<FileContent>& files,
                           const Config& config) {
  LockAnalysis result;
  const std::vector<FileUnit> units = build_units(files);

  // Pass A: declarations and type tables.
  LockTables tables;
  tables.macro_calls = &config.macro_calls;
  std::vector<MutexDecl> decls;
  std::map<std::string, std::map<std::string, std::string>> locals_by_file;
  for (const FileUnit& unit : units) {
    collect_member_types(unit, &tables.member_types);
    std::map<std::string, std::string> locals;
    collect_mutex_decls(unit, &decls, &locals);
    if (!locals.empty()) tables.file_locals[unit.file->path] = locals;
    for (const TokenClassSpan& span : unit.spans) {
      if (!span.name.empty()) tables.known_classes.insert(span.name);
    }
    for (const FunctionDef& def : unit.funcs) {
      if (!def.cls.empty()) tables.member_funcs[def.name].insert(def.cls);
    }
  }
  std::map<std::string, const MutexDecl*> by_identity;
  for (const MutexDecl& d : decls) {
    const auto [it, inserted] = by_identity.emplace(d.identity, &d);
    if (!inserted) {
      result.findings.push_back(
          {"lock-order", d.file, d.line,
           "mutex identity '" + d.identity + "' is ambiguous (also " +
               it->second->file + ":" + std::to_string(it->second->line) +
               ") — rename one so ranks stay unique"});
      continue;
    }
    if (!d.cls.empty()) {
      tables.member_mutex[d.cls][d.var].push_back(d.identity);
    }
    tables.any_mutex_member[d.var].push_back(d.identity);
    result.display[d.identity] = d.display;
  }

  // Pass B: function bodies.
  LockBuild build;
  for (const FileUnit& unit : units) {
    for (const FunctionDef& def : unit.funcs) {
      const std::string display =
          (def.cls.empty() ? def.name : def.cls + "::" + def.name);
      parse_body(unit, def.open, def.close, def.cls, display,
                 {def.cls, def.name}, params_env(unit.tokens, def), tables,
                 build);
    }
  }
  for (Finding& f : build.findings) result.findings.push_back(std::move(f));

  // Call resolution + transitive lock-set fixpoint.
  std::map<std::string, std::vector<FuncKey>> by_name;
  for (const auto& [key, info] : build.funcs) {
    by_name[key.second].push_back(key);
  }
  // Member names so generic (smart pointers, containers, iterators) that
  // an untyped receiver must not be matched to a project class's member.
  static const std::set<std::string> kCommonMembers = {
      "get",    "reset",  "size",   "empty", "begin",      "end",
      "clear",  "find",   "count",  "insert", "erase",     "at",
      "data",   "str",    "c_str",  "swap",  "release",    "load",
      "store",  "wait",   "join",   "detach", "value",     "push_back",
      "emplace_back",     "front",  "back",  "notify_one", "notify_all",
      "has_value",        "lock",   "unlock", "try_lock",  "emplace"};
  const auto resolve_call = [&](const CallSite& call) {
    std::vector<FuncKey> targets;
    if (call.hint == "*") {
      // Unknown receiver type: only resolve when the member name is
      // project-specific and unambiguous (defined in exactly one class).
      if (kCommonMembers.count(call.name) != 0) return targets;
      const auto it = by_name.find(call.name);
      if (it != by_name.end()) {
        std::vector<FuncKey> members;
        for (const FuncKey& k : it->second) {
          if (!k.first.empty()) members.push_back(k);
        }
        if (members.size() == 1) targets = std::move(members);
      }
    } else if (call.hint.empty()) {
      const FuncKey self{call.caller_cls, call.name};
      const FuncKey free{std::string(), call.name};
      if (!call.caller_cls.empty() && build.funcs.count(self) != 0) {
        targets.push_back(self);
      } else if (build.funcs.count(free) != 0) {
        targets.push_back(free);
      }
    } else {
      const FuncKey key{call.hint, call.name};
      if (build.funcs.count(key) != 0) targets.push_back(key);
    }
    return targets;
  };

  std::map<FuncKey, std::set<std::string>> trans;
  for (const auto& [key, info] : build.funcs) trans[key] = info.direct;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [key, info] : build.funcs) {
      std::set<std::string>& mine = trans[key];
      for (const CallSite& call : info.calls) {
        for (const FuncKey& target : resolve_call(call)) {
          for (const std::string& l : trans[target]) {
            if (mine.insert(l).second) changed = true;
          }
        }
      }
    }
  }

  // Edges from calls made while holding locks.
  for (const auto& [key, info] : build.funcs) {
    for (const CallSite& call : info.calls) {
      if (call.held.empty()) continue;
      for (const FuncKey& target : resolve_call(call)) {
        for (const std::string& l : trans[target]) {
          for (const std::string& h : call.held) {
            const auto edge_key = std::make_pair(h, l);
            if (build.edges.count(edge_key) == 0) {
              const std::string callee =
                  target.first.empty() ? target.second
                                       : target.first + "::" + target.second;
              build.edges[edge_key] = {call.file, call.line,
                                       "call to " + callee};
            }
          }
        }
      }
    }
  }

  // Public edge list (sorted by map order already).
  for (const auto& [key, raw] : build.edges) {
    result.edges.push_back({key.first, key.second,
                            raw.file + ":" + std::to_string(raw.line) + " (" +
                                raw.context + ")"});
  }
  for (const auto& [id, decl] : by_identity) {
    (void)decl;
    result.locks.push_back(id);
  }

  // Cycle detection: iterative Tarjan SCC over the lock graph.
  {
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [key, raw] : build.edges) {
      (void)raw;
      adj[key.first].push_back(key.second);
      if (key.first == key.second) continue;
    }
    std::map<std::string, int> index, lowlink;
    std::set<std::string> on_stack;
    std::vector<std::string> stack;
    int next_index = 0;
    std::vector<std::vector<std::string>> cycles;

    struct Frame {
      std::string node;
      std::size_t child = 0;
    };
    for (const std::string& start : result.locks) {
      if (index.count(start) != 0) continue;
      std::vector<Frame> frames{{start, 0}};
      while (!frames.empty()) {
        Frame& f = frames.back();
        const std::string node = f.node;
        if (f.child == 0) {
          index[node] = lowlink[node] = next_index++;
          stack.push_back(node);
          on_stack.insert(node);
        }
        const auto ai = adj.find(node);
        bool descended = false;
        while (ai != adj.end() && f.child < ai->second.size()) {
          const std::string& next = ai->second[f.child++];
          if (index.count(next) == 0) {
            frames.push_back({next, 0});
            descended = true;
            break;
          }
          if (on_stack.count(next) != 0) {
            lowlink[node] = std::min(lowlink[node], index[next]);
          }
        }
        if (descended) continue;
        if (lowlink[node] == index[node]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string top = stack.back();
            stack.pop_back();
            on_stack.erase(top);
            scc.push_back(top);
            if (top == node) break;
          }
          const bool self_loop =
              scc.size() == 1 && build.edges.count({node, node}) != 0;
          if (scc.size() > 1 || self_loop) {
            std::sort(scc.begin(), scc.end());
            cycles.push_back(std::move(scc));
          }
        }
        frames.pop_back();
        if (!frames.empty()) {
          Frame& parent = frames.back();
          lowlink[parent.node] =
              std::min(lowlink[parent.node], lowlink[node]);
        }
      }
    }
    for (const std::vector<std::string>& scc : cycles) {
      const std::set<std::string> members(scc.begin(), scc.end());
      std::string msg = "potential deadlock: lock-order cycle among {";
      for (std::size_t k = 0; k < scc.size(); ++k) {
        if (k != 0) msg += ", ";
        const auto di = result.display.find(scc[k]);
        msg += di == result.display.end() ? scc[k] : di->second;
      }
      msg += "}:";
      std::string file;
      std::size_t line = 0;
      for (const auto& [key, raw] : build.edges) {
        if (members.count(key.first) == 0 || members.count(key.second) == 0) {
          continue;
        }
        msg += " " + key.first + " -> " + key.second + " (" + raw.file + ":" +
               std::to_string(raw.line) + " in " + raw.context + ");";
        if (file.empty()) {
          file = raw.file;
          line = raw.line;
        }
      }
      result.findings.push_back({"lock-order", file, line, msg});
    }
  }

  const bool graph_sound =
      std::none_of(result.findings.begin(), result.findings.end(),
                   [](const Finding& f) { return f.rule == "lock-order"; });

  // Ranks: topological longest path over the acyclic graph.
  if (graph_sound) {
    std::map<std::string, std::vector<std::string>> adj;
    std::map<std::string, int> indeg;
    for (const std::string& id : result.locks) indeg[id] = 0;
    for (const auto& [key, raw] : build.edges) {
      (void)raw;
      adj[key.first].push_back(key.second);
      ++indeg[key.second];
    }
    std::vector<std::string> ready;
    std::map<std::string, int> level;
    for (const auto& [id, deg] : indeg) {
      if (deg == 0) {
        ready.push_back(id);
        level[id] = 0;
      }
    }
    while (!ready.empty()) {
      const std::string node = ready.back();
      ready.pop_back();
      for (const std::string& next : adj[node]) {
        level[next] = std::max(level[next], level[node] + 1);
        if (--indeg[next] == 0) ready.push_back(next);
      }
    }
    for (const std::string& id : result.locks) {
      result.rank[id] = (level[id] + 1) * 10;
    }
  }

  // Runtime cross-check: every declaration must bind its LockRank constant.
  for (const MutexDecl& d : decls) {
    const std::string expected = "k_" + d.identity;
    if (d.bound.empty()) {
      result.findings.push_back(
          {"lock-rank", d.file, d.line,
           "mutex '" + d.display +
               "' does not bind its lock rank — declare it as "
               "support::Mutex{support::LockRank::" +
               expected +
               "} and regenerate src/support/lock_ranks.inc with "
               "`ivt-analyze --emit-ranks`"});
    } else if (d.bound != expected) {
      result.findings.push_back(
          {"lock-rank", d.file, d.line,
           "mutex '" + d.display + "' binds LockRank::" + d.bound +
               " but its identity is '" + d.identity +
               "' — it must bind LockRank::" + expected});
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return result;
}

std::string ranks_to_inc(const LockAnalysis& locks) {
  if (locks.rank.empty() && !locks.locks.empty()) return "";
  std::vector<std::pair<int, std::string>> order;
  for (const std::string& id : locks.locks) {
    const auto ri = locks.rank.find(id);
    order.emplace_back(ri == locks.rank.end() ? 0 : ri->second, id);
  }
  std::sort(order.begin(), order.end());
  std::string out;
  out +=
      "// Generated by ivt-analyze --emit-ranks. DO NOT EDIT.\n"
      "//\n"
      "// Rank = (topological level in the static lock-acquisition graph\n"
      "// + 1) * 10: a thread may only acquire strictly increasing ranks.\n"
      "// CI regenerates this file and fails if it differs.\n"
      "//\n"
      "// IVT_LOCK_RANK(constant, rank, display-name)\n";
  for (const auto& [rank, id] : order) {
    const auto di = locks.display.find(id);
    out += "IVT_LOCK_RANK(k_" + id + ", " + std::to_string(rank) + ", \"" +
           (di == locks.display.end() ? id : di->second) + "\")\n";
  }
  return out;
}

std::string lock_graph_dot(const LockAnalysis& locks) {
  std::string out = "digraph locks {\n  rankdir=BT;\n  node [shape=box];\n";
  for (const std::string& id : locks.locks) {
    const auto di = locks.display.find(id);
    const auto ri = locks.rank.find(id);
    out += "  \"" + id + "\" [label=\"" +
           (di == locks.display.end() ? id : di->second);
    if (ri != locks.rank.end()) {
      out += "\\nrank " + std::to_string(ri->second);
    }
    out += "\"];\n";
  }
  for (const LockAnalysis::Edge& e : locks.edges) {
    out += "  \"" + e.from + "\" -> \"" + e.to + "\" [label=\"" + e.via +
           "\"];\n";
  }
  out += "}\n";
  return out;
}

// ---- whole-run driver ---------------------------------------------------

Analysis run_analysis(const std::vector<FileContent>& files,
                      const Config& config, const LayersConfig& layers,
                      const std::string& registry_content) {
  Analysis analysis;
  analysis.report = run_rules(files, config, registry_content);
  analysis.includes = build_include_graph(files);
  analysis.locks = analyze_locks(files, config);

  std::vector<Finding> global;
  if (!layers.layers.empty()) {
    for (Finding& f : check_layering(analysis.includes, layers)) {
      global.push_back(std::move(f));
    }
  }
  for (Finding& f : check_error_taxonomy(files, config)) {
    global.push_back(std::move(f));
  }
  for (const Finding& f : analysis.locks.findings) global.push_back(f);

  for (Finding& f : global) {
    if (!f.file.empty() && is_exempt(config, f.rule, f.file)) {
      ++analysis.report.exempted;
      continue;
    }
    ++analysis.report.by_rule[f.rule];
    analysis.report.findings.push_back(std::move(f));
  }
  std::sort(analysis.report.findings.begin(), analysis.report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  const auto li = analysis.report.by_rule.find("layering");
  analysis.layer_violations =
      li == analysis.report.by_rule.end() ? 0 : li->second;
  return analysis;
}

std::string analysis_to_json(const Analysis& analysis) {
  std::string out = "{\"findings\": " +
                    std::to_string(analysis.report.findings.size()) +
                    ", \"exempted\": " +
                    std::to_string(analysis.report.exempted) +
                    ", \"by_rule\": {";
  bool first = true;
  for (const auto& [rule, count] : analysis.report.by_rule) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + rule + "\": " + std::to_string(count);
  }
  out += "}, \"include_edges\": " +
         std::to_string(analysis.includes.edges.size()) +
         ", \"layer_violations\": " +
         std::to_string(analysis.layer_violations) +
         ", \"lock_graph_nodes\": " +
         std::to_string(analysis.locks.locks.size()) +
         ", \"lock_graph_edges\": " +
         std::to_string(analysis.locks.edges.size()) + "}";
  return out;
}

// ---- CLI ----------------------------------------------------------------

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return out.good();
}

void collect_sources(const std::string& root,
                     std::vector<FileContent>* files,
                     std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status status = fs::status(root, ec);
  if (ec) {
    errors->push_back("ivt-analyze: cannot stat " + root + ": " +
                      ec.message());
    return;
  }
  std::vector<std::string> paths;
  if (fs::is_directory(status)) {
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string p = it->path().generic_string();
      if (ends_with(p, ".cpp") || ends_with(p, ".hpp")) paths.push_back(p);
    }
    if (ec) {
      errors->push_back("ivt-analyze: cannot walk " + root + ": " +
                        ec.message());
      return;
    }
  } else {
    paths.push_back(root);
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& p : paths) {
    std::string content;
    if (!read_file(p, &content)) {
      errors->push_back("ivt-analyze: cannot read " + p);
      continue;
    }
    files->push_back({p, std::move(content)});
  }
}

}  // namespace

int analyze_main(const std::vector<std::string>& args) {
  std::string config_path, layers_path, registry_override;
  std::string dot_includes_path, dot_locks_path;
  bool json = false, emit_ranks = false;
  std::vector<std::string> roots;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::cerr << "ivt-analyze: " << flag << " requires a value\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--config") {
      const std::string* v = value("--config");
      if (v == nullptr) return 2;
      config_path = *v;
    } else if (a == "--layers") {
      const std::string* v = value("--layers");
      if (v == nullptr) return 2;
      layers_path = *v;
    } else if (a == "--registry") {
      const std::string* v = value("--registry");
      if (v == nullptr) return 2;
      registry_override = *v;
    } else if (a == "--dot-includes") {
      const std::string* v = value("--dot-includes");
      if (v == nullptr) return 2;
      dot_includes_path = *v;
    } else if (a == "--dot-locks") {
      const std::string* v = value("--dot-locks");
      if (v == nullptr) return 2;
      dot_locks_path = *v;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--emit-ranks") {
      emit_ranks = true;
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: ivt-analyze [--config F] [--layers F] "
                   "[--registry F] [--json]\n"
                   "                   [--emit-ranks] [--dot-includes F] "
                   "[--dot-locks F] PATH...\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "ivt-analyze: unknown flag " << a << "\n";
      return 2;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty()) {
    std::cerr << "ivt-analyze: no input paths (try: ivt-analyze --config "
                 "tools/ivt-lint.conf --layers tools/ivt-layers.conf src)\n";
    return 2;
  }

  Config config;
  if (!config_path.empty()) {
    std::string content;
    if (!read_file(config_path, &content)) {
      std::cerr << "ivt-analyze: cannot read config " << config_path << "\n";
      return 2;
    }
    std::vector<std::string> errors;
    config = parse_config(content, &errors);
    for (const std::string& e : errors) {
      std::cerr << "ivt-analyze: " << config_path << ": " << e << "\n";
    }
    if (!errors.empty()) return 2;
  }

  LayersConfig layers;
  if (!layers_path.empty()) {
    std::string content;
    if (!read_file(layers_path, &content)) {
      std::cerr << "ivt-analyze: cannot read layers " << layers_path << "\n";
      return 2;
    }
    std::vector<std::string> errors;
    layers = parse_layers(content, &errors);
    for (const std::string& e : errors) {
      std::cerr << "ivt-analyze: " << layers_path << ": " << e << "\n";
    }
    if (!errors.empty()) return 2;
  }

  if (!registry_override.empty()) config.registry_path = registry_override;
  std::string registry_content;
  if (!config.registry_path.empty() &&
      !read_file(config.registry_path, &registry_content)) {
    std::cerr << "ivt-analyze: cannot read registry " << config.registry_path
              << "\n";
    return 2;
  }

  std::vector<FileContent> files;
  std::vector<std::string> io_errors;
  for (const std::string& root : roots) {
    collect_sources(root, &files, &io_errors);
  }
  for (const std::string& e : io_errors) std::cerr << e << "\n";
  if (!io_errors.empty()) return 2;

  const Analysis analysis =
      run_analysis(files, config, layers, registry_content);

  if (!dot_includes_path.empty() &&
      !write_file(dot_includes_path, include_graph_dot(analysis.includes,
                                                       layers))) {
    std::cerr << "ivt-analyze: cannot write " << dot_includes_path << "\n";
    return 2;
  }
  if (!dot_locks_path.empty() &&
      !write_file(dot_locks_path, lock_graph_dot(analysis.locks))) {
    std::cerr << "ivt-analyze: cannot write " << dot_locks_path << "\n";
    return 2;
  }

  std::ostream& findings_out = (json || emit_ranks) ? std::cerr : std::cout;
  for (const Finding& f : analysis.report.findings) {
    findings_out << f.file;
    if (f.line != 0) findings_out << ":" << f.line;
    findings_out << ": [" << f.rule << "] " << f.message << "\n";
  }

  if (emit_ranks) {
    const std::string inc = ranks_to_inc(analysis.locks);
    if (inc.empty() && !analysis.locks.locks.empty()) {
      std::cerr << "ivt-analyze: lock graph has findings; ranks not "
                   "emitted\n";
      return 1;
    }
    std::cout << inc;
  } else if (json) {
    std::cout << analysis_to_json(analysis) << "\n";
  } else if (!analysis.report.findings.empty()) {
    findings_out << analysis.report.findings.size() << " finding(s), "
                 << analysis.report.exempted << " exempted\n";
  }
  return analysis.report.findings.empty() ? 0 : 1;
}

}  // namespace ivt::lint
