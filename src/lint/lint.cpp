#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "lint/tokenizer.hpp"

namespace ivt::lint {

namespace {

/// One pass over the source replacing comments (and optionally string /
/// char literals) with spaces. Newlines survive so byte offsets keep
/// mapping to the original line numbers.
std::string strip_source(const std::string& s, bool strip_strings) {
  std::string out = s;
  enum class State { Code, Line, Block, Str, Chr, Raw };
  State state = State::Code;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::Line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::Block;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (std::isalnum(static_cast<unsigned char>(
                                   s[i - 1])) == 0 &&
                               s[i - 1] != '_'))) {
          state = State::Raw;
          raw_delim.clear();
          std::size_t j = i + 2;
          while (j < s.size() && s[j] != '(') raw_delim += s[j++];
          if (strip_strings) {
            for (std::size_t k = i; k <= j && k < s.size(); ++k) {
              if (out[k] != '\n') out[k] = ' ';
            }
          }
          i = j;
        } else if (c == '"') {
          state = State::Str;
          if (strip_strings) out[i] = ' ';
        } else if (c == '\'') {
          state = State::Chr;
          if (strip_strings) out[i] = ' ';
        }
        break;
      case State::Line:
        if (c == '\n') {
          state = State::Code;
        } else {
          out[i] = ' ';
        }
        break;
      case State::Block:
        if (c == '*' && next == '/') {
          state = State::Code;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Str:
        if (c == '\\') {
          if (strip_strings) {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          state = State::Code;
          if (strip_strings) out[i] = ' ';
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      case State::Chr:
        if (c == '\\') {
          if (strip_strings) {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          state = State::Code;
          if (strip_strings) out[i] = ' ';
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      case State::Raw: {
        // close is )delim"
        const std::string close = ")" + raw_delim + "\"";
        if (s.compare(i, close.size(), close) == 0) {
          if (strip_strings) {
            for (std::size_t k = i; k < i + close.size(); ++k) out[k] = ' ';
          }
          i += close.size() - 1;
          state = State::Code;
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string stem_of(const std::string& path) {
  std::string base = basename_of(path);
  const std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Token indices where each top-level argument of the call whose '(' is
/// at `open` starts. Empty for `()`.
std::vector<std::size_t> call_arg_starts(const std::vector<Token>& tokens,
                                         std::size_t open) {
  std::vector<std::size_t> starts;
  const std::size_t close = match_paren(tokens, open);
  if (close <= open + 1) return starts;
  starts.push_back(open + 1);
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (is_punct(tokens[i], "(") || is_punct(tokens[i], "[") ||
        is_punct(tokens[i], "{")) {
      ++depth;
    } else if (is_punct(tokens[i], ")") || is_punct(tokens[i], "]") ||
               is_punct(tokens[i], "}")) {
      --depth;
    } else if (depth == 0 && is_punct(tokens[i], ",") && i + 1 < close) {
      starts.push_back(i + 1);
    }
  }
  return starts;
}

}  // namespace

std::string strip_comments_and_strings(const std::string& content) {
  return strip_source(content, /*strip_strings=*/true);
}

Config parse_config(const std::string& content,
                    std::vector<std::string>* errors) {
  Config config;
  std::istringstream in(content);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank / comment-only
    if (directive == "exempt") {
      Config::Exemption e;
      if (fields >> e.rule >> e.path_prefix) {
        config.exemptions.push_back(std::move(e));
      } else if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineno) +
                          ": exempt needs <rule> <path-prefix>");
      }
    } else if (directive == "registry") {
      if (!(fields >> config.registry_path) && errors != nullptr) {
        errors->push_back("line " + std::to_string(lineno) +
                          ": registry needs <path>");
      }
    } else if (directive == "metric-prefix") {
      std::string prefix;
      if (fields >> prefix) {
        if (!prefix.empty() && prefix.back() == '.') prefix.pop_back();
        config.metric_prefixes.push_back(std::move(prefix));
      } else if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineno) +
                          ": metric-prefix needs <subsystem>");
      }
    } else if (directive == "error-table") {
      std::string function;
      if (fields >> function) {
        config.error_tables.push_back(std::move(function));
      } else if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineno) +
                          ": error-table needs <function>");
      }
    } else if (directive == "macro-call") {
      std::string macro;
      std::string function;
      if (fields >> macro >> function) {
        config.macro_calls[macro].push_back(std::move(function));
      } else if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineno) +
                          ": macro-call needs <MACRO> <function>");
      }
    } else if (errors != nullptr) {
      errors->push_back("line " + std::to_string(lineno) +
                        ": unknown directive '" + directive + "'");
    }
  }
  return config;
}

bool is_exempt(const Config& config, const std::string& rule,
               const std::string& file) {
  for (const Config::Exemption& e : config.exemptions) {
    if (e.rule == rule && file.compare(0, e.path_prefix.size(),
                                       e.path_prefix) == 0) {
      return true;
    }
  }
  return false;
}

std::vector<Finding> check_bare_throw(const std::string& path,
                                      const std::string& content) {
  std::vector<Finding> findings;
  const std::vector<Token> tokens = tokenize(content);
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (is_ident(tokens[i], "throw") && is_ident(tokens[i + 1], "std") &&
        i + 3 < tokens.size() && is_punct(tokens[i + 2], "::") &&
        tokens[i + 3].kind == Token::Kind::Ident) {
      findings.push_back(
          {"bare-throw", path, tokens[i].line,
           "bare `throw std::" + tokens[i + 3].text +
               "` — use IVT_THROW with an errors::Category so the failure "
               "carries site and severity"});
    }
    // Bare assert() aborts with no taxonomy, no site, no message; use
    // IVT_THROW(Internal, ...) or IVT_THROW_FATAL so the failure is
    // attributable. (static_assert is a different identifier and fine.)
    if (is_ident(tokens[i], "assert") && is_punct(tokens[i + 1], "(") &&
        !(i > 0 && (is_punct(tokens[i - 1], "#") ||
                    is_ident(tokens[i - 1], "undef") ||
                    is_ident(tokens[i - 1], "ifdef") ||
                    is_ident(tokens[i - 1], "defined") ||
                    is_punct(tokens[i - 1], ".") ||
                    is_punct(tokens[i - 1], "->") ||
                    is_punct(tokens[i - 1], "::")))) {
      findings.push_back(
          {"bare-throw", path, tokens[i].line,
           "bare `assert(...)` — use IVT_THROW(Internal, ...) or "
           "IVT_THROW_FATAL so the failure carries site and severity"});
    }
  }
  return findings;
}

std::vector<Finding> check_mutex_guard(const std::string& path,
                                       const std::string& content) {
  std::vector<Finding> findings;
  const std::vector<Token> tokens = tokenize(content);
  const std::vector<TokenClassSpan> spans = token_class_spans(tokens);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    // A mutex *declaration*: `std::mutex name ;` or `[support::] Mutex
    // name ;` (any cv/storage tokens before the type are irrelevant).
    bool raw_std = false;
    std::size_t type_end = 0;
    if (is_ident(tokens[i], "std") && i + 2 < tokens.size() &&
        is_punct(tokens[i + 1], "::") && is_ident(tokens[i + 2], "mutex")) {
      raw_std = true;
      type_end = i + 2;
    } else if (is_ident(tokens[i], "Mutex")) {
      // Qualified forms other than support::Mutex are someone else's
      // type; `class/struct/friend Mutex` is a declaration of the type.
      if (i > 0 && is_punct(tokens[i - 1], "::") &&
          !(i > 1 && is_ident(tokens[i - 2], "support"))) {
        continue;
      }
      if (i > 0 && (is_ident(tokens[i - 1], "class") ||
                    is_ident(tokens[i - 1], "struct") ||
                    is_ident(tokens[i - 1], "friend"))) {
        continue;
      }
      type_end = i;
    } else {
      continue;
    }
    if (type_end + 2 >= tokens.size() ||
        tokens[type_end + 1].kind != Token::Kind::Ident ||
        !is_punct(tokens[type_end + 2], ";")) {
      continue;  // reference/pointer/parameter use, not a declaration
    }
    const std::string name = tokens[type_end + 1].text;
    const std::size_t line = tokens[i].line;
    if (raw_std) {
      findings.push_back({"mutex-guard", path, line,
                          "raw std::mutex member '" + name +
                              "' — use support::Mutex so clang "
                              "-Wthread-safety can check the contract"});
    }
    const TokenClassSpan* span = innermost_class(spans, i);
    if (span == nullptr) continue;  // local / namespace-scope object
    bool guarded = false;
    for (std::size_t j = span->open; j < span->close && !guarded; ++j) {
      if ((is_ident(tokens[j], "IVT_GUARDED_BY") ||
           is_ident(tokens[j], "IVT_PT_GUARDED_BY")) &&
          j + 3 < tokens.size() && is_punct(tokens[j + 1], "(") &&
          is_ident(tokens[j + 2], name.c_str()) &&
          is_punct(tokens[j + 3], ")")) {
        guarded = true;
      }
    }
    if (!guarded) {
      findings.push_back(
          {"mutex-guard", path, line,
           "class '" + span->name + "' owns mutex '" + name +
               "' but no field is IVT_GUARDED_BY(" + name +
               ") — state what the mutex protects"});
    }
  }
  return findings;
}

std::vector<Finding> check_include_hygiene(const std::string& path,
                                           const std::string& content) {
  std::vector<Finding> findings;
  struct Inc {
    std::string target;
    std::size_t line;
    std::size_t index;
  };
  std::vector<Inc> includes;
  for (const Token& t : tokenize(content)) {
    if (t.kind == Token::Kind::IncludeQuoted) {
      includes.push_back({t.text, t.line, includes.size()});
    }
  }
  for (const Inc& inc : includes) {
    if (inc.target.compare(0, 3, "../") == 0 ||
        inc.target.find("/../") != std::string::npos) {
      findings.push_back({"include-hygiene", path, inc.line,
                          "parent-relative include \"" + inc.target +
                              "\" — project includes are rooted at src/"});
    }
  }
  // Self-header-first: if a .cpp includes "<...>/<stem>.hpp", that include
  // must come before every other one, so the header is compiled stand-alone
  // at least once.
  if (ends_with(path, ".cpp")) {
    const std::string self = stem_of(path) + ".hpp";
    for (const Inc& inc : includes) {
      if (basename_of(inc.target) == self && inc.index != 0) {
        findings.push_back({"include-hygiene", path, inc.line,
                            "own header \"" + inc.target +
                                "\" must be the first include"});
        break;
      }
    }
  }
  return findings;
}

std::vector<Finding> check_metric_names(
    const std::string& path, const std::string& content,
    const std::vector<std::string>& extra_prefixes) {
  std::vector<Finding> findings;
  const std::vector<Token> tokens = tokenize(content);

  const auto check_name = [&](const std::string& name, std::size_t line) {
    if (!is_valid_site_name(name)) {
      findings.push_back({"metric-name", path, line,
                          "metric/event name '" + name +
                              "' does not match the grammar seg(.seg)+, "
                              "seg = [a-z0-9_]+"});
      return;
    }
    const std::string subsystem = name.substr(0, name.find('.'));
    static const char* kBuiltin[] = {"serve", "pipeline", "pool", "io",
                                     "process"};
    for (const char* b : kBuiltin) {
      if (subsystem == b) return;
    }
    for (const std::string& p : extra_prefixes) {
      if (subsystem == p) return;
    }
    findings.push_back({"metric-name", path, line,
                        "metric/event name '" + name +
                            "' uses unregistered prefix '" + subsystem +
                            ".' — declare it with `metric-prefix " +
                            subsystem + "` in the lint config"});
  };

  // The name at arg index `arg` of a macro/constructor call must be a
  // (possibly concatenated) string literal; non-literal names are
  // computed at runtime and out of lexical reach. Concatenated literals
  // are joined first, so "serve." "accept" cannot evade the grammar.
  const auto check_call = [&](std::size_t open, std::size_t arg,
                              std::size_t line) {
    const std::vector<std::size_t> args = call_arg_starts(tokens, open);
    if (arg >= args.size()) return;
    std::size_t at = args[arg];
    std::string name;
    if (read_string_concat(tokens, at, &name)) check_name(name, line);
  };

  static const char* kMetricMacros[] = {
      "OBS_COUNT",        "OBS_GAUGE_ADD",      "OBS_GAUGE_SET",
      "OBS_HIST_MS",      "OBS_WINDOW_COUNT",   "OBS_WINDOW_HIST_MS"};
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::Ident) continue;
    // Metric macros: the name is the first argument.
    for (const char* m : kMetricMacros) {
      if (tokens[i].text == m && is_punct(tokens[i + 1], "(")) {
        check_call(i + 1, 0, tokens[i].line);
        break;
      }
    }
    // Event sites: the name is the third argument of OBS_EVENT or of a
    // direct EventRecord construction — `EventRecord(...)` or
    // `EventRecord name(...)` (the constructor's own declaration has no
    // literal there, so it never matches).
    if (is_ident(tokens[i], "OBS_EVENT") && is_punct(tokens[i + 1], "(")) {
      check_call(i + 1, 2, tokens[i].line);
    } else if (is_ident(tokens[i], "EventRecord")) {
      std::size_t open = i + 1;
      if (open < tokens.size() && tokens[open].kind == Token::Kind::Ident) {
        ++open;
      }
      if (open < tokens.size() && is_punct(tokens[open], "(")) {
        check_call(open, 2, tokens[i].line);
      }
    }
  }
  return findings;
}

bool is_valid_site_name(const std::string& name) {
  static const std::regex kSite(R"([a-z0-9_]+(\.[a-z0-9_]+)+)");
  return std::regex_match(name, kSite);
}

std::vector<Finding> check_fault_sites(const std::vector<FileContent>& files,
                                       const std::string& registry_path,
                                       const std::string& registry_content) {
  std::vector<Finding> findings;

  // Registry: one site per non-comment line.
  std::map<std::string, std::size_t> registry;  // name -> line
  {
    std::istringstream in(registry_content);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream fields(line);
      std::string name;
      if (!(fields >> name)) continue;
      if (!is_valid_site_name(name)) {
        findings.push_back({"fault-site", registry_path, lineno,
                            "registry entry '" + name +
                                "' does not match the IVT_FAULTS site "
                                "grammar seg(.seg)+, seg = [a-z0-9_]+"});
        continue;
      }
      if (!registry.emplace(name, lineno).second) {
        findings.push_back({"fault-site", registry_path, lineno,
                            "site '" + name +
                                "' declared more than once in the registry"});
      }
    }
  }

  // Code: every FAULT_POINT / FAULT_POINT_MUTATE use with a literal name
  // (adjacent literals are concatenated first, so "serve." "accept"
  // cannot evade the exactly-once check).
  struct Use {
    std::string file;
    std::size_t line;
  };
  std::map<std::string, std::vector<Use>> uses;
  for (const FileContent& f : files) {
    const std::vector<Token> tokens = tokenize(f.content);
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (!(is_ident(tokens[i], "FAULT_POINT") ||
            is_ident(tokens[i], "FAULT_POINT_MUTATE")) ||
          !is_punct(tokens[i + 1], "(")) {
        continue;
      }
      std::size_t at = i + 2;
      std::string name;
      if (!read_string_concat(tokens, at, &name)) continue;  // macro def
      const std::size_t line = tokens[i].line;
      if (!is_valid_site_name(name)) {
        findings.push_back({"fault-site", f.path, line,
                            "site '" + name +
                                "' does not match the IVT_FAULTS site "
                                "grammar seg(.seg)+, seg = [a-z0-9_]+"});
        continue;
      }
      uses[name].push_back({f.path, line});
    }
  }

  for (const auto& [name, where] : uses) {
    if (registry.find(name) == registry.end()) {
      findings.push_back({"fault-site", where.front().file,
                          where.front().line,
                          "site '" + name + "' is not declared in " +
                              (registry_path.empty() ? "the registry"
                                                     : registry_path)});
    }
    for (std::size_t i = 1; i < where.size(); ++i) {
      findings.push_back({"fault-site", where[i].file, where[i].line,
                          "site '" + name +
                              "' is instrumented more than once (first at " +
                              where.front().file + ":" +
                              std::to_string(where.front().line) +
                              ") — sites are unique identities"});
    }
  }
  for (const auto& [name, lineno] : registry) {
    if (uses.find(name) == uses.end()) {
      findings.push_back({"fault-site", registry_path, lineno,
                          "registered site '" + name +
                              "' has no FAULT_POINT in the scanned files"});
    }
  }
  return findings;
}

Report run_rules(const std::vector<FileContent>& files, const Config& config,
                 const std::string& registry_content) {
  std::vector<Finding> all;
  for (const FileContent& f : files) {
    for (auto&& v : check_bare_throw(f.path, f.content)) {
      all.push_back(std::move(v));
    }
    for (auto&& v : check_mutex_guard(f.path, f.content)) {
      all.push_back(std::move(v));
    }
    for (auto&& v : check_include_hygiene(f.path, f.content)) {
      all.push_back(std::move(v));
    }
    for (auto&& v :
         check_metric_names(f.path, f.content, config.metric_prefixes)) {
      all.push_back(std::move(v));
    }
  }
  if (!config.registry_path.empty()) {
    for (auto&& v : check_fault_sites(files, config.registry_path,
                                      registry_content)) {
      all.push_back(std::move(v));
    }
  }

  Report report;
  for (Finding& f : all) {
    if (is_exempt(config, f.rule, f.file)) {
      ++report.exempted;
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.file != b.file ? a.file < b.file
                                             : a.line < b.line;
                   });
  for (const Finding& f : report.findings) ++report.by_rule[f.rule];
  return report;
}

std::string report_to_json(const Report& report) {
  std::ostringstream out;
  out << "{\"findings\": " << report.findings.size()
      << ", \"exempted\": " << report.exempted << ", \"by_rule\": {";
  bool first = true;
  for (const auto& [rule, count] : report.by_rule) {
    if (!first) out << ", ";
    first = false;
    out << '"' << rule << "\": " << count;
  }
  out << "}}";
  return out.str();
}

}  // namespace ivt::lint
