#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace ivt::lint {

namespace {

/// One pass over the source replacing comments (and optionally string /
/// char literals) with spaces. Newlines survive so byte offsets keep
/// mapping to the original line numbers.
std::string strip_source(const std::string& s, bool strip_strings) {
  std::string out = s;
  enum class State { Code, Line, Block, Str, Chr, Raw };
  State state = State::Code;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::Line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::Block;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (std::isalnum(static_cast<unsigned char>(
                                   s[i - 1])) == 0 &&
                               s[i - 1] != '_'))) {
          state = State::Raw;
          raw_delim.clear();
          std::size_t j = i + 2;
          while (j < s.size() && s[j] != '(') raw_delim += s[j++];
          if (strip_strings) {
            for (std::size_t k = i; k <= j && k < s.size(); ++k) {
              if (out[k] != '\n') out[k] = ' ';
            }
          }
          i = j;
        } else if (c == '"') {
          state = State::Str;
          if (strip_strings) out[i] = ' ';
        } else if (c == '\'') {
          state = State::Chr;
          if (strip_strings) out[i] = ' ';
        }
        break;
      case State::Line:
        if (c == '\n') {
          state = State::Code;
        } else {
          out[i] = ' ';
        }
        break;
      case State::Block:
        if (c == '*' && next == '/') {
          state = State::Code;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Str:
        if (c == '\\') {
          if (strip_strings) {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          state = State::Code;
          if (strip_strings) out[i] = ' ';
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      case State::Chr:
        if (c == '\\') {
          if (strip_strings) {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          state = State::Code;
          if (strip_strings) out[i] = ' ';
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      case State::Raw: {
        // close is )delim"
        const std::string close = ")" + raw_delim + "\"";
        if (s.compare(i, close.size(), close) == 0) {
          if (strip_strings) {
            for (std::size_t k = i; k < i + close.size(); ++k) out[k] = ' ';
          }
          i += close.size() - 1;
          state = State::Code;
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::size_t line_of(const std::string& s, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(s.begin(), s.begin() + static_cast<long>(offset),
                            '\n'));
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string stem_of(const std::string& path) {
  std::string base = basename_of(path);
  const std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Class/struct body [open_brace, close_brace] spans, in document order.
struct ClassSpan {
  std::string name;
  std::size_t open = 0;
  std::size_t close = 0;
};

std::vector<ClassSpan> class_spans(const std::string& stripped) {
  std::vector<ClassSpan> spans;
  static const std::regex kClass(R"((?:^|[^\w])(class|struct)\s+(?:\w+\s+)*?(\w+)[^;{]*\{)");
  for (std::sregex_iterator it(stripped.begin(), stripped.end(), kClass), end;
       it != end; ++it) {
    // `enum class` / `enum struct` are not record types.
    const std::size_t kw = static_cast<std::size_t>(it->position(1));
    static const std::regex kEnum(R"(enum\s*$)");
    if (std::regex_search(stripped.substr(kw >= 8 ? kw - 8 : 0, kw >= 8 ? 8 : kw),
                          kEnum)) {
      continue;
    }
    ClassSpan span;
    span.name = (*it)[2].str();
    span.open = static_cast<std::size_t>(it->position(0)) + it->length(0) - 1;
    int depth = 0;
    std::size_t j = span.open;
    for (; j < stripped.size(); ++j) {
      if (stripped[j] == '{') ++depth;
      if (stripped[j] == '}' && --depth == 0) break;
    }
    span.close = j;
    spans.push_back(span);
  }
  return spans;
}

const ClassSpan* innermost_span(const std::vector<ClassSpan>& spans,
                                std::size_t offset) {
  const ClassSpan* best = nullptr;
  for (const ClassSpan& s : spans) {
    if (offset > s.open && offset < s.close &&
        (best == nullptr || s.open > best->open)) {
      best = &s;
    }
  }
  return best;
}

}  // namespace

std::string strip_comments_and_strings(const std::string& content) {
  return strip_source(content, /*strip_strings=*/true);
}

Config parse_config(const std::string& content,
                    std::vector<std::string>* errors) {
  Config config;
  std::istringstream in(content);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank / comment-only
    if (directive == "exempt") {
      Config::Exemption e;
      if (fields >> e.rule >> e.path_prefix) {
        config.exemptions.push_back(std::move(e));
      } else if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineno) +
                          ": exempt needs <rule> <path-prefix>");
      }
    } else if (directive == "registry") {
      if (!(fields >> config.registry_path) && errors != nullptr) {
        errors->push_back("line " + std::to_string(lineno) +
                          ": registry needs <path>");
      }
    } else if (directive == "metric-prefix") {
      std::string prefix;
      if (fields >> prefix) {
        if (!prefix.empty() && prefix.back() == '.') prefix.pop_back();
        config.metric_prefixes.push_back(std::move(prefix));
      } else if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineno) +
                          ": metric-prefix needs <subsystem>");
      }
    } else if (errors != nullptr) {
      errors->push_back("line " + std::to_string(lineno) +
                        ": unknown directive '" + directive + "'");
    }
  }
  return config;
}

bool is_exempt(const Config& config, const std::string& rule,
               const std::string& file) {
  for (const Config::Exemption& e : config.exemptions) {
    if (e.rule == rule && file.compare(0, e.path_prefix.size(),
                                       e.path_prefix) == 0) {
      return true;
    }
  }
  return false;
}

std::vector<Finding> check_bare_throw(const std::string& path,
                                      const std::string& content) {
  std::vector<Finding> findings;
  const std::string stripped = strip_comments_and_strings(content);
  static const std::regex kThrow(R"(throw\s+std\s*::\s*(\w+))");
  for (std::sregex_iterator it(stripped.begin(), stripped.end(), kThrow), end;
       it != end; ++it) {
    findings.push_back(
        {"bare-throw", path,
         line_of(stripped, static_cast<std::size_t>(it->position(0))),
         "bare `throw std::" + (*it)[1].str() +
             "` — use IVT_THROW with an errors::Category so the failure "
             "carries site and severity"});
  }
  return findings;
}

std::vector<Finding> check_mutex_guard(const std::string& path,
                                       const std::string& content) {
  std::vector<Finding> findings;
  const std::string stripped = strip_comments_and_strings(content);
  const std::vector<ClassSpan> spans = class_spans(stripped);
  static const std::regex kMutexMember(
      R"((std\s*::\s*mutex|support\s*::\s*Mutex)\s+(\w+)\s*;)");
  for (std::sregex_iterator it(stripped.begin(), stripped.end(),
                               kMutexMember),
       end;
       it != end; ++it) {
    const std::size_t at = static_cast<std::size_t>(it->position(0));
    const std::string type = (*it)[1].str();
    const std::string name = (*it)[2].str();
    const bool is_raw_std = type.find("std") != std::string::npos;
    if (is_raw_std) {
      findings.push_back({"mutex-guard", path, line_of(stripped, at),
                          "raw std::mutex member '" + name +
                              "' — use support::Mutex so clang "
                              "-Wthread-safety can check the contract"});
    }
    const ClassSpan* span = innermost_span(spans, at);
    if (span == nullptr) continue;  // local / namespace-scope object
    const std::string body =
        stripped.substr(span->open, span->close - span->open);
    const std::regex guarded(R"(IVT(_PT)?_GUARDED_BY\s*\(\s*)" + name +
                             R"(\s*\))");
    if (!std::regex_search(body, guarded)) {
      findings.push_back(
          {"mutex-guard", path, line_of(stripped, at),
           "class '" + span->name + "' owns mutex '" + name +
               "' but no field is IVT_GUARDED_BY(" + name +
               ") — state what the mutex protects"});
    }
  }
  return findings;
}

std::vector<Finding> check_include_hygiene(const std::string& path,
                                           const std::string& content) {
  std::vector<Finding> findings;
  // Strip comments only: include paths live inside quotes.
  const std::string stripped = strip_source(content, /*strip_strings=*/false);
  static const std::regex kInclude(R"([ \t]*#[ \t]*include[ \t]*"([^"]+)\")");
  struct Inc {
    std::string target;
    std::size_t line;
    std::size_t index;
  };
  std::vector<Inc> includes;
  for (std::sregex_iterator it(stripped.begin(), stripped.end(), kInclude),
       end;
       it != end; ++it) {
    includes.push_back({(*it)[1].str(),
                        line_of(stripped,
                                static_cast<std::size_t>(it->position(0))),
                        includes.size()});
  }
  for (const Inc& inc : includes) {
    if (inc.target.compare(0, 3, "../") == 0 ||
        inc.target.find("/../") != std::string::npos) {
      findings.push_back({"include-hygiene", path, inc.line,
                          "parent-relative include \"" + inc.target +
                              "\" — project includes are rooted at src/"});
    }
  }
  // Self-header-first: if a .cpp includes "<...>/<stem>.hpp", that include
  // must come before every other one, so the header is compiled stand-alone
  // at least once.
  if (ends_with(path, ".cpp")) {
    const std::string self = stem_of(path) + ".hpp";
    for (const Inc& inc : includes) {
      if (basename_of(inc.target) == self && inc.index != 0) {
        findings.push_back({"include-hygiene", path, inc.line,
                            "own header \"" + inc.target +
                                "\" must be the first include"});
        break;
      }
    }
  }
  return findings;
}

std::vector<Finding> check_metric_names(
    const std::string& path, const std::string& content,
    const std::vector<std::string>& extra_prefixes) {
  std::vector<Finding> findings;
  // Keep strings: the names under test are the string literals.
  const std::string stripped = strip_source(content, /*strip_strings=*/false);

  const auto check_name = [&](const std::string& name, std::size_t at) {
    if (!is_valid_site_name(name)) {
      findings.push_back({"metric-name", path, line_of(stripped, at),
                          "metric/event name '" + name +
                              "' does not match the grammar seg(.seg)+, "
                              "seg = [a-z0-9_]+"});
      return;
    }
    const std::string subsystem = name.substr(0, name.find('.'));
    static const char* kBuiltin[] = {"serve", "pipeline", "pool", "io",
                                     "process"};
    for (const char* b : kBuiltin) {
      if (subsystem == b) return;
    }
    for (const std::string& p : extra_prefixes) {
      if (subsystem == p) return;
    }
    findings.push_back({"metric-name", path, line_of(stripped, at),
                        "metric/event name '" + name +
                            "' uses unregistered prefix '" + subsystem +
                            ".' — declare it with `metric-prefix " +
                            subsystem + "` in the lint config"});
  };

  // Metric macros: the name is the string-literal first argument.
  static const std::regex kMetricMacro(
      R"re((?:OBS_COUNT|OBS_GAUGE_ADD|OBS_GAUGE_SET|OBS_HIST_MS|)re"
      R"re(OBS_WINDOW_COUNT|OBS_WINDOW_HIST_MS)\s*\(\s*"([^"]+)")re");
  for (std::sregex_iterator it(stripped.begin(), stripped.end(),
                               kMetricMacro),
       end;
       it != end; ++it) {
    check_name((*it)[1].str(), static_cast<std::size_t>(it->position(0)));
  }
  // Event sites: the name is the third argument of OBS_EVENT or of a
  // direct EventRecord construction (the declaration itself has no
  // literal there, so it never matches).
  static const std::regex kEventSite(
      R"re((?:OBS_EVENT|EventRecord(?:\s+\w+)?)\s*\(\s*[^,;]*,\s*[^,;]*,\s*)re"
      R"re("([^"]+)")re");
  for (std::sregex_iterator it(stripped.begin(), stripped.end(), kEventSite),
       end;
       it != end; ++it) {
    check_name((*it)[1].str(), static_cast<std::size_t>(it->position(0)));
  }
  return findings;
}

bool is_valid_site_name(const std::string& name) {
  static const std::regex kSite(R"([a-z0-9_]+(\.[a-z0-9_]+)+)");
  return std::regex_match(name, kSite);
}

std::vector<Finding> check_fault_sites(const std::vector<FileContent>& files,
                                       const std::string& registry_path,
                                       const std::string& registry_content) {
  std::vector<Finding> findings;

  // Registry: one site per non-comment line.
  std::map<std::string, std::size_t> registry;  // name -> line
  {
    std::istringstream in(registry_content);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream fields(line);
      std::string name;
      if (!(fields >> name)) continue;
      if (!is_valid_site_name(name)) {
        findings.push_back({"fault-site", registry_path, lineno,
                            "registry entry '" + name +
                                "' does not match the IVT_FAULTS site "
                                "grammar seg(.seg)+, seg = [a-z0-9_]+"});
        continue;
      }
      if (!registry.emplace(name, lineno).second) {
        findings.push_back({"fault-site", registry_path, lineno,
                            "site '" + name +
                                "' declared more than once in the registry"});
      }
    }
  }

  // Code: every FAULT_POINT / FAULT_POINT_MUTATE use with a literal name.
  struct Use {
    std::string file;
    std::size_t line;
  };
  std::map<std::string, std::vector<Use>> uses;
  static const std::regex kSiteUse(
      R"(FAULT_POINT(?:_MUTATE)?\s*\(\s*"([^"]+)\")");
  for (const FileContent& f : files) {
    const std::string stripped = strip_source(f.content,
                                              /*strip_strings=*/false);
    for (std::sregex_iterator it(stripped.begin(), stripped.end(), kSiteUse),
         end;
         it != end; ++it) {
      const std::string name = (*it)[1].str();
      const std::size_t line =
          line_of(stripped, static_cast<std::size_t>(it->position(0)));
      if (!is_valid_site_name(name)) {
        findings.push_back({"fault-site", f.path, line,
                            "site '" + name +
                                "' does not match the IVT_FAULTS site "
                                "grammar seg(.seg)+, seg = [a-z0-9_]+"});
        continue;
      }
      uses[name].push_back({f.path, line});
    }
  }

  for (const auto& [name, where] : uses) {
    if (registry.find(name) == registry.end()) {
      findings.push_back({"fault-site", where.front().file,
                          where.front().line,
                          "site '" + name + "' is not declared in " +
                              (registry_path.empty() ? "the registry"
                                                     : registry_path)});
    }
    for (std::size_t i = 1; i < where.size(); ++i) {
      findings.push_back({"fault-site", where[i].file, where[i].line,
                          "site '" + name +
                              "' is instrumented more than once (first at " +
                              where.front().file + ":" +
                              std::to_string(where.front().line) +
                              ") — sites are unique identities"});
    }
  }
  for (const auto& [name, lineno] : registry) {
    if (uses.find(name) == uses.end()) {
      findings.push_back({"fault-site", registry_path, lineno,
                          "registered site '" + name +
                              "' has no FAULT_POINT in the scanned files"});
    }
  }
  return findings;
}

Report run_rules(const std::vector<FileContent>& files, const Config& config,
                 const std::string& registry_content) {
  std::vector<Finding> all;
  for (const FileContent& f : files) {
    for (auto&& v : check_bare_throw(f.path, f.content)) {
      all.push_back(std::move(v));
    }
    for (auto&& v : check_mutex_guard(f.path, f.content)) {
      all.push_back(std::move(v));
    }
    for (auto&& v : check_include_hygiene(f.path, f.content)) {
      all.push_back(std::move(v));
    }
    for (auto&& v :
         check_metric_names(f.path, f.content, config.metric_prefixes)) {
      all.push_back(std::move(v));
    }
  }
  if (!config.registry_path.empty()) {
    for (auto&& v : check_fault_sites(files, config.registry_path,
                                      registry_content)) {
      all.push_back(std::move(v));
    }
  }

  Report report;
  for (Finding& f : all) {
    if (is_exempt(config, f.rule, f.file)) {
      ++report.exempted;
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.file != b.file ? a.file < b.file
                                             : a.line < b.line;
                   });
  for (const Finding& f : report.findings) ++report.by_rule[f.rule];
  return report;
}

std::string report_to_json(const Report& report) {
  std::ostringstream out;
  out << "{\"findings\": " << report.findings.size()
      << ", \"exempted\": " << report.exempted << ", \"by_rule\": {";
  bool first = true;
  for (const auto& [rule, count] : report.by_rule) {
    if (!first) out << ", ";
    first = false;
    out << '"' << rule << "\": " << count;
  }
  out << "}}";
  return out.str();
}

int lint_main(const std::vector<std::string>& args) {
  namespace fs = std::filesystem;
  std::string config_path;
  std::string registry_path;
  bool json = false;
  std::vector<std::string> roots;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--config" && i + 1 < args.size()) {
      config_path = args[++i];
    } else if (a == "--registry" && i + 1 < args.size()) {
      registry_path = args[++i];
    } else if (a == "--json") {
      json = true;
    } else if (a == "--help") {
      std::cout << "usage: ivt-lint [--config FILE] [--registry FILE] "
                   "[--json] PATH...\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "ivt-lint: unknown option '" << a << "'\n";
      return 2;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty()) {
    std::cerr << "ivt-lint: no paths given (try --help)\n";
    return 2;
  }

  auto read_file = [](const std::string& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
  };

  Config config;
  if (!config_path.empty()) {
    std::string content;
    if (!read_file(config_path, content)) {
      std::cerr << "ivt-lint: cannot read config " << config_path << "\n";
      return 2;
    }
    std::vector<std::string> errors;
    config = parse_config(content, &errors);
    for (const std::string& e : errors) {
      std::cerr << "ivt-lint: " << config_path << ": " << e << "\n";
    }
    if (!errors.empty()) return 2;
  }
  if (!registry_path.empty()) config.registry_path = registry_path;

  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (!it->is_regular_file()) continue;
        const std::string p = it->path().generic_string();
        if (ends_with(p, ".cpp") || ends_with(p, ".hpp")) {
          paths.push_back(p);
        }
      }
    } else {
      paths.push_back(root);
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<FileContent> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    FileContent f;
    f.path = p;
    if (!read_file(p, f.content)) {
      std::cerr << "ivt-lint: cannot read " << p << "\n";
      return 2;
    }
    files.push_back(std::move(f));
  }

  std::string registry_content;
  if (!config.registry_path.empty() &&
      !read_file(config.registry_path, registry_content)) {
    std::cerr << "ivt-lint: cannot read registry " << config.registry_path
              << "\n";
    return 2;
  }

  const Report report = run_rules(files, config, registry_content);
  std::ostream& finding_out = json ? std::cerr : std::cout;
  for (const Finding& f : report.findings) {
    finding_out << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
  }
  if (json) {
    std::cout << report_to_json(report) << "\n";
  } else {
    std::cout << "ivt-lint: " << files.size() << " file(s), "
              << report.findings.size() << " finding(s), " << report.exempted
              << " exempted\n";
  }
  return report.findings.empty() ? 0 : 1;
}

}  // namespace ivt::lint
