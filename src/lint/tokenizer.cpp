#include "lint/tokenizer.hpp"

#include <cctype>

namespace ivt::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators, longest first within each head character.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::",  "->", ".*", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "##",
};

/// Cursor over the source that folds backslash-newline splices into
/// nothing and tracks the current line.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) { skip_splices(); }

  bool done() const { return i_ >= s_.size(); }
  char peek(std::size_t ahead = 0) const {
    // Splices are rare; peek() is only used for 1-2 char lookahead where
    // a splice in between would at worst split a punctuator — harmless.
    return i_ + ahead < s_.size() ? s_[i_ + ahead] : '\0';
  }
  std::size_t line() const { return line_; }

  void advance() {
    if (done()) return;
    if (s_[i_] == '\n') ++line_;
    ++i_;
    skip_splices();
  }

 private:
  void skip_splices() {
    while (i_ + 1 < s_.size() && s_[i_] == '\\' &&
           (s_[i_ + 1] == '\n' ||
            (s_[i_ + 1] == '\r' && i_ + 2 < s_.size() && s_[i_ + 2] == '\n'))) {
      i_ += s_[i_ + 1] == '\r' ? 3 : 2;
      ++line_;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
  std::size_t line_ = 1;
};

/// Reads a quoted string/char literal body (cursor past the opening
/// quote), decoding nothing but honouring escapes so a \" does not end
/// the literal. Unterminated literals stop at end of line.
std::string read_quoted(Cursor& c, char quote) {
  std::string out;
  while (!c.done() && c.peek() != quote && c.peek() != '\n') {
    if (c.peek() == '\\') {
      out += c.peek();
      c.advance();
      if (c.done() || c.peek() == '\n') break;
    }
    out += c.peek();
    c.advance();
  }
  if (!c.done() && c.peek() == quote) c.advance();
  return out;
}

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  Cursor c(source);
  bool line_start = true;  // only whitespace seen since the last newline

  while (!c.done()) {
    const char ch = c.peek();

    if (ch == '\n') {
      line_start = true;
      c.advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
      c.advance();
      continue;
    }
    if (ch == '/' && c.peek(1) == '/') {
      while (!c.done() && c.peek() != '\n') c.advance();
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.advance();
      c.advance();
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) c.advance();
      if (!c.done()) {
        c.advance();
        c.advance();
      }
      continue;
    }

    // Preprocessor directive at line start: #include becomes a dedicated
    // token; every other directive's tokens flow through normally (a
    // macro definition's body is real code worth scanning).
    if (ch == '#' && line_start) {
      const std::size_t line = c.line();
      c.advance();  // '#'
      while (!c.done() && (c.peek() == ' ' || c.peek() == '\t')) c.advance();
      std::string directive;
      while (!c.done() && ident_char(c.peek())) {
        directive += c.peek();
        c.advance();
      }
      if (directive == "include" || directive == "include_next") {
        while (!c.done() && (c.peek() == ' ' || c.peek() == '\t')) c.advance();
        Token token;
        token.line = line;
        if (c.peek() == '"') {
          c.advance();
          token.kind = Token::Kind::IncludeQuoted;
          token.text = read_quoted(c, '"');
          tokens.push_back(std::move(token));
        } else if (c.peek() == '<') {
          c.advance();
          token.kind = Token::Kind::IncludeAngle;
          while (!c.done() && c.peek() != '>' && c.peek() != '\n') {
            token.text += c.peek();
            c.advance();
          }
          if (!c.done() && c.peek() == '>') c.advance();
          tokens.push_back(std::move(token));
        }
        // Computed includes (#include MACRO) fall through: nothing to do.
      } else {
        tokens.push_back({Token::Kind::Punct, "#", line});
        if (!directive.empty()) {
          tokens.push_back({Token::Kind::Ident, directive, line});
        }
      }
      line_start = false;
      continue;
    }
    line_start = false;

    // Raw string literal: R"delim( ... )delim" — also u8R/LR/uR/UR forms
    // (the prefix identifier ending in R was consumed as part of the
    // identifier scan below, so handle the plain R case here and the
    // prefixed case in the identifier branch).
    if (ch == 'R' && c.peek(1) == '"') {
      // Confirm R starts an identifier position (not the tail of one):
      // the previous token must not be an identifier glued to this R —
      // the tokenizer always consumes maximal identifiers, so reaching
      // here means R begins a fresh token.
      const std::size_t line = c.line();
      c.advance();  // R
      c.advance();  // "
      std::string delim;
      while (!c.done() && c.peek() != '(' && c.peek() != '\n') {
        delim += c.peek();
        c.advance();
      }
      if (!c.done()) c.advance();  // (
      const std::string close = ")" + delim + "\"";
      std::string body;
      while (!c.done()) {
        // Match close sequence.
        bool matched = true;
        for (std::size_t k = 0; k < close.size(); ++k) {
          if (c.peek(k) != close[k]) {
            matched = false;
            break;
          }
        }
        if (matched) {
          for (std::size_t k = 0; k < close.size(); ++k) c.advance();
          break;
        }
        body += c.peek();
        c.advance();
      }
      tokens.push_back({Token::Kind::Str, std::move(body), line});
      continue;
    }

    if (ident_start(ch)) {
      const std::size_t line = c.line();
      std::string text;
      while (!c.done() && ident_char(c.peek())) {
        text += c.peek();
        c.advance();
      }
      // Encoding-prefixed literals: u8"...", L'x', uR"(...)", etc.
      if ((c.peek() == '"' || c.peek() == '\'') &&
          (text == "u8" || text == "u" || text == "U" || text == "L")) {
        const char quote = c.peek();
        c.advance();
        tokens.push_back({quote == '"' ? Token::Kind::Str : Token::Kind::Chr,
                          read_quoted(c, quote), line});
        continue;
      }
      if (c.peek() == '"' && !text.empty() && text.back() == 'R' &&
          (text == "u8R" || text == "uR" || text == "UR" || text == "LR")) {
        c.advance();  // "
        std::string delim;
        while (!c.done() && c.peek() != '(' && c.peek() != '\n') {
          delim += c.peek();
          c.advance();
        }
        if (!c.done()) c.advance();  // (
        const std::string close = ")" + delim + "\"";
        std::string body;
        while (!c.done()) {
          bool matched = true;
          for (std::size_t k = 0; k < close.size(); ++k) {
            if (c.peek(k) != close[k]) {
              matched = false;
              break;
            }
          }
          if (matched) {
            for (std::size_t k = 0; k < close.size(); ++k) c.advance();
            break;
          }
          body += c.peek();
          c.advance();
        }
        tokens.push_back({Token::Kind::Str, std::move(body), line});
        continue;
      }
      tokens.push_back({Token::Kind::Ident, std::move(text), line});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(ch)) != 0 ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))) != 0)) {
      // pp-number: digits, idents, ', and exponent signs.
      const std::size_t line = c.line();
      std::string text;
      while (!c.done()) {
        const char d = c.peek();
        if (ident_char(d) || d == '.' || d == '\'') {
          text += d;
          c.advance();
          continue;
        }
        if ((d == '+' || d == '-') && !text.empty() &&
            (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
             text.back() == 'P')) {
          text += d;
          c.advance();
          continue;
        }
        break;
      }
      tokens.push_back({Token::Kind::Number, std::move(text), line});
      continue;
    }

    if (ch == '"') {
      const std::size_t line = c.line();
      c.advance();
      tokens.push_back({Token::Kind::Str, read_quoted(c, '"'), line});
      continue;
    }
    if (ch == '\'') {
      const std::size_t line = c.line();
      c.advance();
      tokens.push_back({Token::Kind::Chr, read_quoted(c, '\''), line});
      continue;
    }

    // Punctuator: longest match from the table, else the single char.
    {
      const std::size_t line = c.line();
      std::string text(1, ch);
      for (const char* p : kPuncts) {
        const std::size_t n = std::char_traits<char>::length(p);
        bool matched = true;
        for (std::size_t k = 0; k < n; ++k) {
          if (c.peek(k) != p[k]) {
            matched = false;
            break;
          }
        }
        if (matched) {
          text = p;
          break;
        }
      }
      for (std::size_t k = 0; k < text.size(); ++k) c.advance();
      tokens.push_back({Token::Kind::Punct, std::move(text), line});
    }
  }
  return tokens;
}

std::size_t match_brace(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], "{")) ++depth;
    if (is_punct(tokens[i], "}") && --depth == 0) return i;
  }
  return tokens.size();
}

std::size_t match_paren(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], "(")) ++depth;
    if (is_punct(tokens[i], ")") && --depth == 0) return i;
  }
  return tokens.size();
}

std::vector<TokenClassSpan> token_class_spans(
    const std::vector<Token>& tokens) {
  std::vector<TokenClassSpan> spans;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!(is_ident(t, "class") || is_ident(t, "struct") ||
          is_ident(t, "union"))) {
      continue;
    }
    // `enum class` / `enum struct` are scoped enums, not records.
    if (i > 0 && is_ident(tokens[i - 1], "enum")) continue;
    // Scan the head: attribute macros with balanced parens are skipped,
    // the record name is the last plain identifier before the body or
    // base-clause. Any other punctuation (`;` forward decl, `>` template
    // parameter, `(` function param, `,`) means this is not a definition.
    std::string name;
    std::size_t j = i + 1;
    bool is_definition = false;
    bool saw_base_clause = false;
    while (j < tokens.size()) {
      const Token& h = tokens[j];
      if (h.kind == Token::Kind::Ident) {
        if (j + 1 < tokens.size() && is_punct(tokens[j + 1], "(")) {
          // Attribute-like macro: IVT_CAPABILITY("mutex"), alignas(64).
          j = match_paren(tokens, j + 1) + 1;
          continue;
        }
        if (h.text != "final") name = h.text;
        ++j;
        continue;
      }
      if (is_punct(h, "::")) {  // out-of-line nested definition
        ++j;
        continue;
      }
      if (is_punct(h, ":")) {
        saw_base_clause = true;
        break;
      }
      if (is_punct(h, "{")) {
        is_definition = true;
        break;
      }
      break;  // ';', '>', '(', ',', '=' ... not a record definition
    }
    if (saw_base_clause) {
      // Skip the base clause to the body brace, tracking parens so a
      // base like Base<decltype(f(x))> cannot derail us.
      int paren = 0;
      for (++j; j < tokens.size(); ++j) {
        if (is_punct(tokens[j], "(")) ++paren;
        if (is_punct(tokens[j], ")")) --paren;
        if (paren == 0 && is_punct(tokens[j], "{")) {
          is_definition = true;
          break;
        }
        if (paren == 0 && is_punct(tokens[j], ";")) break;
      }
    }
    if (!is_definition || j >= tokens.size()) continue;
    TokenClassSpan span;
    span.name = name;
    span.open = j;
    span.close = match_brace(tokens, j);
    spans.push_back(std::move(span));
  }
  return spans;
}

const TokenClassSpan* innermost_class(
    const std::vector<TokenClassSpan>& spans, std::size_t at) {
  const TokenClassSpan* best = nullptr;
  for (const TokenClassSpan& s : spans) {
    if (s.open < at && at < s.close &&
        (best == nullptr || s.open > best->open)) {
      best = &s;
    }
  }
  return best;
}

bool read_string_concat(const std::vector<Token>& tokens, std::size_t& i,
                        std::string* out) {
  if (i >= tokens.size() || tokens[i].kind != Token::Kind::Str) return false;
  out->clear();
  while (i < tokens.size() && tokens[i].kind == Token::Kind::Str) {
    *out += tokens[i].text;
    ++i;
  }
  return true;
}

}  // namespace ivt::lint
