// ivt-lint: a standalone invariant checker for repo-specific contracts
// that the compiler cannot enforce.
//
// The rules codify conventions this codebase relies on for correctness:
//
//   bare-throw       Errors crossing a subsystem boundary must carry the
//                    src/errors taxonomy (category, severity, site), so
//                    raw `throw std::...` is banned outside the leaf math
//                    library (src/algo/, exempted in the config) — use
//                    IVT_THROW instead.
//   fault-site       Every FAULT_POINT / FAULT_POINT_MUTATE site must be
//                    declared exactly once in src/faultfx/fault_sites.registry
//                    and its name must match the IVT_FAULTS recipe grammar
//                    `seg(.seg)+` with seg = [a-z0-9_]+, so recipes can
//                    never silently name a site that does not exist.
//   mutex-guard      A class that owns a mutex must state which fields it
//                    protects: a std::mutex / support::Mutex member with
//                    no IVT_GUARDED_BY(that_mutex) field in the same
//                    class is a finding. Raw std::mutex members outside
//                    src/support/ are also findings — use the annotated
//                    support::Mutex so clang -Wthread-safety can check
//                    the contract.
//   include-hygiene  No parent-relative includes (#include "../...") —
//                    all project includes are rooted at src/. A .cpp that
//                    includes its own header must include it first, so
//                    every header is verified self-contained.
//   metric-name      Metric and event names (the string-literal first
//                    argument of OBS_COUNT / OBS_GAUGE_* / OBS_HIST_MS /
//                    OBS_WINDOW_*, the third argument of OBS_EVENT /
//                    EventRecord) must be lowercase dotted identifiers
//                    `seg(.seg)+` under a registered subsystem prefix, so
//                    dashboards and the Prometheus exposition never see a
//                    typo'd or orphaned namespace. serve/pipeline/pool/
//                    io/process are built in; others are declared with
//                    `metric-prefix` in the config.
//
// Since PR 10 the rules run over a real token stream (lint/tokenizer.hpp)
// instead of regexes on stripped text, so adjacent string-literal
// concatenation ("serve." "accept") can no longer evade the registry
// checks. The checker is still deliberately not a clang tool: it needs no
// compile_commands, runs in milliseconds, and the invariants above are
// all lexically decidable. Rules operate on (path, content) pairs so
// tests can feed fixture strings without touching the filesystem. The
// whole-program rules (module layering, lock-order, error-taxonomy
// exhaustiveness) live in lint/analyze.hpp.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace ivt::lint {

/// One rule violation at a source location.
struct Finding {
  std::string rule;     ///< rule id, e.g. "bare-throw"
  std::string file;     ///< path as given to the scanner
  std::size_t line = 0; ///< 1-based; 0 when the finding is file-level
  std::string message;
};

/// Parsed tools/ivt-lint.conf.
///
/// Line grammar (one directive per line, '#' starts a comment):
///   exempt <rule> <path-prefix>   suppress <rule> findings under prefix
///   registry <path>               fault-site registry location
///   metric-prefix <subsystem>     extra metric-name prefix (a trailing
///                                 '.' is accepted and stripped)
///   error-table <function>        error-taxonomy anchor: every used
///                                 errors::Category must appear in the
///                                 body of each such function
///   macro-call <MACRO> <func>     the analyzer treats an occurrence of
///                                 MACRO as a call to <func> (macros are
///                                 not expanded; this declares the edge)
struct Config {
  struct Exemption {
    std::string rule;
    std::string path_prefix;
  };
  std::vector<Exemption> exemptions;
  std::string registry_path;
  std::vector<std::string> metric_prefixes;
  std::vector<std::string> error_tables;
  std::map<std::string, std::vector<std::string>> macro_calls;
};

/// Parses a config file's content. Malformed directives are reported in
/// `errors` (one message per bad line); the rest of the file still parses.
Config parse_config(const std::string& content,
                    std::vector<std::string>* errors = nullptr);

/// True when `file` is exempt from `rule` under `config` (prefix match).
bool is_exempt(const Config& config, const std::string& rule,
               const std::string& file);

// ---- individual rules (pure: path + content in, findings out) ----------

std::vector<Finding> check_bare_throw(const std::string& path,
                                      const std::string& content);

std::vector<Finding> check_mutex_guard(const std::string& path,
                                       const std::string& content);

std::vector<Finding> check_include_hygiene(const std::string& path,
                                           const std::string& content);

/// Metric-name rule: `extra_prefixes` are the config's metric-prefix
/// declarations, added to the built-in set.
std::vector<Finding> check_metric_names(
    const std::string& path, const std::string& content,
    const std::vector<std::string>& extra_prefixes);

/// Fault-site rule needs the whole file set at once (exactly-once check):
/// every site used in code must appear in the registry, every registry
/// entry must be used by exactly one code site, and all names must match
/// the IVT_FAULTS grammar.
struct FileContent {
  std::string path;
  std::string content;
};
std::vector<Finding> check_fault_sites(const std::vector<FileContent>& files,
                                       const std::string& registry_path,
                                       const std::string& registry_content);

/// True when `name` matches the recipe-site grammar seg(.seg)+ with
/// seg = [a-z0-9_]+.
bool is_valid_site_name(const std::string& name);

// ---- whole-run driver ---------------------------------------------------

struct Report {
  std::vector<Finding> findings;           ///< after exemptions
  std::size_t exempted = 0;                ///< findings suppressed by config
  std::map<std::string, std::size_t> by_rule;  ///< counts of `findings`
};

/// Runs every rule over the file set, applying config exemptions.
Report run_rules(const std::vector<FileContent>& files, const Config& config,
                 const std::string& registry_content);

/// Renders the machine-readable summary consumed by the bench robustness
/// counters: {"findings": N, "exempted": M, "by_rule": {...}}.
std::string report_to_json(const Report& report);

// The CLI entry point (analyze_main) lives in lint/analyze.hpp: the
// binary is ivt-analyze, which runs these per-file rules plus the
// whole-program passes.

// ---- helpers exposed for tests ------------------------------------------

/// Replaces comments and string/char literals with spaces (newlines kept),
/// so scanners never match inside them.
std::string strip_comments_and_strings(const std::string& content);

}  // namespace ivt::lint
