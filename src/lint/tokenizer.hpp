// A dependency-free C++ tokenizer for ivt-analyze.
//
// The PR-5 checker matched regexes over comment-stripped source; that was
// enough for single-line invariants but cannot see acquisition *order*,
// adjacent string-literal concatenation ("serve." "accept"), or the
// include graph. This tokenizer produces a flat token stream with line
// numbers so every rule reasons over real lexical structure:
//
//   - comments (//, /* */) are skipped entirely,
//   - string literals (including raw strings R"delim(...)delim" and
//     escape sequences) become single Str tokens carrying their *content*,
//   - #include directives become IncludeQuoted / IncludeAngle tokens
//     carrying the target path,
//   - backslash-newline splices are treated as whitespace,
//   - multi-character punctuators (::, ->, <<=, ...) are single tokens,
//     longest match first.
//
// It is deliberately not a preprocessor: macros are not expanded (rules
// that care about macro *uses* match the call spelling; rules that care
// about expansions are told via `macro-call` config directives which
// functions a macro invokes).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ivt::lint {

struct Token {
  enum class Kind {
    Ident,         ///< identifiers and keywords
    Number,        ///< pp-numbers (integer/float literals, 0x..., 1'000)
    Str,           ///< string literal; text = decoded content (no quotes)
    Chr,           ///< character literal; text = raw content (no quotes)
    Punct,         ///< operator / punctuator, longest-match
    IncludeQuoted, ///< #include "..."; text = target path
    IncludeAngle,  ///< #include <...>; text = target path
  };
  Kind kind = Kind::Punct;
  std::string text;
  std::size_t line = 0;  ///< 1-based line of the token's first character
};

/// Tokenizes C++ source. Never fails: malformed input produces a
/// best-effort stream (an unterminated literal runs to end of line).
std::vector<Token> tokenize(const std::string& source);

/// True when the token is an identifier with exactly this text.
inline bool is_ident(const Token& token, const char* text) {
  return token.kind == Token::Kind::Ident && token.text == text;
}

/// True when the token is a punctuator with exactly this text.
inline bool is_punct(const Token& token, const char* text) {
  return token.kind == Token::Kind::Punct && token.text == text;
}

// ---- structure helpers shared by the rules ------------------------------

/// Index of the matching '}' for the '{' at `open` (token indices), or
/// tokens.size() when unbalanced.
std::size_t match_brace(const std::vector<Token>& tokens, std::size_t open);

/// Index of the matching ')' for the '(' at `open`, or tokens.size().
std::size_t match_paren(const std::vector<Token>& tokens, std::size_t open);

/// A class/struct/union body [open, close] in token indices. Nested
/// records appear after their enclosing record (document order).
struct TokenClassSpan {
  std::string name;       ///< empty for anonymous records
  std::size_t open = 0;   ///< index of '{'
  std::size_t close = 0;  ///< index of matching '}'
};

/// Finds record-type bodies. `enum class` is not a record; attribute
/// macros between the keyword and the name (IVT_CAPABILITY(...)) are
/// skipped; base-clauses are skipped up to the body brace.
std::vector<TokenClassSpan> token_class_spans(
    const std::vector<Token>& tokens);

/// The innermost span containing token index `at`, or nullptr.
const TokenClassSpan* innermost_class(
    const std::vector<TokenClassSpan>& spans, std::size_t at);

/// Reads a run of adjacent string-literal tokens starting at `i` and
/// returns their concatenation ("serve." "accept" -> "serve.accept"),
/// leaving `i` at the first non-string token. Returns false when
/// tokens[i] is not a string literal.
bool read_string_concat(const std::vector<Token>& tokens, std::size_t& i,
                        std::string* out);

}  // namespace ivt::lint
