#include <string>
#include <vector>

#include "lint/analyze.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ivt::lint::analyze_main(args);
}
