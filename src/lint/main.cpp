#include <string>
#include <vector>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ivt::lint::lint_main(args);
}
