// ivt-analyze: whole-program passes over the tokenized tree.
//
// On top of the per-file rules in lint/lint.hpp, the analyzer builds two
// graphs from the token streams and checks three global contracts:
//
//   layering         src/ modules form a declared DAG (tools/
//                    ivt-layers.conf lists layers bottom-up); a module
//                    may only include modules in strictly lower layers
//                    (or itself). Any back-edge or same-layer edge is a
//                    finding, as is an undeclared module.
//   lock-order       Every support::MutexLock acquisition scope is
//                    extracted per function; acquisitions made while
//                    other locks are held, plus lock sets propagated
//                    through direct calls, form a lock-acquisition
//                    graph. A cycle is a potential deadlock. Lambda
//                    bodies are analyzed as separate anonymous functions
//                    (their execution is deferred, so lexical nesting
//                    does not order their locks under the creator's).
//   error-taxonomy   Every errors::Category thrown anywhere (IVT_THROW /
//                    IVT_THROW_FATAL / direct Error construction) must
//                    be switched on in each `error-table` anchor
//                    function (the CLI exit-code table and the serve
//                    wire-category mapper), so a new category can never
//                    silently fall into a default branch.
//
// The acyclic lock graph doubles as the source of truth for the runtime
// cross-check: --emit-ranks renders src/support/lock_ranks.inc (rank =
// (topological level + 1) * 10), and the analyzer verifies every
// support::Mutex declaration binds its generated LockRank constant, so
// the static graph and the runtime rank checker cannot drift apart.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace ivt::lint {

// ---- module layering ----------------------------------------------------

/// Parsed tools/ivt-layers.conf: `layer <module>...` lines, bottom-most
/// layer first. '#' starts a comment.
struct LayersConfig {
  std::vector<std::vector<std::string>> layers;  ///< bottom-up
  std::map<std::string, std::size_t> level;      ///< module -> layer index
};
LayersConfig parse_layers(const std::string& content,
                          std::vector<std::string>* errors = nullptr);

/// `src/<module>/...` -> module; for fixture trees any `.../src/<m>/...`
/// works. Files with no module (no src/ component, flat path) map to "".
std::string module_of(const std::string& path);

/// One quoted project include, aggregated per (from, to) module pair.
struct IncludeEdge {
  std::string from_module;
  std::string to_module;
  std::size_t count = 0;   ///< number of include sites
  std::string via_file;    ///< witness site
  std::size_t via_line = 0;
};

struct IncludeGraph {
  std::set<std::string> modules;    ///< every module seen in the file set
  std::vector<IncludeEdge> edges;   ///< deduped, sorted, self-edges dropped
};

IncludeGraph build_include_graph(const std::vector<FileContent>& files);

std::vector<Finding> check_layering(const IncludeGraph& graph,
                                    const LayersConfig& layers);

/// Graphviz digraph of the module include graph, clustered by layer.
std::string include_graph_dot(const IncludeGraph& graph,
                              const LayersConfig& layers);

// ---- error-taxonomy exhaustiveness --------------------------------------

/// For each config `error-table` anchor function, every Category thrown
/// anywhere in the file set must appear in that function's body.
std::vector<Finding> check_error_taxonomy(const std::vector<FileContent>& files,
                                          const Config& config);

// ---- lock-order analysis ------------------------------------------------

/// Results of the whole-program lock pass. Lock identities are
/// `<module>_<Class>_<member>` for mutex members and
/// `<module>_<filestem>_<name>` for function/namespace-scope mutexes.
struct LockAnalysis {
  struct Edge {
    std::string from;  ///< identity held first
    std::string to;    ///< identity acquired under it
    std::string via;   ///< witness: "file:line (function)"
  };
  std::vector<std::string> locks;   ///< all identities, sorted
  std::map<std::string, std::string> display;  ///< identity -> a::b::c form
  std::vector<Edge> edges;          ///< deduped, sorted
  std::map<std::string, int> rank;  ///< identity -> rank; empty on cycles
  std::vector<Finding> findings;    ///< lock-order + lock-rank findings
};

/// `config` supplies macro-call edges (OBS_* macros expand to registry
/// calls the tokenizer cannot see). Files under src/support/ contribute
/// no rules findings but their function bodies still feed the call graph.
LockAnalysis analyze_locks(const std::vector<FileContent>& files,
                           const Config& config);

/// Renders src/support/lock_ranks.inc: one
/// `IVT_LOCK_RANK(k_<identity>, <rank>, "<display>")` per lock, sorted
/// by (rank, identity). Empty string when the graph has cycles.
std::string ranks_to_inc(const LockAnalysis& locks);

/// Graphviz digraph of the lock-acquisition graph with rank labels.
std::string lock_graph_dot(const LockAnalysis& locks);

// ---- whole-run driver ---------------------------------------------------

struct Analysis {
  Report report;          ///< per-file + whole-program findings, post-exemption
  IncludeGraph includes;
  LockAnalysis locks;
  std::size_t layer_violations = 0;  ///< post-exemption "layering" count
};

Analysis run_analysis(const std::vector<FileContent>& files,
                      const Config& config, const LayersConfig& layers,
                      const std::string& registry_content);

/// {"findings": N, "exempted": M, "by_rule": {...}, "include_edges": E,
///  "layer_violations": V, "lock_graph_nodes": n, "lock_graph_edges": e}
std::string analysis_to_json(const Analysis& analysis);

/// Full CLI:
///   ivt-analyze [--config F] [--layers F] [--registry F] [--json]
///               [--emit-ranks] [--dot-includes F] [--dot-locks F] PATH...
/// Directories are walked recursively for .cpp/.hpp files. Exit codes:
/// 0 clean, 1 findings, 2 usage/config/IO error.
int analyze_main(const std::vector<std::string>& args);

}  // namespace ivt::lint
