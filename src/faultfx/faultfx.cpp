#include "faultfx/faultfx.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <unordered_map>

#include "obs/obs.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace ivt::faultfx {

namespace detail {

/// One registered failpoint. The armed spec is swapped atomically;
/// superseded specs are retired (kept alive until process exit) so a
/// concurrent evaluation never dereferences a freed spec.
struct Site {
  std::atomic<const FaultSpec*> spec{nullptr};
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> triggered{0};
};

}  // namespace detail

namespace {

/// Count of armed sites; any_armed() gates the hot path on it.
std::atomic<std::size_t> g_armed_sites{0};

struct SiteRegistry {
  support::Mutex mutex{support::LockRank::k_faultfx_SiteRegistry_mutex};
  std::unordered_map<std::string, std::unique_ptr<detail::Site>> sites
      IVT_GUARDED_BY(mutex);
  std::vector<std::unique_ptr<FaultSpec>> retired_specs
      IVT_GUARDED_BY(mutex);

  static SiteRegistry& instance() {
    static SiteRegistry* registry = new SiteRegistry();  // never destroyed
    return *registry;
  }

  detail::Site& site(const std::string& name) {
    const support::MutexLock lock(mutex);
    std::unique_ptr<detail::Site>& slot = sites[name];
    if (!slot) slot = std::make_unique<detail::Site>();
    return *slot;
  }

  detail::Site* find(const std::string& name) {
    const support::MutexLock lock(mutex);
    const auto it = sites.find(name);
    return it == sites.end() ? nullptr : it->second.get();
  }
};

/// splitmix64: the trigger decision for evaluation n of a site is
/// hash(seed, n) — deterministic, scheduling-independent.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

bool should_trigger(const FaultSpec& spec, std::uint64_t evaluation) {
  if (spec.every != 0) return (evaluation + 1) % spec.every == 0;
  if (spec.probability >= 1.0) return true;
  if (spec.probability <= 0.0) return false;
  const std::uint64_t h = splitmix64(spec.seed * 0x2545F4914F6CDD1DULL +
                                     evaluation);
  const double uniform =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return uniform < spec.probability;
}

void count_trigger_metrics(const char* name) {
#if IVT_OBS_ENABLED
  obs::Registry::instance().counter("faultfx.triggered").add(1);
  obs::Registry::instance()
      .counter(std::string("faultfx.triggered.") + name)
      .add(1);
#else
  (void)name;
#endif
}

errors::Result<FaultSpec> parse_one(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t colon = text.find(':', start);
    parts.push_back(text.substr(
        start, colon == std::string::npos ? std::string::npos
                                          : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  const auto fail = [&text](const std::string& why) {
    return errors::Error(errors::Category::Spec,
                         "bad fault spec '" + text + "': " + why);
  };
  if (parts.size() < 2 || parts[0].empty()) {
    return fail("expected <site>:<action>[:<probability>][:<key>=<value>]");
  }
  FaultSpec spec;
  spec.site = parts[0];
  if (parts[1] == "error") {
    spec.action = Action::Error;
  } else if (parts[1] == "corrupt") {
    spec.action = Action::Corrupt;
  } else if (parts[1] == "delay") {
    spec.action = Action::Delay;
  } else {
    return fail("unknown action '" + parts[1] + "'");
  }
  std::size_t next = 2;
  if (next < parts.size() && parts[next].find('=') == std::string::npos) {
    char* end = nullptr;
    spec.probability = std::strtod(parts[next].c_str(), &end);
    if (end == parts[next].c_str() || *end != '\0' ||
        spec.probability < 0.0 || spec.probability > 1.0) {
      return fail("bad probability '" + parts[next] + "'");
    }
    ++next;
  }
  for (; next < parts.size(); ++next) {
    const std::size_t eq = parts[next].find('=');
    if (eq == std::string::npos) {
      return fail("expected key=value, got '" + parts[next] + "'");
    }
    const std::string key = parts[next].substr(0, eq);
    const std::string value = parts[next].substr(eq + 1);
    char* end = nullptr;
    if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "every") {
      spec.every = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "delay_us") {
      spec.delay_us = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "cat") {
      if (value == "io") {
        spec.category = errors::Category::Io;
      } else if (value == "format") {
        spec.category = errors::Category::Format;
      } else if (value == "decode") {
        spec.category = errors::Category::Decode;
      } else if (value == "spec") {
        spec.category = errors::Category::Spec;
      } else if (value == "resource") {
        spec.category = errors::Category::Resource;
      } else if (value == "overloaded") {
        spec.category = errors::Category::Overloaded;
      } else if (value == "timeout") {
        spec.category = errors::Category::Timeout;
      } else if (value == "internal") {
        spec.category = errors::Category::Internal;
      } else {
        return fail("unknown category '" + value + "'");
      }
      continue;
    } else {
      return fail("unknown key '" + key + "'");
    }
    if (end == value.c_str() || *end != '\0') {
      return fail("bad integer '" + value + "' for " + key);
    }
  }
  return spec;
}

}  // namespace

errors::Result<std::vector<FaultSpec>> parse_recipe(
    const std::string& recipe) {
  std::vector<FaultSpec> specs;
  std::size_t start = 0;
  while (start <= recipe.size()) {
    const std::size_t comma = recipe.find(',', start);
    const std::string part = recipe.substr(
        start,
        comma == std::string::npos ? std::string::npos : comma - start);
    if (!part.empty()) {
      errors::Result<FaultSpec> one = parse_one(part);
      if (!one.ok()) return one.error();
      specs.push_back(std::move(one).value());
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return specs;
}

void arm(const FaultSpec& spec) {
  if (!enabled()) return;
  SiteRegistry& registry = SiteRegistry::instance();
  detail::Site& site = registry.site(spec.site);
  auto owned = std::make_unique<FaultSpec>(spec);
  const FaultSpec* raw = owned.get();
  {
    const support::MutexLock lock(registry.mutex);
    registry.retired_specs.push_back(std::move(owned));
  }
  if (site.spec.exchange(raw, std::memory_order_acq_rel) == nullptr) {
    g_armed_sites.fetch_add(1, std::memory_order_release);
  }
}

std::size_t arm(const std::string& recipe) {
  errors::Result<std::vector<FaultSpec>> specs = parse_recipe(recipe);
  std::vector<FaultSpec> parsed = std::move(specs).value();  // throws on error
  if (!enabled()) return 0;
  for (const FaultSpec& spec : parsed) arm(spec);
  return parsed.size();
}

std::size_t arm_from_env() {
  const char* env = std::getenv("IVT_FAULTS");
  if (env == nullptr || *env == '\0') return 0;
  return arm(env);
}

void disarm_all() {
  SiteRegistry& registry = SiteRegistry::instance();
  const support::MutexLock lock(registry.mutex);
  for (auto& [name, site] : registry.sites) {
    if (site->spec.exchange(nullptr, std::memory_order_acq_rel) != nullptr) {
      g_armed_sites.fetch_sub(1, std::memory_order_release);
    }
  }
}

bool any_armed() {
  return g_armed_sites.load(std::memory_order_acquire) != 0;
}

std::uint64_t triggered(const std::string& site) {
  detail::Site* s = SiteRegistry::instance().find(site);
  return s == nullptr ? 0 : s->triggered.load(std::memory_order_relaxed);
}

std::uint64_t evaluations(const std::string& site) {
  detail::Site* s = SiteRegistry::instance().find(site);
  return s == nullptr ? 0 : s->evaluations.load(std::memory_order_relaxed);
}

namespace detail {

Site& site(const char* name) { return SiteRegistry::instance().site(name); }

void evaluate(Site& site, const char* name, void* data, std::size_t size) {
  const FaultSpec* spec = site.spec.load(std::memory_order_acquire);
  if (spec == nullptr) return;
  const std::uint64_t n =
      site.evaluations.fetch_add(1, std::memory_order_relaxed);
  if (!should_trigger(*spec, n)) return;
  site.triggered.fetch_add(1, std::memory_order_relaxed);
  count_trigger_metrics(name);
  switch (spec->action) {
    case Action::Error:
      IVT_THROW(spec->category, std::string("injected fault at '") + name +
                                    "' (evaluation " + std::to_string(n) +
                                    ")");
    case Action::Delay:
      std::this_thread::sleep_for(std::chrono::microseconds(spec->delay_us));
      return;
    case Action::Corrupt:
      if (data != nullptr && size > 0) {
        const std::uint64_t bit =
            splitmix64(spec->seed ^ (n * 0xA24BAED4963EE407ULL)) %
            (static_cast<std::uint64_t>(size) * 8);
        static_cast<std::uint8_t*>(data)[bit / 8] ^=
            static_cast<std::uint8_t>(1U << (bit % 8));
      }
      return;
  }
}

}  // namespace detail

}  // namespace ivt::faultfx
