// Deterministic failpoint injection.
//
// Hot paths declare named sites:
//
//   FAULT_POINT("colstore.decode_chunk");            // may throw / delay
//   FAULT_POINT_MUTATE("tracefile.record", p, n);    // may also flip a bit
//
// Sites are inert until armed — via the IVT_FAULTS env var (read by the
// CLI), or programmatically (tests). A recipe is a comma-separated list
// of site specs:
//
//   IVT_FAULTS=colstore.decode_chunk:error:0.01:seed=7
//   IVT_FAULTS=tracefile.record:corrupt:0.05,signaldb.load:error
//
//     <site>:<action>[:<probability>][:<key>=<value>...]
//       action       error | corrupt | delay
//       probability  trigger chance per evaluation (default 1.0)
//       seed=N       RNG seed (default 0)
//       every=N      trigger every Nth evaluation instead of randomly
//       cat=C        error category:
//                    io|format|decode|spec|resource|overloaded|internal
//                    (default decode; `resource`/`overloaded` make the
//                    fault transient and therefore retryable)
//       delay_us=N   sleep duration for the delay action (default 1000)
//
// Determinism: each site keeps an evaluation counter; the trigger decision
// hashes (seed, counter), so the *number* of triggers for n evaluations is
// a pure function of (recipe, n) — independent of thread scheduling.
//
// Building with -DIVT_FAULTFX=OFF (IVT_FAULTFX_ENABLED=0) compiles every
// site to an inline no-op with unevaluated arguments, and arming becomes a
// no-op returning 0 — mirroring the IVT_OBS pattern.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "errors/error.hpp"
#include "errors/result.hpp"

#ifndef IVT_FAULTFX_ENABLED
#define IVT_FAULTFX_ENABLED 1
#endif

namespace ivt::faultfx {

[[nodiscard]] constexpr bool enabled() { return IVT_FAULTFX_ENABLED != 0; }

enum class Action {
  Error,    ///< throw errors::Error(cat) at the site
  Corrupt,  ///< flip one deterministic bit (FAULT_POINT_MUTATE sites only)
  Delay,    ///< sleep delay_us at the site (models stalls)
};

struct FaultSpec {
  std::string site;
  Action action = Action::Error;
  double probability = 1.0;
  std::uint64_t seed = 0;
  std::uint64_t every = 0;  ///< nonzero: fire on every Nth evaluation
  errors::Category category = errors::Category::Decode;
  std::uint64_t delay_us = 1000;
};

/// Parses a full recipe ("a:error:0.1,b:corrupt"). Returns a typed Error
/// (Category::Spec) on bad syntax.
[[nodiscard]] errors::Result<std::vector<FaultSpec>> parse_recipe(
    const std::string& recipe);

/// Arm one site (replaces any existing spec for the same site).
/// No-op when compiled out.
void arm(const FaultSpec& spec);

/// Parse + arm a recipe; throws errors::Error(Category::Spec) on syntax
/// errors. Returns the number of sites armed (0 when compiled out).
std::size_t arm(const std::string& recipe);

/// Arm from $IVT_FAULTS; returns 0 when unset, empty or compiled out.
/// Throws on a malformed value (a typo'd recipe must not silently run
/// without faults).
std::size_t arm_from_env();

/// Return every site to the inert state (counters are kept).
void disarm_all();

/// True when at least one site is armed (one relaxed atomic load, so the
/// disarmed fast path costs ~1 ns per FAULT_POINT).
[[nodiscard]] bool any_armed();

/// Lifetime trigger / evaluation counts for a site (0 for unknown sites).
[[nodiscard]] std::uint64_t triggered(const std::string& site);
[[nodiscard]] std::uint64_t evaluations(const std::string& site);

namespace detail {

struct Site;  // opaque; defined in faultfx.cpp

/// Site registry lookup (name must be a string literal; call sites cache
/// the result in a function-local static, like the obs macros).
Site& site(const char* name);

/// Evaluate the site: count, and maybe throw or delay. `data`/`size`
/// describe a caller-owned mutable buffer the `corrupt` action may flip
/// one bit of; FAULT_POINT passes none, so `corrupt` is inert there.
void evaluate(Site& site, const char* name, void* data = nullptr,
              std::size_t size = 0);

}  // namespace detail

}  // namespace ivt::faultfx

#if IVT_FAULTFX_ENABLED

/// Named failpoint: may throw errors::Error or delay when armed.
#define FAULT_POINT(name)                                              \
  do {                                                                 \
    if (::ivt::faultfx::any_armed()) {                                 \
      static ::ivt::faultfx::detail::Site& faultfx_site_ =             \
          ::ivt::faultfx::detail::site(name);                          \
      ::ivt::faultfx::detail::evaluate(faultfx_site_, name);           \
    }                                                                  \
  } while (0)

/// Byte-buffer failpoint: like FAULT_POINT, and a triggered `corrupt`
/// action flips one deterministic bit of the caller-owned buffer.
#define FAULT_POINT_MUTATE(name, data_ptr, size)                       \
  do {                                                                 \
    if (::ivt::faultfx::any_armed()) {                                 \
      static ::ivt::faultfx::detail::Site& faultfx_site_ =             \
          ::ivt::faultfx::detail::site(name);                          \
      ::ivt::faultfx::detail::evaluate(faultfx_site_, name,            \
                                       (data_ptr), (size));            \
    }                                                                  \
  } while (0)

#else  // !IVT_FAULTFX_ENABLED

#define FAULT_POINT(name) \
  do {                    \
  } while (0)

#define FAULT_POINT_MUTATE(name, data_ptr, size) \
  do {                                           \
    (void)sizeof(size);                          \
  } while (0)

#endif  // IVT_FAULTFX_ENABLED
