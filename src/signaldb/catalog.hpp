// Catalog: the full set of documented message/signal types of a vehicle —
// the source from which a domain's translation tuples U_rel are selected.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "signaldb/spec.hpp"

namespace ivt::signaldb {

/// Reference to one signal inside the catalog.
struct SignalRef {
  const MessageSpec* message = nullptr;
  const SignalSpec* signal = nullptr;

  [[nodiscard]] bool valid() const { return message && signal; }
};

class Catalog {
 public:
  /// Add a message type. Throws std::invalid_argument when (bus, id) or
  /// the message name is already present, or when a contained signal name
  /// collides with one defined elsewhere (signal names are globally unique
  /// s_id values in the paper's alphabet Σ).
  void add_message(MessageSpec message);

  [[nodiscard]] const std::vector<MessageSpec>& messages() const {
    return messages_;
  }

  [[nodiscard]] const MessageSpec* find_message(std::string_view bus,
                                                std::int64_t message_id) const;
  [[nodiscard]] const MessageSpec* find_message_by_name(
      std::string_view name) const;

  /// Lookup a signal type by its globally unique name.
  [[nodiscard]] SignalRef find_signal(std::string_view name) const;

  [[nodiscard]] std::size_t num_messages() const { return messages_.size(); }
  [[nodiscard]] std::size_t num_signals() const;

  /// All signal names (the alphabet Σ), in catalog order.
  [[nodiscard]] std::vector<std::string> signal_names() const;

  /// All distinct bus names, in first-use order.
  [[nodiscard]] std::vector<std::string> bus_names() const;

  /// Document (or update) the expected cycle time of every signal in the
  /// message (bus, message_id) — e.g. from a data-driven estimate
  /// (tracefile::estimate_cycles). Returns false when the message is
  /// unknown.
  bool document_cycle_time(std::string_view bus, std::int64_t message_id,
                           std::int64_t expected_cycle_ns);

 private:
  std::vector<MessageSpec> messages_;
};

/// Text serialization (a small DBC-like format, documented in io.cpp).
std::string to_text(const Catalog& catalog);
Catalog catalog_from_text(const std::string& text);

void save_catalog(const Catalog& catalog, const std::string& path);
Catalog load_catalog(const std::string& path);

}  // namespace ivt::signaldb
