// Text (de)serialization for Catalog.
//
// Format (line oriented; '#' starts a comment; values with spaces are
// double-quoted):
//
//   message <name> bus=<b_id> id=<m_id> protocol=<CAN|CAN-FD|LIN|SOME/IP|FlexRay> size=<bytes>
//     signal <s_id> start=<bit> len=<bits> order=<intel|motorola>
//            kind=<unsigned|signed|float32|float64> scale=<f> offset=<f>
//            aff=<F|V> [unit=<str>] [cycle_ns=<int>] [min=<f>] [max=<f>]
//            [presence=<selStart>,<selLen>,<intel|motorola>,<equals>]
//            [ordered=<0|1>] [comment=<str>]
//       value <raw> <label> [V]      # trailing V marks a validity label
//   end
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "errors/error.hpp"
#include "faultfx/faultfx.hpp"
#include "signaldb/catalog.hpp"

namespace ivt::signaldb {

namespace {

std::string quote(const std::string& s) {
  if (!s.empty() &&
      s.find_first_of(" \t\"#") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

/// Split a line into tokens; double quotes group, backslash escapes.
std::vector<std::string> tokenize(const std::string& line, std::size_t lineno) {
  std::vector<std::string> tokens;
  std::string cur;
  bool in_quotes = false;
  bool has_token = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '\\' && i + 1 < line.size()) {
        cur += line[++i];
      } else if (c == '"') {
        in_quotes = false;
      } else {
        cur += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      has_token = true;
    } else if (c == '#') {
      break;
    } else if (c == ' ' || c == '\t' || c == '\r') {
      if (has_token) {
        tokens.push_back(std::move(cur));
        cur.clear();
        has_token = false;
      }
    } else {
      cur += c;
      has_token = true;
    }
  }
  if (in_quotes) {
    IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                             ": unterminated quote");
  }
  if (has_token) tokens.push_back(std::move(cur));
  return tokens;
}

/// key=value map over tokens[from..]; bare tokens are rejected.
std::map<std::string, std::string> parse_kv(
    const std::vector<std::string>& tokens, std::size_t from,
    std::size_t lineno) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                               ": expected key=value, got '" + tokens[i] +
                               "'");
    }
    kv[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return kv;
}

double to_double(const std::string& s, std::size_t lineno) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                             ": bad number '" + s + "'");
  }
}

std::int64_t to_int(const std::string& s, std::size_t lineno) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos, 0);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                             ": bad integer '" + s + "'");
  }
}

protocol::ByteOrder to_order(const std::string& s, std::size_t lineno) {
  if (s == "intel") return protocol::ByteOrder::Intel;
  if (s == "motorola") return protocol::ByteOrder::Motorola;
  IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                           ": bad byte order '" + s + "'");
}

}  // namespace

std::string to_text(const Catalog& catalog) {
  std::ostringstream os;
  os << "# ivt signal catalog v1\n";
  for (const MessageSpec& m : catalog.messages()) {
    os << "message " << quote(m.name) << " bus=" << quote(m.bus)
       << " id=" << m.message_id
       << " protocol=" << protocol::to_string(m.protocol)
       << " size=" << m.payload_size << "\n";
    for (const SignalSpec& s : m.signals) {
      os << "  signal " << quote(s.name) << " start=" << s.start_bit
         << " len=" << s.length << " order="
         << (s.byte_order == protocol::ByteOrder::Intel ? "intel"
                                                        : "motorola")
         << " kind=" << to_string(s.value_kind) << " scale=" << s.transform.scale
         << " offset=" << s.transform.offset << " aff=" << to_string(s.affiliation);
      if (!s.unit.empty()) os << " unit=" << quote(s.unit);
      if (s.expected_cycle_ns != 0) os << " cycle_ns=" << s.expected_cycle_ns;
      if (s.min_value) os << " min=" << *s.min_value;
      if (s.max_value) os << " max=" << *s.max_value;
      if (!s.presence.always) {
        os << " presence=" << s.presence.selector_start_bit << ","
           << s.presence.selector_length << ","
           << (s.presence.selector_order == protocol::ByteOrder::Intel
                   ? "intel"
                   : "motorola")
           << "," << s.presence.equals;
      }
      if (s.ordered_values) os << " ordered=1";
      if (!s.comment.empty()) os << " comment=" << quote(s.comment);
      os << "\n";
      for (const ValueTableEntry& e : s.value_table) {
        os << "    value " << e.raw << " " << quote(e.label)
           << (e.validity ? " V" : "") << "\n";
      }
    }
    os << "end\n";
  }
  return os.str();
}

Catalog catalog_from_text(const std::string& text) {
  Catalog catalog;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;

  MessageSpec current;
  bool in_message = false;

  auto finish_message = [&]() {
    if (in_message) {
      catalog.add_message(std::move(current));
      current = MessageSpec{};
      in_message = false;
    }
  };

  while (std::getline(is, line)) {
    ++lineno;
    const std::vector<std::string> tokens = tokenize(line, lineno);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];

    if (kind == "message") {
      finish_message();
      if (tokens.size() < 2) {
        IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                                 ": message needs a name");
      }
      current = MessageSpec{};
      current.name = tokens[1];
      const auto kv = parse_kv(tokens, 2, lineno);
      for (const auto& [key, value] : kv) {
        if (key == "bus") {
          current.bus = value;
        } else if (key == "id") {
          current.message_id = to_int(value, lineno);
        } else if (key == "protocol") {
          const auto p = protocol::parse_protocol(value);
          if (!p) {
            IVT_THROW(errors::Category::Spec,
              "catalog line " +
                                     std::to_string(lineno) +
                                     ": unknown protocol '" + value + "'");
          }
          current.protocol = *p;
        } else if (key == "size") {
          current.payload_size =
              static_cast<std::size_t>(to_int(value, lineno));
        } else {
          IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                                   ": unknown message key '" + key + "'");
        }
      }
      in_message = true;
    } else if (kind == "signal") {
      if (!in_message) {
        IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                                 ": signal outside message");
      }
      if (tokens.size() < 2) {
        IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                                 ": signal needs a name");
      }
      SignalSpec s;
      s.name = tokens[1];
      const auto kv = parse_kv(tokens, 2, lineno);
      for (const auto& [key, value] : kv) {
        if (key == "start") {
          s.start_bit = static_cast<std::uint16_t>(to_int(value, lineno));
        } else if (key == "len") {
          s.length = static_cast<std::uint16_t>(to_int(value, lineno));
        } else if (key == "order") {
          s.byte_order = to_order(value, lineno);
        } else if (key == "kind") {
          const auto k = parse_value_kind(value);
          if (!k) {
            IVT_THROW(errors::Category::Spec,
              "catalog line " +
                                     std::to_string(lineno) +
                                     ": unknown kind '" + value + "'");
          }
          s.value_kind = *k;
        } else if (key == "scale") {
          s.transform.scale = to_double(value, lineno);
        } else if (key == "offset") {
          s.transform.offset = to_double(value, lineno);
        } else if (key == "aff") {
          if (value == "F") {
            s.affiliation = Affiliation::Functional;
          } else if (value == "V") {
            s.affiliation = Affiliation::Validity;
          } else {
            IVT_THROW(errors::Category::Spec,
              "catalog line " +
                                     std::to_string(lineno) +
                                     ": bad aff '" + value + "'");
          }
        } else if (key == "unit") {
          s.unit = value;
        } else if (key == "cycle_ns") {
          s.expected_cycle_ns = to_int(value, lineno);
        } else if (key == "min") {
          s.min_value = to_double(value, lineno);
        } else if (key == "max") {
          s.max_value = to_double(value, lineno);
        } else if (key == "presence") {
          // selStart,selLen,order,equals
          std::istringstream ps(value);
          std::string part;
          std::vector<std::string> parts;
          while (std::getline(ps, part, ',')) parts.push_back(part);
          if (parts.size() != 4) {
            IVT_THROW(errors::Category::Spec,
              "catalog line " +
                                     std::to_string(lineno) +
                                     ": presence needs 4 fields");
          }
          s.presence.always = false;
          s.presence.selector_start_bit =
              static_cast<std::uint16_t>(to_int(parts[0], lineno));
          s.presence.selector_length =
              static_cast<std::uint16_t>(to_int(parts[1], lineno));
          s.presence.selector_order = to_order(parts[2], lineno);
          s.presence.equals =
              static_cast<std::uint64_t>(to_int(parts[3], lineno));
        } else if (key == "ordered") {
          s.ordered_values = to_int(value, lineno) != 0;
        } else if (key == "comment") {
          s.comment = value;
        } else {
          IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                                   ": unknown signal key '" + key + "'");
        }
      }
      current.signals.push_back(std::move(s));
    } else if (kind == "value") {
      if (!in_message || current.signals.empty()) {
        IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                                 ": value outside signal");
      }
      if (tokens.size() != 3 && !(tokens.size() == 4 && tokens[3] == "V")) {
        IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                                 ": value needs <raw> <label> [V]");
      }
      current.signals.back().value_table.push_back(ValueTableEntry{
          static_cast<std::uint64_t>(to_int(tokens[1], lineno)), tokens[2],
          tokens.size() == 4});
    } else if (kind == "end") {
      finish_message();
    } else {
      IVT_THROW(errors::Category::Spec,
              "catalog line " + std::to_string(lineno) +
                               ": unknown directive '" + kind + "'");
    }
  }
  finish_message();
  return catalog;
}

void save_catalog(const Catalog& catalog, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) IVT_THROW(errors::Category::Io, "cannot open for write: " + path);
  out << to_text(catalog);
  if (!out) IVT_THROW(errors::Category::Io, "write failed: " + path);
}

Catalog load_catalog(const std::string& path) {
  FAULT_POINT("signaldb.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) IVT_THROW(errors::Category::Io, "cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return errors::with_context("loading catalog " + path, [&buffer] {
    return catalog_from_text(buffer.str());
  });
}

}  // namespace ivt::signaldb
