// Signal & message specifications — the domain documentation the paper's
// translation tuples U_rel are generated from (paper Table 1).
//
// A SignalSpec carries everything u_info needs: where the signal's bits
// live in the payload (rel.B), how the raw value maps to a physical value
// or categorical label (Int.rule), validity semantics and domain knowledge
// such as the expected cycle time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "protocol/bitcodec.hpp"
#include "protocol/frame.hpp"

namespace ivt::signaldb {

/// How the raw bit field is to be read.
enum class ValueKind : std::uint8_t {
  Unsigned,
  Signed,   ///< two's complement
  Float32,  ///< IEEE-754, length must be 32
  Float64,  ///< IEEE-754, length must be 64
};

std::string_view to_string(ValueKind kind);
std::optional<ValueKind> parse_value_kind(std::string_view name);

/// The paper's z_aff: functional property (F) vs. validity flag (V).
enum class Affiliation : std::uint8_t { Functional, Validity };

std::string_view to_string(Affiliation affiliation);

/// physical = scale * raw + offset.
struct LinearTransform {
  double scale = 1.0;
  double offset = 0.0;

  [[nodiscard]] double apply(double raw) const {
    return scale * raw + offset;
  }
  /// Inverse mapping used by encoders; scale must be non-zero.
  [[nodiscard]] double invert(double physical) const {
    return (physical - offset) / scale;
  }
  friend bool operator==(const LinearTransform&,
                         const LinearTransform&) = default;
};

/// raw value -> categorical label (e.g. 0 -> "off", 1 -> "parklight on").
/// `validity` marks labels that express validity rather than a functional
/// state (e.g. "signal invalid") — branch β/γ route such elements into the
/// validity part K_V.
struct ValueTableEntry {
  std::uint64_t raw = 0;
  std::string label;
  bool validity = false;

  friend bool operator==(const ValueTableEntry&,
                         const ValueTableEntry&) = default;
};

/// Conditional presence of an optional payload member (SOME/IP): the
/// signal exists in a given instance only when a selector field elsewhere
/// in the payload equals `equals` (paper Sec. 3.2: "values of preceding
/// bytes define the presence of a signal type in succeeding bytes").
struct PresenceCondition {
  bool always = true;
  std::uint16_t selector_start_bit = 0;
  std::uint16_t selector_length = 8;
  protocol::ByteOrder selector_order = protocol::ByteOrder::Intel;
  std::uint64_t equals = 0;

  friend bool operator==(const PresenceCondition&,
                         const PresenceCondition&) = default;
};

/// One signal type s (identified by `name` == s_id).
struct SignalSpec {
  std::string name;
  std::uint16_t start_bit = 0;
  std::uint16_t length = 8;
  protocol::ByteOrder byte_order = protocol::ByteOrder::Intel;
  ValueKind value_kind = ValueKind::Unsigned;
  LinearTransform transform;
  /// Non-empty -> the decoded value is the matching label (categorical
  /// signal). Raw values without an entry decode as "raw:<value>".
  std::vector<ValueTableEntry> value_table;
  Affiliation affiliation = Affiliation::Functional;
  std::string unit;
  std::optional<double> min_value;  ///< physical plausibility bounds
  std::optional<double> max_value;
  PresenceCondition presence;
  /// Expected send cycle (domain knowledge used by extensions/constraints);
  /// 0 = event-driven.
  std::int64_t expected_cycle_ns = 0;
  /// Domain knowledge feeding the classifier's z_val criterion: true when
  /// the value table order expresses a comparable valence (ordinal, e.g.
  /// off < low < medium < high). Ignored for non-categorical signals.
  bool ordered_values = false;
  std::string comment;

  [[nodiscard]] bool is_categorical() const { return !value_table.empty(); }

  /// Label for a raw value, or nullptr.
  [[nodiscard]] const ValueTableEntry* find_label(std::uint64_t raw) const;
  /// Raw value for a label, or nullopt.
  [[nodiscard]] std::optional<std::uint64_t> find_raw(
      std::string_view label) const;
};

/// One message type m = (S, m_id, b_id).
struct MessageSpec {
  std::string name;
  std::int64_t message_id = 0;  ///< m_id (CAN id, LIN id, SOME/IP msg id)
  std::string bus;              ///< b_id
  protocol::Protocol protocol = protocol::Protocol::Can;
  std::size_t payload_size = 8;
  std::vector<SignalSpec> signals;

  [[nodiscard]] const SignalSpec* find_signal(std::string_view name) const;
};

/// Result of decoding one signal out of one payload.
struct DecodedValue {
  bool present = false;  ///< presence condition satisfied & field fits
  double physical = 0.0;           ///< numeric value (always filled if present)
  std::optional<std::string> label;  ///< categorical label if any
};

/// Decode `spec` from `payload`. Never throws: a field that does not fit
/// or whose presence condition fails yields present == false.
DecodedValue decode_signal(std::span<const std::uint8_t> payload,
                           const SignalSpec& spec);

/// Encode a physical value into `payload` (raw = round(invert(physical))
/// clamped to the field's range). Presence selectors are NOT written here.
/// Throws std::out_of_range if the field does not fit.
void encode_signal(std::span<std::uint8_t> payload, const SignalSpec& spec,
                   double physical);

/// Encode a categorical label; throws std::invalid_argument for an
/// unknown label.
void encode_signal_label(std::span<std::uint8_t> payload,
                         const SignalSpec& spec, std::string_view label);

}  // namespace ivt::signaldb
