#include "signaldb/spec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ivt::signaldb {

std::string_view to_string(ValueKind kind) {
  switch (kind) {
    case ValueKind::Unsigned:
      return "unsigned";
    case ValueKind::Signed:
      return "signed";
    case ValueKind::Float32:
      return "float32";
    case ValueKind::Float64:
      return "float64";
  }
  return "unknown";
}

std::optional<ValueKind> parse_value_kind(std::string_view name) {
  if (name == "unsigned") return ValueKind::Unsigned;
  if (name == "signed") return ValueKind::Signed;
  if (name == "float32") return ValueKind::Float32;
  if (name == "float64") return ValueKind::Float64;
  return std::nullopt;
}

std::string_view to_string(Affiliation affiliation) {
  return affiliation == Affiliation::Functional ? "F" : "V";
}

const ValueTableEntry* SignalSpec::find_label(std::uint64_t raw) const {
  for (const ValueTableEntry& e : value_table) {
    if (e.raw == raw) return &e;
  }
  return nullptr;
}

std::optional<std::uint64_t> SignalSpec::find_raw(
    std::string_view label) const {
  for (const ValueTableEntry& e : value_table) {
    if (e.label == label) return e.raw;
  }
  return std::nullopt;
}

const SignalSpec* MessageSpec::find_signal(std::string_view name) const {
  for (const SignalSpec& s : signals) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

DecodedValue decode_signal(std::span<const std::uint8_t> payload,
                           const SignalSpec& spec) {
  DecodedValue out;
  if (!spec.presence.always) {
    if (!protocol::bit_field_fits(payload.size(),
                                  spec.presence.selector_start_bit,
                                  spec.presence.selector_length,
                                  spec.presence.selector_order)) {
      return out;
    }
    const std::uint64_t selector = protocol::extract_bits(
        payload, spec.presence.selector_start_bit,
        spec.presence.selector_length, spec.presence.selector_order);
    if (selector != spec.presence.equals) return out;
  }
  if (!protocol::bit_field_fits(payload.size(), spec.start_bit, spec.length,
                                spec.byte_order)) {
    return out;
  }
  const std::uint64_t raw = protocol::extract_bits(
      payload, spec.start_bit, spec.length, spec.byte_order);
  out.present = true;
  double raw_value = 0.0;
  switch (spec.value_kind) {
    case ValueKind::Unsigned:
      raw_value = static_cast<double>(raw);
      break;
    case ValueKind::Signed:
      raw_value = static_cast<double>(protocol::sign_extend(raw, spec.length));
      break;
    case ValueKind::Float32:
      raw_value = static_cast<double>(
          protocol::raw_to_float32(static_cast<std::uint32_t>(raw)));
      break;
    case ValueKind::Float64:
      raw_value = protocol::raw_to_float64(raw);
      break;
  }
  out.physical = spec.transform.apply(raw_value);
  if (spec.is_categorical()) {
    if (const ValueTableEntry* entry = spec.find_label(raw)) {
      out.label = entry->label;
    } else {
      out.label = "raw:" + std::to_string(raw);
    }
  }
  return out;
}

namespace {

std::uint64_t physical_to_raw(const SignalSpec& spec, double physical) {
  if (spec.transform.scale == 0.0) {
    throw std::invalid_argument("encode_signal: zero scale on '" + spec.name +
                                "'");
  }
  double raw_value = spec.transform.invert(physical);
  switch (spec.value_kind) {
    case ValueKind::Float32:
      return protocol::float32_to_raw(static_cast<float>(raw_value));
    case ValueKind::Float64:
      return protocol::float64_to_raw(raw_value);
    case ValueKind::Signed: {
      const double lo =
          -std::ldexp(1.0, spec.length - 1);  // -2^(len-1)
      const double hi = std::ldexp(1.0, spec.length - 1) - 1.0;
      raw_value = std::clamp(std::round(raw_value), lo, hi);
      const std::int64_t v = static_cast<std::int64_t>(raw_value);
      return static_cast<std::uint64_t>(v) &
             (spec.length >= 64 ? ~0ULL : ((1ULL << spec.length) - 1));
    }
    case ValueKind::Unsigned: {
      const double hi = spec.length >= 64
                            ? std::ldexp(1.0, 64) - 1.0
                            : std::ldexp(1.0, spec.length) - 1.0;
      raw_value = std::clamp(std::round(raw_value), 0.0, hi);
      return static_cast<std::uint64_t>(raw_value);
    }
  }
  return 0;
}

}  // namespace

void encode_signal(std::span<std::uint8_t> payload, const SignalSpec& spec,
                   double physical) {
  protocol::insert_bits(payload, spec.start_bit, spec.length, spec.byte_order,
                        physical_to_raw(spec, physical));
}

void encode_signal_label(std::span<std::uint8_t> payload,
                         const SignalSpec& spec, std::string_view label) {
  const std::optional<std::uint64_t> raw = spec.find_raw(label);
  if (!raw) {
    throw std::invalid_argument("encode_signal_label: unknown label '" +
                                std::string(label) + "' for signal '" +
                                spec.name + "'");
  }
  protocol::insert_bits(payload, spec.start_bit, spec.length, spec.byte_order,
                        *raw);
}

}  // namespace ivt::signaldb
