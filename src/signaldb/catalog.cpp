#include "signaldb/catalog.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace ivt::signaldb {

void Catalog::add_message(MessageSpec message) {
  for (const MessageSpec& m : messages_) {
    if (m.bus == message.bus && m.message_id == message.message_id) {
      throw std::invalid_argument("catalog: duplicate (bus, id) = (" +
                                  message.bus + ", " +
                                  std::to_string(message.message_id) + ")");
    }
    if (m.name == message.name) {
      throw std::invalid_argument("catalog: duplicate message name '" +
                                  message.name + "'");
    }
  }
  std::unordered_set<std::string_view> new_names;
  for (const SignalSpec& s : message.signals) {
    if (!new_names.insert(s.name).second) {
      throw std::invalid_argument("catalog: duplicate signal '" + s.name +
                                  "' within message '" + message.name + "'");
    }
    if (find_signal(s.name).valid()) {
      throw std::invalid_argument("catalog: signal name '" + s.name +
                                  "' already defined in another message");
    }
  }
  messages_.push_back(std::move(message));
}

const MessageSpec* Catalog::find_message(std::string_view bus,
                                         std::int64_t message_id) const {
  for (const MessageSpec& m : messages_) {
    if (m.bus == bus && m.message_id == message_id) return &m;
  }
  return nullptr;
}

const MessageSpec* Catalog::find_message_by_name(std::string_view name) const {
  for (const MessageSpec& m : messages_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

SignalRef Catalog::find_signal(std::string_view name) const {
  for (const MessageSpec& m : messages_) {
    if (const SignalSpec* s = m.find_signal(name)) {
      return SignalRef{&m, s};
    }
  }
  return SignalRef{};
}

std::size_t Catalog::num_signals() const {
  std::size_t n = 0;
  for (const MessageSpec& m : messages_) n += m.signals.size();
  return n;
}

std::vector<std::string> Catalog::signal_names() const {
  std::vector<std::string> names;
  names.reserve(num_signals());
  for (const MessageSpec& m : messages_) {
    for (const SignalSpec& s : m.signals) names.push_back(s.name);
  }
  return names;
}

bool Catalog::document_cycle_time(std::string_view bus,
                                  std::int64_t message_id,
                                  std::int64_t expected_cycle_ns) {
  for (MessageSpec& m : messages_) {
    if (m.bus == bus && m.message_id == message_id) {
      for (SignalSpec& s : m.signals) {
        s.expected_cycle_ns = expected_cycle_ns;
      }
      return true;
    }
  }
  return false;
}

std::vector<std::string> Catalog::bus_names() const {
  std::vector<std::string> buses;
  for (const MessageSpec& m : messages_) {
    if (std::find(buses.begin(), buses.end(), m.bus) == buses.end()) {
      buses.push_back(m.bus);
    }
  }
  return buses;
}

}  // namespace ivt::signaldb
