// Consistent hash ring over chunk-range extents.
//
// The coordinator uses the ring to give every chunk range a *preferred*
// owner among the registered workers: each worker contributes a fixed
// number of virtual points (so load stays even for small clusters), and a
// range hashes to the first point clockwise from its own hash. Adding or
// removing one worker moves only the ranges adjacent to that worker's
// points — the property that keeps cache/page locality across membership
// churn. Ownership is a *preference*, not an exclusivity: a worker with
// no pending preferred ranges steals any pending range, so the ring never
// blocks progress (work conservation beats placement).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ivt::dist {

/// splitmix64 — the same deterministic mixer faultfx and obs use.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30U)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27U)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31U);
}

/// FNV-1a, for hashing worker names onto the ring deterministically
/// across processes (std::hash is not stable between runs/builds).
[[nodiscard]] std::uint64_t stable_hash(const std::string& text);

class HashRing {
 public:
  /// Virtual points per node; 40 keeps the max/mean owned-share ratio
  /// under ~1.3 for a handful of nodes.
  static constexpr std::size_t kVirtualNodes = 40;

  /// Idempotent: adding a present node is a no-op.
  void add_node(const std::string& name);
  void remove_node(const std::string& name);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t num_nodes() const { return nodes_; }

  /// Preferred owner of `key` (first virtual point clockwise). Empty
  /// string when the ring is empty.
  [[nodiscard]] std::string owner(std::uint64_t key) const;

  /// Owner of a chunk range, keyed by its first chunk extent.
  [[nodiscard]] std::string owner_of_range(std::size_t begin_chunk) const {
    return owner(splitmix64(static_cast<std::uint64_t>(begin_chunk)));
  }

 private:
  std::map<std::uint64_t, std::string> points_;  ///< ring position -> node
  std::size_t nodes_ = 0;
};

}  // namespace ivt::dist
