// The dist coordinator: owns range assignment, membership and the merge.
//
// Lifecycle and threading are modeled on serve::Server (one accept
// thread, one reader thread per worker connection, self-pipe stop), but
// the request handlers are coordinator-local state transitions — all
// serialized under one mutex — rather than pool-dispatched queries:
//
//   accept thread ──► one reader thread per worker connection
//                        └─ register / heartbeat / next / result
//   monitor thread ──► declares workers dead after K missed beats,
//                      revokes and re-queues their in-flight ranges
//
// Correctness story (the part the equivalence tests pin down): the
// RangeTracker accepts exactly one (range, epoch) result per range, and
// every accepted result's segments flow into the same KeyedSegments +
// merge_split_segments machinery the streaming mode uses. Deaths,
// re-assignments, speculative duplicates and zombie re-sends only change
// *which worker's* identical, idempotently recomputed partial gets
// accepted — never the merged bytes. Recovery is therefore accounted in
// PipelineResult::dist (and the report's "failures" section), not in
// result.failures: a recovered run is a *clean* run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <map>
#include <unordered_map>
#include <vector>

#include "colstore/columnar_reader.hpp"
#include "core/pipeline.hpp"
#include "dist/assignment.hpp"
#include "dist/hash_ring.hpp"
#include "dist/protocol.hpp"
#include "serve/wire.hpp"
#include "signaldb/catalog.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace ivt::dist {

struct CoordinatorConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (port() reports the bound one).
  std::uint16_t port = 0;
  /// Paths echoed to workers in the JobSpec (workers open them on their
  /// own — only control data and partials cross the wire, never the
  /// trace itself).
  std::string trace_path;
  std::string catalog_path;
  /// Ranges to cut the job into; 0 = 4 per expected worker (granular
  /// enough that one death re-queues a slice, not a worker's whole
  /// share), floored at 8.
  std::uint64_t target_ranges = 0;
  std::size_t expected_workers = 4;  ///< sizing hint only, not a limit
  /// Heartbeat cadence workers are told to use; a worker is dead after
  /// `dead_after_missed` × `heartbeat_ms` without a beat.
  int heartbeat_ms = 50;
  int dead_after_missed = 3;
  /// Straggler policy: an idle worker (no pending ranges left) may run a
  /// speculative duplicate of an in-flight range at least this many
  /// grants old. First completion wins; the loser is deduplicated.
  /// 0 disables speculation.
  std::uint64_t speculate_min_age = 2;
  /// Job trace id for end-to-end span correlation; 0 = mint one.
  std::uint64_t trace_id = 0;
};

class Coordinator {
 public:
  /// The catalog and reader must outlive the coordinator. The pipeline
  /// config is the full run's config — the worker-relevant slice
  /// (signals, on_error) is extracted into the JobSpec, the rest drives
  /// the coordinator-side merge.
  Coordinator(const signaldb::Catalog& catalog, core::PipelineConfig config,
              const colstore::ColumnarReader& reader,
              CoordinatorConfig dist_config);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Bind, listen, start the accept and monitor threads. Throws
  /// errors::Error(Io) on bind failure (CLI exit code 5).
  void start();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& host() const { return config_.host; }
  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }
  [[nodiscard]] std::uint64_t num_ranges();

  /// Block until every range has an accepted result (workers keep
  /// registering / dying / retrying underneath), then run the shared
  /// order-stable merge + Algorithm 1 lines 10–29 and return the full
  /// result with dist recovery counters filled in. Throws
  /// errors::Error(Internal) when stop() wins the race instead.
  core::PipelineResult wait_result(dataflow::Engine& engine,
                                   colstore::ScanStats* stats = nullptr);

  /// Async-signal-safe: wake wait_result()/wait loops for teardown.
  void request_stop() noexcept;

  /// Full teardown; idempotent. Safe to call with workers still
  /// connected (their sockets are shut down and threads joined).
  void stop();

 private:
  /// One registration instance. A worker that re-registers under the
  /// same name becomes a NEW member (fresh id + generation); the old
  /// member is a zombie whose epochs are already revoked.
  struct Member {
    std::uint64_t id = 0;
    std::uint64_t generation = 0;
    std::string name;
    std::chrono::steady_clock::time_point last_beat;
    bool alive = true;
  };

  void accept_loop();
  void serve_connection(int fd);
  void monitor_loop();

  serve::Frame handle(const serve::Frame& request);
  serve::Frame handle_register(const serve::json::Value& body);
  serve::Frame handle_heartbeat(const serve::json::Value& body);
  serve::Frame handle_next(const serve::json::Value& body);
  serve::Frame handle_result(const serve::json::Value& body,
                             const std::string& payload);

  /// RangeTracker identity of a registration: "name#generation".
  [[nodiscard]] static std::string member_key(const Member& m);

  /// Lookup helper; nullptr when the (id, generation) pair is unknown or
  /// dead — the caller answers {"known": false}.
  Member* find_live(std::uint64_t id, std::uint64_t generation)
      IVT_REQUIRES(mutex_);

  void declare_dead(Member& member) IVT_REQUIRES(mutex_);

  const signaldb::Catalog& catalog_;
  const colstore::ColumnarReader& reader_;
  CoordinatorConfig config_;
  core::Pipeline pipeline_;
  core::MorselProcessor processor_;  ///< prune stats + morsel count only
  JobSpec job_;
  std::uint64_t trace_id_ = 0;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::thread accept_thread_;
  std::thread monitor_thread_;

  support::Mutex mutex_{support::LockRank::k_dist_Coordinator_mutex_};
  support::CondVar done_cv_;  ///< signaled when all ranges are accepted
  RangeTracker tracker_ IVT_GUARDED_BY(mutex_);
  HashRing ring_ IVT_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, Member> members_ IVT_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::uint64_t> current_id_by_name_
      IVT_GUARDED_BY(mutex_);
  std::uint64_t next_member_id_ IVT_GUARDED_BY(mutex_) = 0;
  std::uint64_t distinct_workers_ IVT_GUARDED_BY(mutex_) = 0;

  core::KeyedSegments keyed_ IVT_GUARDED_BY(mutex_);
  /// Accepted per-morsel K_s partitions (only when config().keep_ks):
  /// ordered by morsel so the rebuilt table matches batch front to back.
  std::map<std::uint64_t, dataflow::Partition> ks_parts_
      IVT_GUARDED_BY(mutex_);
  /// Accepted per-range counters / failure records, keyed by range id so
  /// the final failure list comes out in file order.
  std::unordered_map<std::uint64_t, RangeCounters> range_counters_
      IVT_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::vector<errors::FailureRecord>>
      range_failures_ IVT_GUARDED_BY(mutex_);
  core::DistStats stats_ IVT_GUARDED_BY(mutex_);

  struct Connection {
    int fd = -1;
    std::thread thread;
  };
  std::vector<Connection> connections_ IVT_GUARDED_BY(conn_mutex_);
  support::Mutex conn_mutex_{support::LockRank::k_dist_Coordinator_conn_mutex_};
};

}  // namespace ivt::dist
