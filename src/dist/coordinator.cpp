#include "dist/coordinator.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/schemas.hpp"
#include "dist/partial_codec.hpp"
#include "errors/error.hpp"
#include "faultfx/faultfx.hpp"
#include "obs/obs.hpp"
#include "obs/trace_context.hpp"

namespace ivt::dist {

namespace json = serve::json;

namespace {

constexpr int kListenBacklog = 64;

serve::Frame error_response(const errors::Error& e) {
  return serve::Frame{render_wire_error(e), {}};
}

}  // namespace

Coordinator::Coordinator(const signaldb::Catalog& catalog,
                         core::PipelineConfig config,
                         const colstore::ColumnarReader& reader,
                         CoordinatorConfig dist_config)
    : catalog_(catalog),
      reader_(reader),
      config_(std::move(dist_config)),
      pipeline_(catalog, std::move(config)),
      processor_(reader, pipeline_.urel(), pipeline_.config(), nullptr),
      trace_id_(config_.trace_id != 0 ? config_.trace_id
                                      : obs::TraceContext::mint().trace_id),
      tracker_([this] {
        const std::uint64_t target =
            config_.target_ranges > 0
                ? config_.target_ranges
                : std::max<std::uint64_t>(
                      4 * std::max<std::size_t>(config_.expected_workers, 1),
                      8);
        return RangeTracker(plan_ranges(processor_.num_morsels(), target));
      }()) {
  job_.trace_path = config_.trace_path;
  job_.catalog_path = config_.catalog_path;
  job_.signals = pipeline_.config().signals;
  job_.on_error = pipeline_.config().on_error;
  job_.scan_mode = pipeline_.config().scan_mode;
  job_.keep_ks = pipeline_.config().keep_ks;
  job_.num_morsels = processor_.num_morsels();
  {
    const support::MutexLock lock(mutex_);
    stats_.enabled = true;
    stats_.ranges_total = tracker_.num_ranges();
  }
}

Coordinator::~Coordinator() {
  stop();
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

std::uint64_t Coordinator::num_ranges() {
  // tracker_.num_ranges() is immutable after construction, but take the
  // lock anyway: the analysis cannot know that, and this is cold.
  const support::MutexLock lock(mutex_);
  return tracker_.num_ranges();
}

void Coordinator::start() {
  if (::pipe2(stop_pipe_, O_CLOEXEC) != 0) {
    IVT_THROW(errors::Category::Io,
              std::string("dist: pipe2 failed: ") + std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    IVT_THROW(errors::Category::Io,
              std::string("dist: socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    IVT_THROW(errors::Category::Io,
              "dist: bad listen address '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    IVT_THROW(errors::Category::Io,
              "dist: cannot bind " + config_.host + ":" +
                  std::to_string(config_.port) + ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, kListenBacklog) != 0) {
    IVT_THROW(errors::Category::Io,
              "dist: listen failed on " + config_.host + ":" +
                  std::to_string(config_.port) + ": " + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = config_.port;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  monitor_thread_ = std::thread([this] { monitor_loop(); });
}

void Coordinator::request_stop() noexcept {
  stopping_.store(true, std::memory_order_release);
  done_cv_.notify_all();
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t ignored =
        ::write(stop_pipe_[1], &byte, 1);
  }
}

void Coordinator::stop() {
  if (stopped_.exchange(true)) return;
  request_stop();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> to_join;
  {
    const support::MutexLock lock(conn_mutex_);
    for (Connection& conn : connections_) {
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RD);
      if (conn.thread.joinable()) to_join.push_back(std::move(conn.thread));
    }
  }
  for (std::thread& t : to_join) t.join();
  {
    const support::MutexLock lock(conn_mutex_);
    for (Connection& conn : connections_) {
      if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
    connections_.clear();
  }
}

void Coordinator::accept_loop() {
  // Everything the coordinator records — accept spans, handler spans,
  // monitor sweeps — is node 0 of the job's merged timeline.
  obs::set_current_node(0);
  const obs::TraceContextScope trace_scope(
      obs::TraceContext{trace_id_, /*span_id=*/1});
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      std::fprintf(stderr, "ivt-coordinator: accept failed: %s\n",
                   std::strerror(errno));
      break;
    }
    OBS_COUNT("dist.connections_total", 1);
    const support::MutexLock lock(conn_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    const std::size_t index = connections_.size();
    connections_.push_back(Connection{fd, {}});
    connections_[index].thread = std::thread([this, fd, index] {
      serve_connection(fd);
      // Hand the fd back under the lock so stop() never shutdowns a
      // recycled descriptor (same pattern as serve::Server).
      const support::MutexLock conn_lock(conn_mutex_);
      connections_[index].fd = -1;
      ::close(fd);
    });
  }
}

void Coordinator::serve_connection(int fd) {
  obs::set_current_node(0);
  const obs::TraceContextScope trace_scope(
      obs::TraceContext{trace_id_, /*span_id=*/1});
  serve::Frame request;
  while (!stopping_.load(std::memory_order_acquire)) {
    try {
      if (!read_frame(fd, request)) break;  // clean EOF: worker left
    } catch (const errors::Error&) {
      break;  // transport failure mid-frame; the worker will reconnect
    }
    const serve::Frame response = handle(request);
    try {
      write_frame(fd, response);
    } catch (const errors::Error&) {
      break;  // worker gone; it re-sends on a fresh connection
    }
  }
}

serve::Frame Coordinator::handle(const serve::Frame& request) {
  std::string op;
  try {
    const json::Value body = json::parse(request.json);
    op = body.get_string("op", "");
    if (op == kOpRegister) return handle_register(body);
    if (op == kOpHeartbeat) return handle_heartbeat(body);
    if (op == kOpNext) return handle_next(body);
    if (op == kOpResult) return handle_result(body, request.payload);
    IVT_THROW(errors::Category::Decode, "dist: unknown op '" + op + "'");
  } catch (const errors::Error& e) {
    OBS_COUNT("dist.requests_failed", 1);
    return error_response(e);
  } catch (const std::exception& e) {
    OBS_COUNT("dist.requests_failed", 1);
    return error_response(errors::Error(errors::Category::Internal, e.what()));
  }
}

serve::Frame Coordinator::handle_register(const json::Value& body) {
  OBS_SPAN("dist.register");
  // Models a registration lost on the coordinator side (accept queue
  // race, early reset). The worker's contract: back off with jitter and
  // retry; the coordinator's: count it, stay healthy.
  try {
    FAULT_POINT("dist.register");
  } catch (const errors::Error&) {
    {
      const support::MutexLock lock(mutex_);
      ++stats_.registrations_retried;
    }
    IVT_THROW(errors::Category::Overloaded,
              "dist: registration dropped — retry after a backoff");
  }
  const std::string name = body.get_string("worker", "");
  if (name.empty()) {
    IVT_THROW(errors::Category::Decode,
              "dist: register without a worker name");
  }
  std::uint64_t worker_id = 0;
  std::uint64_t generation = 0;
  {
    const support::MutexLock lock(mutex_);
    // A re-registration under a live name supersedes the old
    // incarnation: its epochs are revoked (idempotent re-execution
    // elsewhere), its generation stops matching, so its late results
    // and heartbeats read as a zombie's.
    if (const auto it = current_id_by_name_.find(name);
        it != current_id_by_name_.end()) {
      const auto member_it = members_.find(it->second);
      if (member_it != members_.end() && member_it->second.alive) {
        declare_dead(member_it->second);
      }
    } else {
      ++distinct_workers_;
      stats_.nodes = distinct_workers_;
    }
    Member m;
    m.id = ++next_member_id_;
    m.generation = m.id;  // unique per registration; simplest gen counter
    m.name = name;
    m.last_beat = std::chrono::steady_clock::now();
    worker_id = m.id;
    generation = m.generation;
    current_id_by_name_[name] = m.id;
    ring_.add_node(name);
    members_.emplace(m.id, std::move(m));
  }
  OBS_COUNT("dist.registrations", 1);
  json::Object reply;
  reply.add("ok", true)
      .add("worker_id", worker_id)
      .add("generation", generation)
      .add("heartbeat_ms", static_cast<std::int64_t>(config_.heartbeat_ms))
      .add("dead_after_missed",
           static_cast<std::int64_t>(config_.dead_after_missed))
      .add("trace_id", obs::trace_id_hex(trace_id_))
      .raw("job", job_spec_to_json(job_));
  return serve::Frame{reply.str(), {}};
}

serve::Frame Coordinator::handle_heartbeat(const json::Value& body) {
  // An injected fault here means the beat is *not recorded*: from the
  // membership sweep's point of view the worker just went quiet — the
  // exact failure mode the missed-beat death path exists for.
  FAULT_POINT("dist.heartbeat");
  const auto id = static_cast<std::uint64_t>(body.get_int("worker_id", 0));
  const auto gen = static_cast<std::uint64_t>(body.get_int("generation", 0));
  bool known = false;
  {
    const support::MutexLock lock(mutex_);
    if (Member* m = find_live(id, gen); m != nullptr) {
      m->last_beat = std::chrono::steady_clock::now();
      known = true;
    }
  }
  return serve::Frame{
      json::Object{}.add("ok", true).add("known", known).str(), {}};
}

serve::Frame Coordinator::handle_next(const json::Value& body) {
  const auto id = static_cast<std::uint64_t>(body.get_int("worker_id", 0));
  const auto gen = static_cast<std::uint64_t>(body.get_int("generation", 0));
  json::Object reply;
  reply.add("ok", true);
  const support::MutexLock lock(mutex_);
  Member* m = find_live(id, gen);
  if (m == nullptr) {
    reply.add("known", false);
    return serve::Frame{reply.str(), {}};
  }
  reply.add("known", true);
  m->last_beat = std::chrono::steady_clock::now();  // asking == alive
  if (tracker_.all_done()) {
    reply.add("done", true);
    return serve::Frame{reply.str(), {}};
  }
  const std::string key = member_key(*m);
  ChunkRange range;
  std::uint64_t epoch = 0;
  bool assigned = tracker_.next(key, ring_, range, epoch);
  if (!assigned && config_.speculate_min_age > 0) {
    // No pending work but the job is not done: this worker is idle while
    // others still hold ranges — the textbook straggler window. Duplicate
    // the oldest in-flight range; first completion wins.
    assigned =
        tracker_.speculate(key, config_.speculate_min_age, range, epoch);
    if (assigned) {
      ++stats_.speculative_launched;
      OBS_COUNT("dist.speculative_launched", 1);
    }
  }
  if (assigned) {
    json::Object task;
    task.add("range_id", range.id)
        .add("epoch", epoch)
        .add("begin", range.begin)
        .add("end", range.end);
    reply.raw("task", task.str());
  } else {
    reply.add("wait_ms", static_cast<std::int64_t>(config_.heartbeat_ms));
  }
  return serve::Frame{reply.str(), {}};
}

serve::Frame Coordinator::handle_result(const json::Value& body,
                                        const std::string& payload) {
  OBS_SPAN("dist.result");
  // Models a result frame lost between transport and merge (handler
  // crash, queue overflow). The worker re-sends the identical partial;
  // the (range, epoch) dedup makes the retry safe.
  FAULT_POINT("dist.result");
  const auto id = static_cast<std::uint64_t>(body.get_int("worker_id", 0));
  const auto gen = static_cast<std::uint64_t>(body.get_int("generation", 0));
  const auto range_id =
      static_cast<std::uint64_t>(body.get_int("range_id", 0));
  const auto epoch = static_cast<std::uint64_t>(body.get_int("epoch", 0));

  RangeCounters counters;
  counters.rows_considered =
      static_cast<std::uint64_t>(body.get_int("rows_considered", 0));
  counters.rows_emitted =
      static_cast<std::uint64_t>(body.get_int("rows_emitted", 0));
  counters.kpre_rows =
      static_cast<std::uint64_t>(body.get_int("kpre_rows", 0));
  counters.ks_rows = static_cast<std::uint64_t>(body.get_int("ks_rows", 0));
  counters.chunks_scanned =
      static_cast<std::uint64_t>(body.get_int("chunks_scanned", 0));
  counters.chunks_quarantined =
      static_cast<std::uint64_t>(body.get_int("chunks_quarantined", 0));
  counters.rows_quarantined =
      static_cast<std::uint64_t>(body.get_int("rows_quarantined", 0));
  std::vector<errors::FailureRecord> failures =
      failures_from_wire(body, "failures");

  // Decode outside the lock (payloads can be large); a Decode throw
  // travels back as a typed error frame and the worker retries.
  RangePayload decoded = decode_range_payload(payload);
  std::vector<WireSegment>& segments = decoded.segments;
  // Rebuild the K_s partitions outside the lock too — only moved under
  // it when the result is accepted.
  std::vector<std::pair<std::uint64_t, dataflow::Partition>> ks_parts;
  ks_parts.reserve(decoded.ks_blocks.size());
  for (const WireKsBlock& b : decoded.ks_blocks) {
    dataflow::Partition part =
        dataflow::Table::make_partition(core::ks_schema());
    for (std::size_t r = 0; r < b.t.size(); ++r) {
      part.columns[0].append_int64(b.t[r]);
      part.columns[1].append_string(b.s_id[r]);
      if (b.has_num[r] != 0) {
        part.columns[2].append_float64(b.v_num[r]);
      } else {
        part.columns[2].append_null();
      }
      if (b.has_str[r] != 0) {
        part.columns[3].append_string(b.v_str[r]);
      } else {
        part.columns[3].append_null();
      }
      part.columns[4].append_string(b.b_id[r]);
    }
    ks_parts.emplace_back(b.morsel, std::move(part));
  }

  bool accepted = false;
  bool done = false;
  {
    const support::MutexLock lock(mutex_);
    if (Member* m = find_live(id, gen); m != nullptr) {
      m->last_beat = std::chrono::steady_clock::now();
    }
    // Note: a *dead* member's result is still offered to the tracker —
    // its epochs were revoked, so the tracker answers Stale and the
    // result is discarded. Dedup is by (range, epoch), not by liveness.
    const CompletionFate fate = tracker_.complete(range_id, epoch);
    switch (fate) {
      case CompletionFate::Accepted:
      case CompletionFate::AcceptedSpeculative:
        accepted = true;
        if (fate == CompletionFate::AcceptedSpeculative) {
          ++stats_.speculative_wins;
          OBS_COUNT("dist.speculative_wins", 1);
        }
        for (WireSegment& seg : segments) {
          keyed_[seg.key].push_back(core::SplitSegment{
              static_cast<std::size_t>(seg.morsel),
              static_cast<std::size_t>(seg.first_row),
              std::move(seg.data)});
        }
        for (auto& [morsel, part] : ks_parts) {
          ks_parts_.insert_or_assign(morsel, std::move(part));
        }
        range_counters_[range_id] = counters;
        range_failures_[range_id] = std::move(failures);
        OBS_COUNT("dist.ranges_accepted", 1);
        if (tracker_.all_done()) done_cv_.notify_all();
        break;
      case CompletionFate::Duplicate:
      case CompletionFate::Stale:
        ++stats_.results_deduped;
        OBS_COUNT("dist.results_deduped", 1);
        break;
    }
    done = tracker_.all_done();
  }
  // The "done" hint lets the worker that delivered the last result exit
  // immediately instead of polling dist.next against a coordinator that
  // may already be tearing down.
  return serve::Frame{json::Object{}
                          .add("ok", true)
                          .add("accepted", accepted)
                          .add("done", done)
                          .str(),
                      {}};
}

std::string Coordinator::member_key(const Member& m) {
  return m.name + "#" + std::to_string(m.generation);
}

Coordinator::Member* Coordinator::find_live(std::uint64_t id,
                                            std::uint64_t generation) {
  const auto it = members_.find(id);
  if (it == members_.end()) return nullptr;
  Member& m = it->second;
  if (!m.alive || m.generation != generation) return nullptr;
  return &m;
}

void Coordinator::declare_dead(Member& member) {
  member.alive = false;
  ++stats_.worker_deaths;
  OBS_COUNT("dist.worker_deaths", 1);
  const std::uint64_t requeued = tracker_.revoke(member_key(member));
  stats_.ranges_reassigned += requeued;
  if (requeued > 0) OBS_COUNT("dist.ranges_reassigned", requeued);
  // Only unmap the name if this member still owns it (a re-registration
  // may already have taken it over).
  const auto it = current_id_by_name_.find(member.name);
  if (it != current_id_by_name_.end() && it->second == member.id) {
    current_id_by_name_.erase(it);
    ring_.remove_node(member.name);
  }
}

void Coordinator::monitor_loop() {
  obs::set_current_node(0);
  const obs::TraceContextScope trace_scope(
      obs::TraceContext{trace_id_, /*span_id=*/1});
  const auto deadline = std::chrono::milliseconds(
      config_.heartbeat_ms *
      std::max(config_.dead_after_missed, 1));
  support::MutexLock lock(mutex_);
  while (!stopping_.load(std::memory_order_acquire)) {
    done_cv_.wait_for(lock,
                      std::chrono::milliseconds(config_.heartbeat_ms));
    if (stopping_.load(std::memory_order_acquire)) break;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [id, member] : members_) {
      if (!member.alive) continue;
      if (now - member.last_beat > deadline) {
        OBS_SPAN("dist.declare_dead");
        declare_dead(member);
      }
    }
  }
}

core::PipelineResult Coordinator::wait_result(dataflow::Engine& engine,
                                              colstore::ScanStats* stats) {
  obs::set_current_node(0);
  const obs::TraceContextScope trace_scope(
      obs::TraceContext{trace_id_, /*span_id=*/1});
  OBS_SPAN("dist.wait_result");

  core::KeyedSegments keyed;
  std::map<std::uint64_t, dataflow::Partition> ks_parts;
  std::vector<errors::FailureRecord> failures;
  RangeCounters totals;
  core::DistStats dist_stats;
  {
    support::MutexLock lock(mutex_);
    while (!tracker_.all_done() &&
           !stopping_.load(std::memory_order_acquire)) {
      done_cv_.wait(lock);
    }
    if (!tracker_.all_done()) {
      IVT_THROW(errors::Category::Internal,
                "dist: coordinator stopped before the job completed");
    }
    keyed = std::move(keyed_);
    keyed_.clear();
    ks_parts = std::move(ks_parts_);
    ks_parts_.clear();
    // File order: range ids are dense in morsel order, so walking them in
    // id order yields the same front-to-back failure ordering the
    // in-process scan produces (the differ compares counts, but ordered
    // reports read better).
    for (std::uint64_t r = 0; r < tracker_.num_ranges(); ++r) {
      if (const auto it = range_failures_.find(r);
          it != range_failures_.end()) {
        for (errors::FailureRecord& rec : it->second) {
          failures.push_back(std::move(rec));
        }
      }
      if (const auto it = range_counters_.find(r);
          it != range_counters_.end()) {
        const RangeCounters& c = it->second;
        totals.rows_considered += c.rows_considered;
        totals.rows_emitted += c.rows_emitted;
        totals.kpre_rows += c.kpre_rows;
        totals.ks_rows += c.ks_rows;
        totals.chunks_scanned += c.chunks_scanned;
        totals.chunks_quarantined += c.chunks_quarantined;
        totals.rows_quarantined += c.rows_quarantined;
      }
    }
    dist_stats = stats_;
  }

  // K_b is never materialized here either; same accounting as streaming.
  const std::size_t kb_rows =
      reader_.num_rows() -
      static_cast<std::size_t>(totals.rows_quarantined);
  core::PipelineResult result = pipeline_.merge_morsel_partials(
      engine, std::move(keyed), kb_rows,
      static_cast<std::size_t>(totals.kpre_rows),
      static_cast<std::size_t>(totals.ks_rows), std::move(failures));
  result.dist = dist_stats;

  if (pipeline_.config().keep_ks) {
    // Same construction as streaming: one partition per non-empty morsel,
    // appended in morsel order, over the canonical K_s schema.
    result.ks = dataflow::Table(core::ks_schema());
    for (auto& [morsel, part] : ks_parts) {
      if (part.num_rows() == 0) continue;
      result.ks.add_partition(std::move(part));
    }
  }

  if (stats != nullptr) {
    // Prune-time numbers from the coordinator's own cursor (identical on
    // every node — same file, same predicate), decode-time numbers summed
    // from the accepted ranges only, so every morsel counts exactly once.
    colstore::ScanStats s = processor_.stats();
    s.rows_emitted = static_cast<std::size_t>(totals.rows_emitted);
    s.chunks_quarantined =
        static_cast<std::size_t>(totals.chunks_quarantined);
    s.rows_quarantined = static_cast<std::size_t>(totals.rows_quarantined);
    *stats = s;
  }
  return result;
}

}  // namespace ivt::dist
