// Simulated node layer: run a whole coordinator/worker job in-process.
//
// `ivt run --exec dist` and the equivalence/bench tests drive the
// distributed executor through this entry point: one Coordinator on an
// ephemeral loopback port plus N node threads, each running the real
// run_worker over the real wire protocol — the only simulation is the
// failure schedule (seeded death draws, added latency, slowdown), so
// every line of recovery logic exercised here is the same line a
// multi-process deployment runs.
//
// Self-healing: when a node dies its slot respawns it as a fresh
// incarnation ("node2.1" → "node2.2") whose draws differ — the cluster
// heals itself without operator action. A shared respawn budget
// (default 4 × nodes) bounds the worst case: once it is exhausted,
// replacements come up with failure injection disabled, so a run with a
// hostile failure rate still terminates, deterministically, with every
// death and re-assignment on the books in DistStats.
#pragma once

#include <cstdint>
#include <string>

#include "colstore/columnar_reader.hpp"
#include "core/pipeline.hpp"
#include "dataflow/engine.hpp"
#include "signaldb/catalog.hpp"

namespace ivt::dist {

struct DistRunConfig {
  /// Paths handed to workers via the JobSpec (each node opens its own
  /// reader — nothing but control data and partials crosses the wire).
  std::string trace_path;
  std::string catalog_path;
  /// Simulated worker processes (node threads). >= 1.
  std::size_t nodes = 4;
  /// Forwarded to CoordinatorConfig (0 = its defaults).
  std::uint64_t target_ranges = 0;
  int heartbeat_ms = 50;
  int dead_after_missed = 3;
  std::uint64_t speculate_min_age = 2;
  /// Seeded, deterministic failure schedule (see worker.hpp SimOptions).
  std::uint64_t seed = 0;
  double failure_rate = 0.0;
  int latency_ms = 0;
  double slow_factor = 1.0;
  /// Respawns across all slots before replacements run failure-free;
  /// 0 = 4 × nodes.
  std::size_t respawn_budget = 0;
  /// Per-RPC client deadline for workers.
  int worker_timeout_ms = 5000;
  /// Job trace id (0 = mint) for one merged `ivt trace-merge` timeline.
  std::uint64_t trace_id = 0;
};

/// Run the full distributed job and return the merged result (identical
/// to batch/streaming byte-for-byte; see Coordinator). Throws
/// errors::Error when the cluster cannot finish the job — every node
/// slot permanently failed — rather than hanging.
core::PipelineResult run_dist(const signaldb::Catalog& catalog,
                              core::PipelineConfig config,
                              const colstore::ColumnarReader& reader,
                              const DistRunConfig& dist_config,
                              dataflow::Engine& engine,
                              colstore::ScanStats* stats = nullptr);

}  // namespace ivt::dist
