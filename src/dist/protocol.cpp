#include "dist/protocol.hpp"

#include <sstream>
#include <stdexcept>

namespace ivt::dist {

namespace json = serve::json;

std::string job_spec_to_json(const JobSpec& job) {
  return json::Object{}
      .add("trace_path", job.trace_path)
      .add("catalog_path", job.catalog_path)
      .raw("signals", json::render_array(job.signals))
      .add("on_error", std::string(errors::to_string(job.on_error)))
      .add("scan_mode", std::string(colstore::to_string(job.scan_mode)))
      .add("keep_ks", job.keep_ks)
      .add("num_morsels", job.num_morsels)
      .str();
}

JobSpec job_spec_from_json(const json::Value& v) {
  if (!v.is_object()) {
    IVT_THROW(errors::Category::Decode, "dist: job spec is not an object");
  }
  JobSpec job;
  job.trace_path = v.get_string("trace_path", "");
  job.catalog_path = v.get_string("catalog_path", "");
  job.signals = v.get_string_list("signals");
  const std::string policy = v.get_string("on_error", "fail");
  const auto parsed = errors::parse_error_policy(policy);
  if (!parsed) {
    IVT_THROW(errors::Category::Decode,
              "dist: bad on_error policy in job spec: " + policy);
  }
  job.on_error = *parsed;
  const std::string scan = v.get_string("scan_mode", "decoded");
  try {
    job.scan_mode = colstore::parse_scan_mode(scan);
  } catch (const std::invalid_argument&) {
    IVT_THROW(errors::Category::Decode,
              "dist: bad scan_mode in job spec: " + scan);
  }
  job.keep_ks = v.get_bool("keep_ks", false);
  job.num_morsels = static_cast<std::uint64_t>(v.get_int("num_morsels", 0));
  if (job.trace_path.empty() || job.catalog_path.empty()) {
    IVT_THROW(errors::Category::Decode,
              "dist: job spec missing trace_path/catalog_path");
  }
  return job;
}

std::string failures_to_wire(
    const std::vector<errors::FailureRecord>& records) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const errors::FailureRecord& r : records) {
    if (!first) os << ", ";
    first = false;
    os << json::Object{}
              .add("site", r.site)
              .add("unit", r.unit)
              .add("category", std::string(errors::to_string(r.category)))
              .add("message", r.message)
              .add("retries", static_cast<std::uint64_t>(r.retries))
              .str();
  }
  os << "]";
  return os.str();
}

std::vector<errors::FailureRecord> failures_from_wire(
    const json::Value& v, const std::string& key) {
  std::vector<errors::FailureRecord> out;
  const json::Value* arr = v.find(key);
  if (arr == nullptr || arr->is_null()) return out;
  if (!arr->is_array()) {
    IVT_THROW(errors::Category::Decode,
              "dist: \"" + key + "\" is not an array");
  }
  for (const json::Value& item : arr->array()) {
    if (!item.is_object()) {
      IVT_THROW(errors::Category::Decode,
                "dist: failure record is not an object");
    }
    errors::FailureRecord r;
    r.site = item.get_string("site", "");
    r.unit = item.get_string("unit", "");
    r.message = item.get_string("message", "");
    r.retries = static_cast<std::size_t>(item.get_int("retries", 0));
    const std::string cat = item.get_string("category", "internal");
    const auto parsed = errors::parse_category(cat);
    if (!parsed) {
      IVT_THROW(errors::Category::Decode,
                "dist: unknown failure category: " + cat);
    }
    r.category = *parsed;
    out.push_back(std::move(r));
  }
  return out;
}

void throw_wire_error(const json::Value& response) {
  const std::string message =
      response.get_string("error", "dist: peer reported an error");
  const std::string cat = response.get_string("category", "internal");
  const auto parsed = errors::parse_category(cat);
  throw errors::Error(parsed.value_or(errors::Category::Internal), message);
}

std::string render_wire_error(const errors::Error& e) {
  return json::Object{}
      .add("ok", false)
      .add("error", e.message())
      .add("category", std::string(errors::to_string(e.category())))
      .str();
}

}  // namespace ivt::dist
