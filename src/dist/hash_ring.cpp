#include "dist/hash_ring.hpp"

namespace ivt::dist {

std::uint64_t stable_hash(const std::string& text) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void HashRing::add_node(const std::string& name) {
  if (contains(name)) return;
  const std::uint64_t base = stable_hash(name);
  for (std::size_t v = 0; v < kVirtualNodes; ++v) {
    // Mixed per virtual point; collisions (astronomically unlikely)
    // resolve to whichever node inserted first — deterministic, since
    // membership changes are serialized under the coordinator's lock.
    points_.emplace(splitmix64(base + v), name);
  }
  ++nodes_;
}

void HashRing::remove_node(const std::string& name) {
  if (!contains(name)) return;
  for (auto it = points_.begin(); it != points_.end();) {
    it = it->second == name ? points_.erase(it) : std::next(it);
  }
  --nodes_;
}

bool HashRing::contains(const std::string& name) const {
  const std::uint64_t base = stable_hash(name);
  const auto it = points_.find(splitmix64(base));
  return it != points_.end() && it->second == name;
}

std::string HashRing::owner(std::uint64_t key) const {
  if (points_.empty()) return {};
  auto it = points_.lower_bound(key);
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->second;
}

}  // namespace ivt::dist
