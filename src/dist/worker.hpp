// The dist worker: registers, heartbeats, pulls ranges, ships partials.
//
// run_worker is a synchronous function (the `ivt worker` command and the
// sim layer's node threads both just call it): it registers with the
// coordinator under jittered exponential backoff, starts a heartbeat
// thread, then loops dist.next → process range → dist.result until the
// coordinator answers done. All compute goes through the shared
// core::MorselProcessor, so a partial computed here is bit-identical to
// one computed by any other worker or by the in-process modes.
//
// Failure behaviour, worker side:
//   - transient RPC errors (Timeout / Overloaded / Io) are retried on a
//     fresh connection; dist.result retries re-send the identical
//     payload, which the coordinator's (range, epoch) dedup makes safe.
//   - "known": false from any op means the coordinator declared this
//     worker dead; it re-registers under the same name and receives a
//     fresh generation — in-flight work under the old generation is
//     abandoned (the coordinator already revoked it).
//
// The simulated node layer threads through SimOptions: a seeded
// per-assignment death draw (the worker stops heartbeating and abandons
// the range mid-way — exactly the crash profile the coordinator must
// recover from), an added per-RPC latency, and a per-morsel slowdown for
// straggler experiments. All draws are splitmix64 over (seed, worker
// name, task ordinal): deterministic, faultfx-style.
#pragma once

#include <cstdint>
#include <string>

namespace ivt::dist {

struct SimOptions {
  std::uint64_t seed = 0;
  /// Per-assignment probability that the worker dies mid-range.
  double failure_rate = 0.0;
  /// Added latency before every RPC, milliseconds.
  int latency_ms = 0;
  /// Per-morsel slowdown factor: sleeps (slow_factor - 1) × 1ms per
  /// morsel. 1.0 = none. Used to provoke the straggler policy.
  double slow_factor = 1.0;
};

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Stable identity on the coordinator's hash ring. Sim respawns bake
  /// the incarnation into the name ("node2.3") so a replacement gets
  /// fresh death draws.
  std::string name;
  /// Client deadline per RPC (serve::Client timeout_ms); 0 = blocking.
  int timeout_ms = 5000;
  /// Give up registering after this long (coordinator never came up).
  int register_timeout_ms = 10000;
  /// Retries per dist.result send before giving up on the range.
  int result_retries = 5;
  SimOptions sim;
};

struct WorkerOutcome {
  bool completed = false;        ///< saw "done" from the coordinator
  bool simulated_death = false;  ///< killed by the sim layer mid-range
  std::uint64_t ranges_done = 0;
  std::uint64_t register_attempts = 0;
  std::uint64_t result_retries = 0;
};

/// Run one worker to completion (or simulated death). Throws
/// errors::Error only for non-recoverable setup problems: registration
/// deadline exhausted, unreadable trace/catalog, or a morsel-count
/// mismatch against the coordinator's job spec.
WorkerOutcome run_worker(const WorkerOptions& options);

}  // namespace ivt::dist
