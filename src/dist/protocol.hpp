// Coordinator <-> worker control protocol, carried over IVQ1 frames.
//
// Four ops, all initiated by the worker (the coordinator never dials
// out, so workers behind NAT / in other processes need no listener):
//
//   dist.register   {"op", "worker": name}
//     -> {"ok": true, "worker_id", "generation", "heartbeat_ms",
//         "dead_after_missed", "trace_id", "job": {JobSpec}}
//   dist.heartbeat  {"op", "worker_id", "generation"}
//     -> {"ok": true, "known": bool}
//   dist.next       {"op", "worker_id", "generation"}
//     -> {"ok": true, "known": bool, and one of
//         "task": {"range_id", "epoch", "begin", "end"} |
//         "done": true | "wait_ms": N}
//   dist.result     {"op", "worker_id", "generation", "range_id",
//                    "epoch", counters..., "failures": [...]}
//                   + payload = partial_codec-encoded split segments
//     -> {"ok": true, "accepted": bool}
//
// `known: false` tells a worker the coordinator declared it dead (missed
// heartbeats) — its reaction is to re-register under the same name and
// receive a fresh generation; any result it sends under the old
// generation is deduplicated by (range_id, epoch) and discarded, so a
// zombie can never corrupt the merge. Errors travel back as
// {"ok": false, "error", "category"} and are rethrown client-side as
// typed errors::Error, exactly like ivt-serve responses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "colstore/format.hpp"
#include "errors/error.hpp"
#include "errors/failure_log.hpp"
#include "serve/json.hpp"

namespace ivt::dist {

inline constexpr const char* kOpRegister = "dist.register";
inline constexpr const char* kOpHeartbeat = "dist.heartbeat";
inline constexpr const char* kOpNext = "dist.next";
inline constexpr const char* kOpResult = "dist.result";

/// Everything a worker needs to open the trace and compute morsel
/// partials that are bit-identical to the coordinator's own pipeline:
/// the inputs of core::MorselProcessor. Reduction / extension /
/// classification parameters stay coordinator-side (they run after the
/// merge), so they are deliberately absent.
struct JobSpec {
  std::string trace_path;
  std::string catalog_path;
  std::vector<std::string> signals;  ///< U_comb; empty = all catalog
  errors::ErrorPolicy on_error = errors::ErrorPolicy::Fail;
  /// Chunk evaluation mode (--scan). Must match the coordinator's own
  /// pipeline config: both produce byte-identical partials either way,
  /// but the mode decides whether workers pay the decode tax per morsel.
  colstore::ScanMode scan_mode = colstore::ScanMode::Decoded;
  /// When set, workers ship each morsel's interpreted K_s rows alongside
  /// the split segments so the coordinator can rebuild the K_s table in
  /// morsel order — byte-identical to the batch/streaming one.
  bool keep_ks = false;
  /// Zone-map-surviving morsel count the coordinator planned against;
  /// workers verify their own cursor agrees before taking work (a
  /// mismatched file version would silently mis-merge otherwise).
  std::uint64_t num_morsels = 0;
};

[[nodiscard]] std::string job_spec_to_json(const JobSpec& job);
[[nodiscard]] JobSpec job_spec_from_json(const serve::json::Value& v);

/// One unit of assignable work: morsels [begin, end) of the job's trace.
/// `epoch` is the coordinator's global assignment counter — every grant
/// (first assignment, re-assignment after a death, speculative
/// duplicate) gets a fresh epoch, and exactly one (range_id, epoch) pair
/// is ever accepted per range.
struct TaskAssignment {
  std::uint64_t range_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Per-range scan/compute counters shipped with a result so the
/// coordinator can reconstruct the exact ScanStats and row totals the
/// in-process modes would have produced.
struct RangeCounters {
  std::uint64_t rows_considered = 0;
  std::uint64_t rows_emitted = 0;   ///< K_b rows after quarantine losses
  std::uint64_t kpre_rows = 0;
  std::uint64_t ks_rows = 0;
  std::uint64_t chunks_scanned = 0;
  std::uint64_t chunks_quarantined = 0;
  std::uint64_t rows_quarantined = 0;
};

/// Render / parse the failures array carried inside dist.result bodies.
[[nodiscard]] std::string failures_to_wire(
    const std::vector<errors::FailureRecord>& records);
[[nodiscard]] std::vector<errors::FailureRecord> failures_from_wire(
    const serve::json::Value& v, const std::string& key);

/// Throw the typed error encoded in an {"ok": false} response.
[[noreturn]] void throw_wire_error(const serve::json::Value& response);

/// Render an error response ({"ok": false, "error", "category"}).
[[nodiscard]] std::string render_wire_error(const errors::Error& e);

}  // namespace ivt::dist
