#include "dist/partial_codec.hpp"

#include <cstring>
#include <type_traits>

#include "errors/error.hpp"

namespace ivt::dist {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(v));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

template <typename T>
void put_array(std::string& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

/// Bounds-checked forward reader over the payload bytes.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(bytes_.data() + pos_, n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> array(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    need(n * sizeof(T));
    std::vector<T> v(n);
    std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) {
      IVT_THROW(errors::Category::Decode,
                "dist: truncated partial payload (need " +
                    std::to_string(n) + " bytes, have " +
                    std::to_string(bytes_.size() - pos_) + ")");
    }
  }

  void raw(void* dst, std::size_t n) {
    need(n);
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

/// Reject an untrusted element/segment count that could not possibly fit
/// in the payload BEFORE reserving for it — a hostile count must become
/// a typed Decode error, never std::bad_alloc (every encoded unit is
/// at least one byte, so `count > payload bytes` is always corrupt).
void check_count(std::uint64_t count, std::size_t payload_size,
                 const char* what) {
  if (count > payload_size) {
    IVT_THROW(errors::Category::Decode,
              std::string("dist: ") + what + " count exceeds payload size");
  }
}

void encode_segments(std::string& out,
                     const std::vector<core::MorselPartial>& partials) {
  std::size_t count = 0;
  for (const core::MorselPartial& p : partials) count += p.segments.size();

  put_u32(out, static_cast<std::uint32_t>(count));
  for (const core::MorselPartial& p : partials) {
    for (const core::KeySegment& seg : p.segments) {
      put_u64(out, static_cast<std::uint64_t>(p.morsel));
      put_u64(out, static_cast<std::uint64_t>(seg.first_row));
      put_str(out, seg.key);
      const core::SequenceData& d = seg.data;
      put_str(out, d.s_id);
      put_str(out, d.bus);
      put_u64(out, static_cast<std::uint64_t>(d.t.size()));
      put_array(out, d.t);
      put_array(out, d.v_num);
      put_array(out, d.has_num);
      put_array(out, d.has_str);
      for (const std::string& s : d.v_str) put_str(out, s);
    }
  }
}

std::vector<WireSegment> decode_segments(Reader& in,
                                         std::size_t payload_size) {
  const std::uint32_t count = in.u32();
  check_count(count, payload_size, "partial segment");
  std::vector<WireSegment> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WireSegment seg;
    seg.morsel = in.u64();
    seg.first_row = in.u64();
    seg.key = in.str();
    core::SequenceData& d = seg.data;
    d.s_id = in.str();
    d.bus = in.str();
    const std::uint64_t n64 = in.u64();
    check_count(n64, payload_size, "partial element");
    const auto n = static_cast<std::size_t>(n64);
    d.t = in.array<std::int64_t>(n);
    d.v_num = in.array<double>(n);
    d.has_num = in.array<std::uint8_t>(n);
    d.has_str = in.array<std::uint8_t>(n);
    d.v_str.reserve(n);
    for (std::size_t k = 0; k < n; ++k) d.v_str.push_back(in.str());
    out.push_back(std::move(seg));
  }
  return out;
}

}  // namespace

std::string encode_partials(
    const std::vector<core::MorselPartial>& partials) {
  std::string out;
  encode_segments(out, partials);
  return out;
}

std::vector<WireSegment> decode_partials(const std::string& payload) {
  Reader in(payload);
  std::vector<WireSegment> out = decode_segments(in, payload.size());
  if (!in.exhausted()) {
    IVT_THROW(errors::Category::Decode,
              "dist: trailing bytes after last partial segment");
  }
  return out;
}

std::string encode_range_payload(
    const std::vector<core::MorselPartial>& partials,
    const std::vector<WireKsBlock>& ks_blocks) {
  std::string out;
  encode_segments(out, partials);
  put_u32(out, static_cast<std::uint32_t>(ks_blocks.size()));
  for (const WireKsBlock& b : ks_blocks) {
    put_u64(out, b.morsel);
    put_u64(out, static_cast<std::uint64_t>(b.t.size()));
    put_array(out, b.t);
    put_array(out, b.v_num);
    put_array(out, b.has_num);
    put_array(out, b.has_str);
    for (const std::string& s : b.s_id) put_str(out, s);
    for (const std::string& s : b.v_str) put_str(out, s);
    for (const std::string& s : b.b_id) put_str(out, s);
  }
  return out;
}

RangePayload decode_range_payload(const std::string& payload) {
  Reader in(payload);
  RangePayload out;
  out.segments = decode_segments(in, payload.size());
  const std::uint32_t blocks = in.u32();
  check_count(blocks, payload.size(), "K_s block");
  out.ks_blocks.reserve(blocks);
  for (std::uint32_t i = 0; i < blocks; ++i) {
    WireKsBlock b;
    b.morsel = in.u64();
    const std::uint64_t n64 = in.u64();
    check_count(n64, payload.size(), "K_s row");
    const auto n = static_cast<std::size_t>(n64);
    b.t = in.array<std::int64_t>(n);
    b.v_num = in.array<double>(n);
    b.has_num = in.array<std::uint8_t>(n);
    b.has_str = in.array<std::uint8_t>(n);
    b.s_id.reserve(n);
    for (std::size_t k = 0; k < n; ++k) b.s_id.push_back(in.str());
    b.v_str.reserve(n);
    for (std::size_t k = 0; k < n; ++k) b.v_str.push_back(in.str());
    b.b_id.reserve(n);
    for (std::size_t k = 0; k < n; ++k) b.b_id.push_back(in.str());
    out.ks_blocks.push_back(std::move(b));
  }
  if (!in.exhausted()) {
    IVT_THROW(errors::Category::Decode,
              "dist: trailing bytes after last K_s block");
  }
  return out;
}

}  // namespace ivt::dist
