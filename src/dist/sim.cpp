#include "dist/sim.hpp"

#include <atomic>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "errors/error.hpp"
#include "obs/obs.hpp"
#include "support/mutex.hpp"

namespace ivt::dist {

core::PipelineResult run_dist(const signaldb::Catalog& catalog,
                              core::PipelineConfig config,
                              const colstore::ColumnarReader& reader,
                              const DistRunConfig& dist_config,
                              dataflow::Engine& engine,
                              colstore::ScanStats* stats) {
  OBS_SPAN("dist.run");
  const std::size_t nodes = std::max<std::size_t>(dist_config.nodes, 1);

  CoordinatorConfig ccfg;
  ccfg.trace_path = dist_config.trace_path;
  ccfg.catalog_path = dist_config.catalog_path;
  ccfg.target_ranges = dist_config.target_ranges;
  ccfg.expected_workers = nodes;
  ccfg.heartbeat_ms = dist_config.heartbeat_ms;
  ccfg.dead_after_missed = dist_config.dead_after_missed;
  ccfg.speculate_min_age = dist_config.speculate_min_age;
  ccfg.trace_id = dist_config.trace_id;
  Coordinator coordinator(catalog, std::move(config), reader, ccfg);
  coordinator.start();

  std::atomic<bool> job_done{false};
  std::atomic<std::size_t> live_slots{nodes};
  // First non-transient worker error (e.g. a corrupt chunk under
  // --on-error=fail): when the whole cluster dies of it, the caller gets
  // THIS error — same category, same exit code as batch — instead of a
  // generic "coordinator stopped" internal error.
  support::Mutex first_error_mutex{
      support::LockRank::k_dist_sim_first_error_mutex};
  std::exception_ptr first_error;
  // Shared respawn budget: fetch_sub claims one respawn; once it goes
  // non-positive, replacements run with the failure injection disabled —
  // the job terminates no matter how hostile the configured rate is.
  std::atomic<std::int64_t> respawn_budget{
      dist_config.respawn_budget > 0
          ? static_cast<std::int64_t>(dist_config.respawn_budget)
          : static_cast<std::int64_t>(4 * nodes)};

  std::vector<std::thread> slots;
  slots.reserve(nodes);
  for (std::size_t slot = 0; slot < nodes; ++slot) {
    slots.emplace_back([&, slot] {
      std::size_t incarnation = 0;
      bool failures_enabled = true;
      while (!job_done.load(std::memory_order_acquire)) {
        WorkerOptions opts;
        opts.host = coordinator.host();
        opts.port = coordinator.port();
        // The incarnation is baked into the ring identity so a respawn
        // draws a fresh death schedule; ring placement shifts only for
        // this node's share (consistent hashing).
        opts.name = "node" + std::to_string(slot + 1) + "." +
                    std::to_string(incarnation);
        opts.timeout_ms = dist_config.worker_timeout_ms;
        opts.sim.seed = dist_config.seed;
        opts.sim.failure_rate =
            failures_enabled ? dist_config.failure_rate : 0.0;
        opts.sim.latency_ms = dist_config.latency_ms;
        opts.sim.slow_factor = dist_config.slow_factor;
        try {
          const WorkerOutcome outcome = run_worker(opts);
          if (outcome.completed) break;
          if (outcome.simulated_death) {
            if (respawn_budget.fetch_sub(1, std::memory_order_acq_rel) <=
                0) {
              // Budget exhausted: the replacement is failure-free, so
              // this slot is now guaranteed to make progress.
              failures_enabled = false;
            }
            ++incarnation;
            continue;  // self-heal: respawn immediately
          }
          break;  // neither completed nor died: treat as a clean exit
        } catch (const errors::Error& e) {
          if (job_done.load(std::memory_order_acquire)) break;
          // A real setup failure (bad paths, morsel mismatch, a corrupt
          // chunk under fail policy) or the registration deadline.
          // Retrying with the same inputs would fail identically for
          // non-transient categories — give the slot up; the job can
          // still finish on the other slots.
          {
            const support::MutexLock lock(first_error_mutex);
            if (first_error == nullptr) {
              first_error = std::current_exception();
            }
          }
          std::fprintf(stderr, "ivt-dist: %s failed: %s\n",
                       opts.name.c_str(), e.describe().c_str());
          break;
        }
      }
      if (live_slots.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
          !job_done.load(std::memory_order_acquire)) {
        // Every slot is gone and the job is not done: wake wait_result
        // so the caller gets a typed error instead of a hang.
        coordinator.request_stop();
      }
    });
  }

  core::PipelineResult result;
  try {
    result = coordinator.wait_result(engine, stats);
  } catch (...) {
    job_done.store(true, std::memory_order_release);
    coordinator.request_stop();
    for (std::thread& t : slots) t.join();
    coordinator.stop();
    const support::MutexLock lock(first_error_mutex);
    if (first_error != nullptr) std::rethrow_exception(first_error);
    throw;
  }
  job_done.store(true, std::memory_order_release);
  for (std::thread& t : slots) t.join();
  coordinator.stop();
  return result;
}

}  // namespace ivt::dist
