#include "dist/worker.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "colstore/columnar_reader.hpp"
#include "core/partials.hpp"
#include "core/pipeline.hpp"
#include "core/schemas.hpp"
#include "dataflow/table.hpp"
#include "dist/hash_ring.hpp"
#include "dist/partial_codec.hpp"
#include "dist/protocol.hpp"
#include "errors/error.hpp"
#include "errors/failure_log.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "obs/trace_context.hpp"
#include "serve/client.hpp"
#include "signaldb/catalog.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace ivt::dist {

namespace json = serve::json;

namespace {

using Clock = std::chrono::steady_clock;

/// Uniform [0, 1) from a splitmix64 stream — the faultfx recipe.
double unit_draw(std::uint64_t x) {
  return static_cast<double>(splitmix64(x) >> 11U) /
         static_cast<double>(1ULL << 53U);
}

void sleep_ms(std::int64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// What registration hands the rest of the worker.
struct Registration {
  std::uint64_t worker_id = 0;
  std::uint64_t generation = 0;
  int heartbeat_ms = 50;
  std::uint64_t trace_id = 0;
  JobSpec job;
};

/// One registration attempt over a fresh connection.
Registration register_once(const WorkerOptions& options) {
  serve::Client client(options.host, options.port, options.timeout_ms);
  const std::string body =
      json::Object{}.add("op", kOpRegister).add("worker", options.name).str();
  const serve::ClientResponse response = client.request(body);
  if (!response.ok()) throw_wire_error(response.body);
  Registration reg;
  reg.worker_id =
      static_cast<std::uint64_t>(response.body.get_int("worker_id", 0));
  reg.generation =
      static_cast<std::uint64_t>(response.body.get_int("generation", 0));
  reg.heartbeat_ms =
      static_cast<int>(response.body.get_int("heartbeat_ms", 50));
  reg.trace_id =
      obs::parse_trace_id_hex(response.body.get_string("trace_id", ""));
  const json::Value* job = response.body.find("job");
  if (job == nullptr) {
    IVT_THROW(errors::Category::Decode,
              "dist: register reply carries no job spec");
  }
  reg.job = job_spec_from_json(*job);
  if (reg.worker_id == 0 || reg.generation == 0) {
    IVT_THROW(errors::Category::Decode,
              "dist: register reply carries no identity");
  }
  return reg;
}

/// Register under jittered exponential backoff until the deadline. Every
/// failure — connection refused (coordinator still binding), injected
/// dist.register faults, timeouts — is retried; only the deadline gives
/// up. Jitter decorrelates a herd of workers started at the same instant.
Registration register_with_backoff(const WorkerOptions& options,
                                   std::uint64_t& attempts) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options.register_timeout_ms);
  std::int64_t backoff_ms = 50;
  std::string last_error;
  for (std::uint64_t attempt = 0;; ++attempt) {
    ++attempts;
    try {
      return register_once(options);
    } catch (const errors::Error& e) {
      last_error = e.message();
    }
    if (Clock::now() >= deadline) break;
    // Full jitter: uniform in [backoff/2, backoff), seeded per (worker,
    // attempt) so sim runs are reproducible.
    const double jitter = unit_draw(options.sim.seed ^
                                    stable_hash(options.name) ^
                                    (attempt * 0x9E37ULL));
    sleep_ms(backoff_ms / 2 +
             static_cast<std::int64_t>(jitter *
                                       static_cast<double>(backoff_ms) / 2));
    backoff_ms = std::min<std::int64_t>(backoff_ms * 2, 1000);
  }
  IVT_THROW(errors::Category::Timeout,
            "dist: registration deadline exhausted for worker '" +
                options.name + "' (last error: " + last_error + ")");
}

/// Background heartbeat: one beat per heartbeat_ms on its own
/// connection. Errors are tolerated silently — a beat that does not
/// arrive is exactly the signal the coordinator's membership sweep is
/// built to interpret. A "known": false answer latches `zombied`, which
/// the task loop reads as "re-register before pulling more work".
class HeartbeatThread {
 public:
  HeartbeatThread(const WorkerOptions& options, const Registration& reg)
      : options_(options), reg_(reg) {
    thread_ = std::thread([this] { loop(); });
  }

  ~HeartbeatThread() { stop(); }

  HeartbeatThread(const HeartbeatThread&) = delete;
  HeartbeatThread& operator=(const HeartbeatThread&) = delete;

  void stop() {
    {
      const support::MutexLock lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] bool zombied() const {
    return zombied_.load(std::memory_order_acquire);
  }

 private:
  void loop() {
    obs::set_current_node(static_cast<std::int32_t>(reg_.worker_id));
    const obs::TraceContextScope trace_scope(
        obs::TraceContext{reg_.trace_id, /*span_id=*/1});
    std::unique_ptr<serve::Client> client;
    const std::string body = json::Object{}
                                 .add("op", kOpHeartbeat)
                                 .add("worker_id", reg_.worker_id)
                                 .add("generation", reg_.generation)
                                 .str();
    while (true) {
      {
        support::MutexLock lock(mutex_);
        if (!stopping_) {
          cv_.wait_for(lock,
                       std::chrono::milliseconds(reg_.heartbeat_ms));
        }
        if (stopping_) return;
      }
      try {
        sleep_ms(options_.sim.latency_ms);
        if (client == nullptr) {
          client = std::make_unique<serve::Client>(
              options_.host, options_.port, options_.timeout_ms);
        }
        const serve::ClientResponse response = client->request(body);
        if (response.ok() && !response.body.get_bool("known", true)) {
          zombied_.store(true, std::memory_order_release);
          return;  // no point beating for a dead generation
        }
      } catch (const errors::Error&) {
        client.reset();  // reconnect on the next beat
      }
    }
  }

  const WorkerOptions& options_;
  const Registration& reg_;
  support::Mutex mutex_{support::LockRank::k_dist_HeartbeatThread_mutex_};
  support::CondVar cv_;
  bool stopping_ IVT_GUARDED_BY(mutex_) = false;
  std::atomic<bool> zombied_{false};
  std::thread thread_;
};

/// Trace + catalog + processor, opened once per registration (the job
/// spec is immutable for the life of a coordinator).
struct LocalJob {
  // Everything behind unique_ptr: the pipeline/processor hold references
  // into the catalog and reader, so none of them may relocate when the
  // LocalJob itself moves out of open_job.
  std::unique_ptr<signaldb::Catalog> catalog;
  std::unique_ptr<colstore::ColumnarReader> reader;
  std::unique_ptr<core::Pipeline> pipeline;
  std::unique_ptr<errors::FailureLog> scan_failures;
  std::unique_ptr<core::MorselProcessor> processor;
};

LocalJob open_job(const JobSpec& job) {
  LocalJob local;
  local.catalog = std::make_unique<signaldb::Catalog>(
      signaldb::load_catalog(job.catalog_path));
  local.reader = std::make_unique<colstore::ColumnarReader>(job.trace_path);
  core::PipelineConfig config;
  config.signals = job.signals;
  config.on_error = job.on_error;
  config.scan_mode = job.scan_mode;
  config.keep_ks = job.keep_ks;
  local.pipeline =
      std::make_unique<core::Pipeline>(*local.catalog, std::move(config));
  local.scan_failures = std::make_unique<errors::FailureLog>();
  local.processor = std::make_unique<core::MorselProcessor>(
      *local.reader, local.pipeline->urel(), local.pipeline->config(),
      local.scan_failures.get());
  if (local.processor->num_morsels() != job.num_morsels) {
    IVT_THROW(errors::Category::Format,
              "dist: worker sees " +
                  std::to_string(local.processor->num_morsels()) +
                  " morsels but the job spec says " +
                  std::to_string(job.num_morsels) +
                  " — trace file mismatch between nodes");
  }
  return local;
}

struct RangeResult {
  std::vector<core::MorselPartial> partials;
  std::vector<WireKsBlock> ks_blocks;  ///< only when the job keeps K_s
  RangeCounters counters;
  std::vector<errors::FailureRecord> failures;
};

/// Flatten one morsel's interpreted K_s partition into wire form.
WireKsBlock to_ks_block(std::uint64_t morsel, const dataflow::Partition& p) {
  WireKsBlock b;
  b.morsel = morsel;
  const std::size_t n = p.num_rows();
  for (std::size_t r = 0; r < n; ++r) {
    b.t.push_back(p.columns[0].int64_at(r));
    b.s_id.push_back(p.columns[1].string_at(r));
    if (p.columns[2].is_null(r)) {
      b.v_num.push_back(0.0);
      b.has_num.push_back(0);
    } else {
      b.v_num.push_back(p.columns[2].float64_at(r));
      b.has_num.push_back(1);
    }
    if (p.columns[3].is_null(r)) {
      b.v_str.emplace_back();
      b.has_str.push_back(0);
    } else {
      b.v_str.push_back(p.columns[3].string_at(r));
      b.has_str.push_back(1);
    }
    b.b_id.push_back(p.columns[4].string_at(r));
  }
  return b;
}

/// Process morsels [begin, end). Counters are before/after diffs of the
/// shared cursor's cumulative stats — valid because one worker processes
/// ranges strictly sequentially.
RangeResult process_range(LocalJob& local, const TaskAssignment& task,
                          const SimOptions& sim) {
  OBS_SPAN_V(span, "dist.process_range");
  const colstore::ScanStats before = local.processor->stats();
  const std::size_t failures_before = local.scan_failures->size();
  const bool keep_ks = local.pipeline->config().keep_ks;
  RangeResult out;
  out.partials.reserve(static_cast<std::size_t>(task.end - task.begin));
  for (std::uint64_t k = task.begin; k < task.end; ++k) {
    if (sim.slow_factor > 1.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sim.slow_factor - 1.0));
    }
    if (keep_ks) {
      dataflow::Partition ks_part =
          dataflow::Table::make_partition(core::ks_schema());
      out.partials.push_back(
          local.processor->process(static_cast<std::size_t>(k), &ks_part));
      if (ks_part.num_rows() > 0) {
        out.ks_blocks.push_back(to_ks_block(k, ks_part));
      }
    } else {
      out.partials.push_back(
          local.processor->process(static_cast<std::size_t>(k)));
    }
  }
  const colstore::ScanStats after = local.processor->stats();
  out.counters.rows_considered = 0;  // prune-time; coordinator-side
  out.counters.rows_emitted = after.rows_emitted - before.rows_emitted;
  out.counters.chunks_scanned =
      static_cast<std::uint64_t>(task.end - task.begin);
  out.counters.chunks_quarantined =
      after.chunks_quarantined - before.chunks_quarantined;
  out.counters.rows_quarantined =
      after.rows_quarantined - before.rows_quarantined;
  for (const core::MorselPartial& p : out.partials) {
    out.counters.kpre_rows += p.kpre_rows;
    out.counters.ks_rows += p.ks_rows;
  }
  const std::vector<errors::FailureRecord> all =
      local.scan_failures->records();
  out.failures.assign(all.begin() + static_cast<std::ptrdiff_t>(
                                        failures_before),
                      all.end());
  std::uint64_t ks_total = 0;
  for (const core::MorselPartial& p : out.partials) ks_total += p.ks_rows;
  span.set_rows(ks_total);
  return out;
}

std::string result_body(const Registration& reg, const TaskAssignment& task,
                        const RangeResult& result) {
  return json::Object{}
      .add("op", kOpResult)
      .add("worker_id", reg.worker_id)
      .add("generation", reg.generation)
      .add("range_id", task.range_id)
      .add("epoch", task.epoch)
      .add("rows_considered", result.counters.rows_considered)
      .add("rows_emitted", result.counters.rows_emitted)
      .add("kpre_rows", result.counters.kpre_rows)
      .add("ks_rows", result.counters.ks_rows)
      .add("chunks_scanned", result.counters.chunks_scanned)
      .add("chunks_quarantined", result.counters.chunks_quarantined)
      .add("rows_quarantined", result.counters.rows_quarantined)
      .raw("failures", failures_to_wire(result.failures))
      .str();
}

}  // namespace

WorkerOutcome run_worker(const WorkerOptions& options) {
  WorkerOutcome outcome;
  Registration reg = register_with_backoff(options, outcome.register_attempts);
  obs::set_current_node(static_cast<std::int32_t>(reg.worker_id));
  const obs::TraceContextScope trace_scope(
      obs::TraceContext{reg.trace_id, /*span_id=*/1});
  OBS_SPAN("dist.worker");
  LocalJob local = open_job(reg.job);

  auto heartbeat = std::make_unique<HeartbeatThread>(options, reg);
  std::unique_ptr<serve::Client> client;
  std::uint64_t task_ordinal = 0;

  const auto rpc = [&](const std::string& body) -> serve::ClientResponse {
    sleep_ms(options.sim.latency_ms);
    if (client == nullptr) {
      client = std::make_unique<serve::Client>(options.host, options.port,
                                               options.timeout_ms);
    }
    return client->request(body);
  };

  // Consecutive transient dist.next failures are bounded by the same
  // deadline as registration: a coordinator that is gone for that long is
  // never coming back (membership is in-memory), so erroring out beats
  // polling a dead port forever. Reset on every successful round trip.
  std::optional<Clock::time_point> unreachable_since;

  while (true) {
    if (heartbeat->zombied()) {
      // Declared dead (e.g. an injected dist.heartbeat fault starved the
      // membership sweep). Same name, fresh generation; the old
      // generation's work is already revoked coordinator-side.
      heartbeat->stop();
      reg = register_with_backoff(options, outcome.register_attempts);
      obs::set_current_node(static_cast<std::int32_t>(reg.worker_id));
      heartbeat = std::make_unique<HeartbeatThread>(options, reg);
      client.reset();
    }

    // --- pull the next assignment -------------------------------------
    json::Value next_body;
    try {
      const serve::ClientResponse response = rpc(
          json::Object{}
              .add("op", kOpNext)
              .add("worker_id", reg.worker_id)
              .add("generation", reg.generation)
              .str());
      if (!response.ok()) throw_wire_error(response.body);
      next_body = response.body;
      unreachable_since.reset();
    } catch (const errors::Error& e) {
      if (!errors::is_transient(e.category()) &&
          e.category() != errors::Category::Io) {
        throw;
      }
      const auto now = Clock::now();
      if (!unreachable_since) unreachable_since = now;
      if (now - *unreachable_since >=
          std::chrono::milliseconds(options.register_timeout_ms)) {
        heartbeat->stop();
        IVT_THROW(errors::Category::Timeout,
                  "dist: coordinator unreachable for " +
                      std::to_string(options.register_timeout_ms) +
                      " ms (last error: " + e.message() + ")");
      }
      client.reset();
      sleep_ms(reg.heartbeat_ms);
      continue;
    }
    if (!next_body.get_bool("known", true)) {
      heartbeat->stop();
      reg = register_with_backoff(options, outcome.register_attempts);
      obs::set_current_node(static_cast<std::int32_t>(reg.worker_id));
      heartbeat = std::make_unique<HeartbeatThread>(options, reg);
      client.reset();
      continue;
    }
    if (next_body.get_bool("done", false)) {
      outcome.completed = true;
      break;
    }
    const json::Value* task_json = next_body.find("task");
    if (task_json == nullptr) {
      sleep_ms(next_body.get_int("wait_ms", reg.heartbeat_ms));
      continue;
    }
    TaskAssignment task;
    task.range_id =
        static_cast<std::uint64_t>(task_json->get_int("range_id", 0));
    task.epoch = static_cast<std::uint64_t>(task_json->get_int("epoch", 0));
    task.begin = static_cast<std::uint64_t>(task_json->get_int("begin", 0));
    task.end = static_cast<std::uint64_t>(task_json->get_int("end", 0));

    // --- simulated node death -----------------------------------------
    // One seeded draw per assignment, keyed on (seed, name, ordinal):
    // deterministic across reruns, independent across workers and
    // incarnations (respawns change the name).
    const std::uint64_t draw_key = options.sim.seed ^
                                   stable_hash(options.name) ^
                                   (task_ordinal << 17U);
    ++task_ordinal;
    if (options.sim.failure_rate > 0.0 &&
        unit_draw(draw_key) < options.sim.failure_rate) {
      // Die *mid-range*, the nastiest moment: some morsels decoded (the
      // cursor's counters already advanced), nothing shipped. The
      // heartbeats stop; the coordinator must discard this partial state
      // and re-assign. Partial compute is simply dropped on the floor —
      // idempotence makes that correct.
      const std::uint64_t half = task.begin + (task.end - task.begin) / 2;
      for (std::uint64_t k = task.begin; k < half; ++k) {
        [[maybe_unused]] core::MorselPartial discarded =
            local.processor->process(static_cast<std::size_t>(k));
      }
      OBS_COUNT("dist.sim_deaths", 1);
      heartbeat->stop();
      outcome.simulated_death = true;
      return outcome;
    }

    // --- process + ship -----------------------------------------------
    const RangeResult result = process_range(local, task, options.sim);
    const serve::Frame frame{
        result_body(reg, task, result),
        encode_range_payload(result.partials, result.ks_blocks)};
    bool sent = false;
    bool job_done = false;
    for (int attempt = 0; attempt <= options.result_retries; ++attempt) {
      if (attempt > 0) {
        ++outcome.result_retries;
        OBS_COUNT("dist.result_retries", 1);
        sleep_ms(reg.heartbeat_ms);
      }
      try {
        sleep_ms(options.sim.latency_ms);
        if (client == nullptr) {
          client = std::make_unique<serve::Client>(
              options.host, options.port, options.timeout_ms);
        }
        const serve::Frame raw = client->request_raw(frame);
        const json::Value response = json::parse(raw.json);
        if (!response.get_bool("ok", false)) {
          throw_wire_error(response);
        }
        // "accepted": false is NOT an error: the range was already done
        // (we lost a speculative race, or this is a retry the first copy
        // of which landed). Either way the result is delivered.
        sent = true;
        job_done = response.get_bool("done", false);
        break;
      } catch (const errors::Error& e) {
        client.reset();
        if (!errors::is_transient(e.category()) &&
            e.category() != errors::Category::Io) {
          throw;
        }
        // Dropped result (injected dist.result fault, timeout, torn
        // connection): loop — "retried, not lost".
      }
    }
    if (!sent) {
      IVT_THROW(errors::Category::Timeout,
                "dist: could not deliver result for range " +
                    std::to_string(task.range_id) + " after " +
                    std::to_string(options.result_retries) + " retries");
    }
    ++outcome.ranges_done;
    OBS_COUNT("dist.ranges_done", 1);
    if (job_done) {
      // This was the job's last missing result — exit without another
      // dist.next round trip (the coordinator may be gone by then).
      outcome.completed = true;
      break;
    }
  }

  heartbeat->stop();
  return outcome;
}

}  // namespace ivt::dist
