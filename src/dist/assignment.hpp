// Range planning and assignment state for the coordinator.
//
// The job is cut into contiguous chunk ranges (plan_ranges); the
// RangeTracker then hands ranges to workers, watches what is in flight,
// and implements the three recovery moves of the design:
//
//   - revoke(worker): a death re-queues every range the worker held.
//     The partial accumulators it might have built are simply never
//     accepted — morsel partials are pure functions of (trace, config,
//     k), so a fresh execution elsewhere is identical (idempotence).
//   - speculate(): the straggler policy duplicates the oldest in-flight
//     range onto an idle worker under a fresh epoch; whichever copy
//     completes first is accepted, the other is recorded as a
//     speculative loss or win.
//   - complete(range, epoch): exactly one (range, epoch) is ever
//     Accepted. Earlier-epoch stragglers and zombie re-sends come back
//     Stale/Duplicate, so the merge sees each morsel exactly once no
//     matter how chaotic the failure schedule was.
//
// The tracker is deliberately NOT thread-safe: the coordinator serializes
// all access under its own mutex, and keeping the state machine
// single-threaded keeps every transition auditable.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/hash_ring.hpp"

namespace ivt::dist {

/// Morsels [begin, end) of the job.
struct ChunkRange {
  std::uint64_t id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Cut `num_morsels` into at most `target_ranges` contiguous ranges of
/// near-equal size (first `num_morsels % target_ranges` ranges one
/// longer). More ranges than workers keeps re-assignment granular: a
/// death re-queues a slice of the job, not a worker's whole share.
[[nodiscard]] std::vector<ChunkRange> plan_ranges(
    std::uint64_t num_morsels, std::uint64_t target_ranges);

enum class RangeState : std::uint8_t {
  Pending,   ///< unassigned (initially, or re-queued after a revoke)
  InFlight,  ///< one or two live assignments outstanding
  Done,      ///< a result was accepted; terminal
};

/// Outcome of offering a completed (range, epoch) result.
enum class CompletionFate : std::uint8_t {
  Accepted,             ///< first completion of the range; merge it
  AcceptedSpeculative,  ///< ditto, and the winner was the duplicate copy
  Duplicate,            ///< range already Done — discard (dedup)
  Stale,                ///< epoch was revoked (dead worker's ghost) — discard
};

class RangeTracker {
 public:
  explicit RangeTracker(std::vector<ChunkRange> ranges);

  /// Next range for `worker`, preferring ranges whose ring owner is
  /// `worker`, then any pending range. Returns true and fills `out`
  /// (with a fresh epoch) when something was assigned.
  bool next(const std::string& worker, const HashRing& ring,
            ChunkRange& out, std::uint64_t& epoch);

  /// Straggler policy: duplicate the longest-in-flight single-assignment
  /// range not already running on `worker`. `now_assignment_age` is the
  /// tracker's logical clock (assignments issued so far); only ranges
  /// assigned at least `min_age` grants ago qualify — "oldest first"
  /// without wall clocks. Returns true when a duplicate was issued.
  bool speculate(const std::string& worker, std::uint64_t min_age,
                 ChunkRange& out, std::uint64_t& epoch);

  /// Offer a completed result. On Accepted*, the range transitions to
  /// Done and every other outstanding epoch for it becomes stale.
  CompletionFate complete(std::uint64_t range_id, std::uint64_t epoch);

  /// Worker died: re-queue its live assignments. Returns the number of
  /// ranges that transitioned back to Pending (a range whose other,
  /// speculative copy is still live stays InFlight and is not counted).
  std::uint64_t revoke(const std::string& worker);

  [[nodiscard]] bool all_done() const { return done_ == ranges_.size(); }
  [[nodiscard]] std::uint64_t num_ranges() const { return ranges_.size(); }
  [[nodiscard]] std::uint64_t pending() const { return pending_; }

  /// Ranges currently assigned to `worker` (diagnostics / tests).
  [[nodiscard]] std::uint64_t in_flight_on(const std::string& worker) const;

 private:
  struct Assignment {
    std::uint64_t epoch = 0;
    std::string worker;
    std::uint64_t issued_at = 0;  ///< logical clock at grant time
    bool speculative = false;
  };

  struct Tracked {
    ChunkRange range;
    RangeState state = RangeState::Pending;
    std::vector<Assignment> live;  ///< 0..2 outstanding assignments
  };

  bool assign(Tracked& t, const std::string& worker, bool speculative,
              ChunkRange& out, std::uint64_t& epoch);

  std::vector<Tracked> ranges_;      ///< indexed by range id
  std::uint64_t next_epoch_ = 1;     ///< 0 is never a valid epoch
  std::uint64_t grants_ = 0;         ///< logical clock
  std::uint64_t pending_ = 0;
  std::uint64_t done_ = 0;
};

}  // namespace ivt::dist
