#include "dist/assignment.hpp"

#include <algorithm>

#include "errors/error.hpp"

namespace ivt::dist {

std::vector<ChunkRange> plan_ranges(std::uint64_t num_morsels,
                                    std::uint64_t target_ranges) {
  std::vector<ChunkRange> out;
  if (num_morsels == 0) return out;
  const std::uint64_t n = std::min(std::max<std::uint64_t>(target_ranges, 1),
                                   num_morsels);
  const std::uint64_t base = num_morsels / n;
  const std::uint64_t extra = num_morsels % n;
  std::uint64_t begin = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t len = base + (i < extra ? 1 : 0);
    out.push_back(ChunkRange{i, begin, begin + len});
    begin += len;
  }
  return out;
}

RangeTracker::RangeTracker(std::vector<ChunkRange> ranges) {
  ranges_.reserve(ranges.size());
  for (ChunkRange& r : ranges) {
    if (r.id != ranges_.size()) {
      IVT_THROW(errors::Category::Internal,
                "dist: range ids must be dense and ordered");
    }
    Tracked t;
    t.range = r;
    ranges_.push_back(std::move(t));
  }
  pending_ = ranges_.size();
}

bool RangeTracker::assign(Tracked& t, const std::string& worker,
                          bool speculative, ChunkRange& out,
                          std::uint64_t& epoch) {
  Assignment a;
  a.epoch = next_epoch_++;
  a.worker = worker;
  a.issued_at = grants_++;
  a.speculative = speculative;
  if (t.state == RangeState::Pending) {
    t.state = RangeState::InFlight;
    --pending_;
  }
  t.live.push_back(std::move(a));
  out = t.range;
  epoch = t.live.back().epoch;
  return true;
}

bool RangeTracker::next(const std::string& worker, const HashRing& ring,
                        ChunkRange& out, std::uint64_t& epoch) {
  Tracked* fallback = nullptr;
  for (Tracked& t : ranges_) {
    if (t.state != RangeState::Pending) continue;
    if (ring.owner_of_range(t.range.begin) == worker) {
      return assign(t, worker, /*speculative=*/false, out, epoch);
    }
    if (fallback == nullptr) fallback = &t;
  }
  // Work conservation: no preferred range pending — steal the first
  // pending one rather than idle while others drain their queues.
  if (fallback != nullptr) {
    return assign(*fallback, worker, /*speculative=*/false, out, epoch);
  }
  return false;
}

bool RangeTracker::speculate(const std::string& worker, std::uint64_t min_age,
                             ChunkRange& out, std::uint64_t& epoch) {
  Tracked* oldest = nullptr;
  for (Tracked& t : ranges_) {
    if (t.state != RangeState::InFlight || t.live.size() != 1) continue;
    const Assignment& a = t.live.front();
    if (a.worker == worker) continue;  // duplicating onto itself is useless
    if (grants_ - a.issued_at < min_age) continue;  // not a straggler yet
    if (oldest == nullptr ||
        a.issued_at < oldest->live.front().issued_at) {
      oldest = &t;
    }
  }
  if (oldest == nullptr) return false;
  return assign(*oldest, worker, /*speculative=*/true, out, epoch);
}

CompletionFate RangeTracker::complete(std::uint64_t range_id,
                                      std::uint64_t epoch) {
  if (range_id >= ranges_.size()) return CompletionFate::Stale;
  Tracked& t = ranges_[range_id];
  if (t.state == RangeState::Done) return CompletionFate::Duplicate;
  const auto it =
      std::find_if(t.live.begin(), t.live.end(),
                   [&](const Assignment& a) { return a.epoch == epoch; });
  if (it == t.live.end()) return CompletionFate::Stale;  // revoked ghost
  const bool won_speculatively = it->speculative;
  t.state = RangeState::Done;
  t.live.clear();  // the losing copy's eventual result will read Duplicate
  ++done_;
  return won_speculatively ? CompletionFate::AcceptedSpeculative
                           : CompletionFate::Accepted;
}

std::uint64_t RangeTracker::revoke(const std::string& worker) {
  std::uint64_t requeued = 0;
  for (Tracked& t : ranges_) {
    if (t.state != RangeState::InFlight) continue;
    const auto dead = std::remove_if(
        t.live.begin(), t.live.end(),
        [&](const Assignment& a) { return a.worker == worker; });
    if (dead == t.live.end()) continue;
    t.live.erase(dead, t.live.end());
    if (t.live.empty()) {
      t.state = RangeState::Pending;
      ++pending_;
      ++requeued;
    }
    // else: a speculative copy survives on another worker; leave it.
  }
  return requeued;
}

std::uint64_t RangeTracker::in_flight_on(const std::string& worker) const {
  std::uint64_t n = 0;
  for (const Tracked& t : ranges_) {
    if (t.state != RangeState::InFlight) continue;
    for (const Assignment& a : t.live) n += a.worker == worker ? 1 : 0;
  }
  return n;
}

}  // namespace ivt::dist
