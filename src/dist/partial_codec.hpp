// Binary encoding of morsel split-segments for dist.result payloads.
//
// A worker ships the KeySegments of every morsel in its completed range
// as one IVQ1 payload. The encoding is positional little-endian —
// exactly the bytes of the columnar SequenceData arrays, with doubles
// copied bit-for-bit — because the whole point of the distributed mode
// is byte-identical output: a float that took a text round-trip would
// not survive `cmp` against the batch state CSV.
//
// Layout (all integers LE):
//   u32  segment_count
//   then per segment:
//     u64  morsel          (global zone-map-surviving chunk index)
//     u64  first_row       (morsel-local first hit of this key)
//     str  key             (u32 len + bytes; split bucket key)
//     str  s_id, str bus
//     u64  n               (element count; all arrays below have n)
//     i64  t[n]
//     f64  v_num[n]        (bit-exact memcpy)
//     u8   has_num[n]
//     u8   has_str[n]
//     str  v_str[n]
//
// Decoding is defensive (a zombie worker from an older generation could
// in principle ship garbage): every length is bounds-checked against the
// remaining payload and violations throw errors::Error(Decode), which
// the coordinator converts into a rejected result — never a crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/partials.hpp"

namespace ivt::dist {

/// One key's segment from one morsel, in wire form. The flattened shape
/// (morsel tag on every segment rather than grouped per morsel) lets the
/// coordinator append straight into core::KeyedSegments.
struct WireSegment {
  std::uint64_t morsel = 0;
  std::uint64_t first_row = 0;
  std::string key;
  core::SequenceData data;
};

/// Flatten the partials of a completed range into one payload.
[[nodiscard]] std::string encode_partials(
    const std::vector<core::MorselPartial>& partials);

/// Parse a dist.result payload. Throws errors::Error(Decode) on any
/// truncation, overflow or trailing bytes.
[[nodiscard]] std::vector<WireSegment> decode_partials(
    const std::string& payload);

/// One morsel's interpreted K_s rows in columnar wire form (ks_schema
/// order: t, s_id, v_num, v_str, b_id; has_num / has_str are the null
/// flags of the two value columns). Shipped only when the job keeps K_s,
/// so the coordinator can rebuild the table byte-identically in morsel
/// order — the split segments alone cannot: they are bucketed per key,
/// and rows of different keys interleave within a morsel.
struct WireKsBlock {
  std::uint64_t morsel = 0;
  std::vector<std::int64_t> t;
  std::vector<std::string> s_id;
  std::vector<double> v_num;
  std::vector<std::uint8_t> has_num;
  std::vector<std::string> v_str;
  std::vector<std::uint8_t> has_str;
  std::vector<std::string> b_id;
};

/// Everything one dist.result payload carries: the split segments plus
/// (when the job keeps K_s) the per-morsel K_s blocks.
struct RangePayload {
  std::vector<WireSegment> segments;
  std::vector<WireKsBlock> ks_blocks;
};

/// Layout: the encode_partials segment section, then a u32 block count
/// and the K_s blocks (count 0 when the job does not keep K_s).
[[nodiscard]] std::string encode_range_payload(
    const std::vector<core::MorselPartial>& partials,
    const std::vector<WireKsBlock>& ks_blocks);

/// Parse a full dist.result payload; same defensive contract as
/// decode_partials.
[[nodiscard]] RangePayload decode_range_payload(const std::string& payload);

}  // namespace ivt::dist
