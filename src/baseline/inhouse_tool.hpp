// In-house tool baseline (paper Sec. 5, "Comparison").
//
// Models the OEM's CARMEN/Wireshark-class monitoring tool: a sequential,
// single-machine analyzer that must *ingest* a trace before signals can be
// inspected. Ingest loops over every record once and interprets every
// documented signal it carries — hence its cost scales with total trace
// rows and is *independent of how many signals the analyst wants*
// ("extraction time does not change with the number of extracted signals
// as extraction is done within one loop").
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataflow/table.hpp"
#include "signaldb/catalog.hpp"
#include "tracefile/trace.hpp"

namespace ivt::baseline {

/// One decoded instance held in the tool's signal store.
struct StoredInstance {
  std::int64_t t_ns = 0;
  double value = 0.0;
  std::int32_t label_index = -1;  ///< value-table index, -1 = numeric
};

struct IngestStats {
  std::size_t records_scanned = 0;
  std::size_t records_unknown = 0;   ///< no catalog entry for (bus, m_id)
  std::size_t instances_decoded = 0;
};

class InHouseTool {
 public:
  /// The catalog must outlive the tool.
  explicit InHouseTool(const signaldb::Catalog& catalog);

  /// Sequentially scan a trace, decoding *all* documented signals of every
  /// record into the signal store (the tool's ingest phase).
  IngestStats ingest(const tracefile::Trace& trace);

  /// Same scan over the tabular K_b form (used for like-for-like input in
  /// the Table 6 benchmark).
  IngestStats ingest_table(const dataflow::Table& kb);

  /// Post-ingest lookup: the decoded sequence of one signal (nullptr when
  /// the signal never occurred). This is what "extracting" a signal means
  /// once ingest has paid the full cost.
  [[nodiscard]] const std::vector<StoredInstance>* find(
      const std::string& signal_name) const;

  [[nodiscard]] std::size_t num_stored_signals() const {
    return store_.size();
  }
  void clear();

 private:
  void decode_record(std::int64_t t_ns, const std::string& bus,
                     std::int64_t message_id,
                     std::span<const std::uint8_t> payload,
                     IngestStats& stats);

  const signaldb::Catalog& catalog_;
  /// (bus \x1F m_id) -> message spec, precomputed once.
  std::unordered_map<std::string, const signaldb::MessageSpec*> index_;
  std::unordered_map<std::string, std::vector<StoredInstance>> store_;
};

}  // namespace ivt::baseline
