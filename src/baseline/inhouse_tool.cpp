#include "baseline/inhouse_tool.hpp"

namespace ivt::baseline {

namespace {

std::string message_key(const std::string& bus, std::int64_t message_id) {
  return bus + '\x1F' + std::to_string(message_id);
}

}  // namespace

InHouseTool::InHouseTool(const signaldb::Catalog& catalog)
    : catalog_(catalog) {
  for (const signaldb::MessageSpec& m : catalog_.messages()) {
    index_.emplace(message_key(m.bus, m.message_id), &m);
  }
}

void InHouseTool::decode_record(std::int64_t t_ns, const std::string& bus,
                                std::int64_t message_id,
                                std::span<const std::uint8_t> payload,
                                IngestStats& stats) {
  ++stats.records_scanned;
  const auto it = index_.find(message_key(bus, message_id));
  if (it == index_.end()) {
    ++stats.records_unknown;
    return;
  }
  for (const signaldb::SignalSpec& spec : it->second->signals) {
    const signaldb::DecodedValue decoded =
        signaldb::decode_signal(payload, spec);
    if (!decoded.present) continue;
    StoredInstance instance;
    instance.t_ns = t_ns;
    instance.value = decoded.physical;
    if (decoded.label.has_value()) {
      instance.label_index = -1;
      for (std::size_t i = 0; i < spec.value_table.size(); ++i) {
        if (spec.value_table[i].label == *decoded.label) {
          instance.label_index = static_cast<std::int32_t>(i);
          break;
        }
      }
    }
    store_[spec.name].push_back(instance);
    ++stats.instances_decoded;
  }
}

IngestStats InHouseTool::ingest(const tracefile::Trace& trace) {
  IngestStats stats;
  for (const tracefile::TraceRecord& rec : trace.records) {
    decode_record(rec.t_ns, rec.bus, rec.message_id, rec.payload, stats);
  }
  return stats;
}

IngestStats InHouseTool::ingest_table(const dataflow::Table& kb) {
  IngestStats stats;
  const std::size_t t_col = kb.schema().require("t");
  const std::size_t l_col = kb.schema().require("l");
  const std::size_t b_col = kb.schema().require("b_id");
  const std::size_t m_col = kb.schema().require("m_id");
  kb.for_each_row([&](const dataflow::RowView& row) {
    const std::string& payload = row.string_at(l_col);
    decode_record(
        row.int64_at(t_col), row.string_at(b_col), row.int64_at(m_col),
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(payload.data()),
            payload.size()),
        stats);
  });
  return stats;
}

const std::vector<StoredInstance>* InHouseTool::find(
    const std::string& signal_name) const {
  const auto it = store_.find(signal_name);
  return it != store_.end() ? &it->second : nullptr;
}

void InHouseTool::clear() { store_.clear(); }

}  // namespace ivt::baseline
