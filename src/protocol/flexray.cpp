#include "protocol/flexray.hpp"

#include "errors/error.hpp"

#include <stdexcept>

#include "protocol/bitcodec.hpp"

namespace ivt::protocol {

std::uint16_t flexray_header_crc(const FlexRayFrame& frame) {
  // 11-bit CRC, polynomial x^11 + x^9 + x^8 + x^7 + x^2 + 1 (0x385),
  // init 0x1A, over the 20-bit header field (frame id + payload length in
  // words), MSB first.
  constexpr std::uint16_t kPoly = 0x385;
  std::uint16_t crc = 0x1A;
  const std::uint32_t header =
      (static_cast<std::uint32_t>(frame.slot_id & 0x7FF) << 9) |
      (static_cast<std::uint32_t>((frame.data.size() + 1) / 2) & 0x7F) << 2;
  for (int bit = 19; bit >= 0; --bit) {
    const bool in = ((header >> bit) & 1) != 0;
    const bool top = (crc & 0x400) != 0;
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FF);
    if (in != top) crc ^= kPoly & 0x7FF;
  }
  return crc;
}

std::vector<std::uint8_t> serialize(const FlexRayFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(5 + frame.data.size());
  out.push_back(static_cast<std::uint8_t>(frame.slot_id >> 8));
  out.push_back(static_cast<std::uint8_t>(frame.slot_id));
  out.push_back(frame.cycle);
  out.push_back(frame.channel_a ? 0x01 : 0x00);
  out.push_back(static_cast<std::uint8_t>(frame.data.size()));
  out.insert(out.end(), frame.data.begin(), frame.data.end());
  return out;
}

FlexRayFrame deserialize_flexray(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 5) {
    IVT_THROW(errors::Category::Decode, "FlexRay deserialize: truncated header");
  }
  FlexRayFrame frame;
  frame.slot_id =
      static_cast<std::uint16_t>((bytes[0] << 8) | bytes[1]);
  frame.cycle = bytes[2];
  frame.channel_a = (bytes[3] & 0x01) != 0;
  const std::size_t len = bytes[4];
  if (bytes.size() < 5 + len) {
    IVT_THROW(errors::Category::Decode, "FlexRay deserialize: truncated payload");
  }
  frame.data.assign(bytes.begin() + 5, bytes.begin() + 5 + len);
  return frame;
}

std::string to_display_string(const FlexRayFrame& frame) {
  return "FR slot " + std::to_string(frame.slot_id) + " cyc " +
         std::to_string(frame.cycle) + " [" +
         std::to_string(frame.data.size()) + "] " + to_hex(frame.data);
}

}  // namespace ivt::protocol
