#include "protocol/frame.hpp"

namespace ivt::protocol {

std::string_view to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::Can:
      return "CAN";
    case Protocol::CanFd:
      return "CAN-FD";
    case Protocol::Lin:
      return "LIN";
    case Protocol::SomeIp:
      return "SOME/IP";
    case Protocol::FlexRay:
      return "FlexRay";
  }
  return "unknown";
}

std::optional<Protocol> parse_protocol(std::string_view name) {
  if (name == "CAN") return Protocol::Can;
  if (name == "CAN-FD" || name == "CANFD") return Protocol::CanFd;
  if (name == "LIN" || name == "K-LIN") return Protocol::Lin;
  if (name == "SOME/IP" || name == "SOMEIP") return Protocol::SomeIp;
  if (name == "FlexRay" || name == "FLEXRAY") return Protocol::FlexRay;
  return std::nullopt;
}

}  // namespace ivt::protocol
