#include "protocol/lin.hpp"

#include "errors/error.hpp"

#include <stdexcept>

#include "protocol/bitcodec.hpp"

namespace ivt::protocol {

std::uint8_t lin_protected_id(std::uint8_t id) {
  if (id > 0x3F) {
    IVT_THROW(errors::Category::Spec, "LIN id out of range: " + std::to_string(id));
  }
  const auto bit = [id](int i) { return (id >> i) & 1; };
  const std::uint8_t p0 =
      static_cast<std::uint8_t>(bit(0) ^ bit(1) ^ bit(2) ^ bit(4));
  const std::uint8_t p1 =
      static_cast<std::uint8_t>(~(bit(1) ^ bit(3) ^ bit(4) ^ bit(5)) & 1);
  return static_cast<std::uint8_t>(id | (p0 << 6) | (p1 << 7));
}

std::uint8_t lin_id_from_pid(std::uint8_t pid) {
  const std::uint8_t id = pid & 0x3F;
  if (lin_protected_id(id) != pid) {
    IVT_THROW(errors::Category::Decode, "LIN PID parity error");
  }
  return id;
}

std::uint8_t lin_checksum(const LinFrame& frame) {
  std::uint16_t sum = 0;
  if (frame.checksum_model == LinChecksumModel::Enhanced) {
    sum = lin_protected_id(frame.id);
  }
  for (std::uint8_t b : frame.data) {
    sum = static_cast<std::uint16_t>(sum + b);
    if (sum >= 256) sum = static_cast<std::uint16_t>(sum - 255);
  }
  return static_cast<std::uint8_t>(~sum & 0xFF);
}

std::vector<std::uint8_t> serialize(const LinFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(3 + frame.data.size());
  out.push_back(lin_protected_id(frame.id));
  out.push_back(static_cast<std::uint8_t>(
      (frame.data.size() & 0x0F) |
      (frame.checksum_model == LinChecksumModel::Enhanced ? 0x80 : 0x00)));
  out.insert(out.end(), frame.data.begin(), frame.data.end());
  out.push_back(lin_checksum(frame));
  return out;
}

LinFrame deserialize_lin(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 3) {
    IVT_THROW(errors::Category::Decode, "LIN deserialize: truncated frame");
  }
  LinFrame frame;
  frame.id = lin_id_from_pid(bytes[0]);
  frame.checksum_model = (bytes[1] & 0x80) != 0 ? LinChecksumModel::Enhanced
                                                : LinChecksumModel::Classic;
  const std::size_t len = bytes[1] & 0x0F;
  if (len == 0 || len > 8 || bytes.size() < 2 + len + 1) {
    IVT_THROW(errors::Category::Decode, "LIN deserialize: bad length");
  }
  frame.data.assign(bytes.begin() + 2, bytes.begin() + 2 + len);
  const std::uint8_t checksum = bytes[2 + len];
  if (checksum != lin_checksum(frame)) {
    IVT_THROW(errors::Category::Decode, "LIN deserialize: checksum mismatch");
  }
  return frame;
}

std::string to_display_string(const LinFrame& frame) {
  char idbuf[8];
  std::snprintf(idbuf, sizeof(idbuf), "%02X", frame.id);
  return std::string("LIN ") + idbuf + " [" +
         std::to_string(frame.data.size()) + "] " + to_hex(frame.data);
}

}  // namespace ivt::protocol
