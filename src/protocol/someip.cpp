#include "protocol/someip.hpp"

#include "errors/error.hpp"

#include <stdexcept>

#include "protocol/bitcodec.hpp"

namespace ivt::protocol {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint16_t>((b[at] << 8) | b[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t at) {
  return (static_cast<std::uint32_t>(b[at]) << 24) |
         (static_cast<std::uint32_t>(b[at + 1]) << 16) |
         (static_cast<std::uint32_t>(b[at + 2]) << 8) |
         static_cast<std::uint32_t>(b[at + 3]);
}

}  // namespace

std::vector<std::uint8_t> serialize(const SomeIpMessage& message) {
  std::vector<std::uint8_t> out;
  out.reserve(kSomeIpHeaderSize + message.payload.size());
  put_u16(out, message.service_id);
  put_u16(out, message.method_id);
  put_u32(out, message.length());
  put_u16(out, message.client_id);
  put_u16(out, message.session_id);
  out.push_back(message.protocol_version);
  out.push_back(message.interface_version);
  out.push_back(static_cast<std::uint8_t>(message.message_type));
  out.push_back(static_cast<std::uint8_t>(message.return_code));
  out.insert(out.end(), message.payload.begin(), message.payload.end());
  return out;
}

SomeIpMessage deserialize_someip(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSomeIpHeaderSize) {
    IVT_THROW(errors::Category::Decode, "SOME/IP deserialize: truncated header");
  }
  SomeIpMessage m;
  m.service_id = get_u16(bytes, 0);
  m.method_id = get_u16(bytes, 2);
  const std::uint32_t length = get_u32(bytes, 4);
  m.client_id = get_u16(bytes, 8);
  m.session_id = get_u16(bytes, 10);
  m.protocol_version = bytes[12];
  m.interface_version = bytes[13];
  m.message_type = static_cast<SomeIpMessageType>(bytes[14]);
  m.return_code = static_cast<SomeIpReturnCode>(bytes[15]);
  if (length < 8 || bytes.size() < 8 + length) {
    IVT_THROW(errors::Category::Decode, "SOME/IP deserialize: bad length field");
  }
  const std::size_t payload_len = length - 8;
  m.payload.assign(bytes.begin() + kSomeIpHeaderSize,
                   bytes.begin() + kSomeIpHeaderSize + payload_len);
  return m;
}

std::string to_display_string(const SomeIpMessage& message) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "SOME/IP %04X.%04X", message.service_id,
                message.method_id);
  return std::string(buf) + " [" + std::to_string(message.payload.size()) +
         "] " + to_hex(message.payload);
}

}  // namespace ivt::protocol
