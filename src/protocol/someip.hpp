// SOME/IP messages (Scalable service-Oriented MiddlewarE over IP).
//
// The paper's Table 1 extracts signals from SOME/IP with rules "where
// values of preceding bytes define the presence of a signal type in
// succeeding bytes" — i.e. optional payload members. We model the
// standard 16-byte header plus a payload; the conditional-presence rules
// live in ivt::signaldb (PresenceCondition).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ivt::protocol {

enum class SomeIpMessageType : std::uint8_t {
  Request = 0x00,
  RequestNoReturn = 0x01,
  Notification = 0x02,
  Response = 0x80,
  Error = 0x81,
};

enum class SomeIpReturnCode : std::uint8_t {
  Ok = 0x00,
  NotOk = 0x01,
  UnknownService = 0x02,
  UnknownMethod = 0x03,
  NotReady = 0x04,
  MalformedMessage = 0x09,
};

struct SomeIpMessage {
  std::uint16_t service_id = 0;
  std::uint16_t method_id = 0;  ///< method or event id
  std::uint16_t client_id = 0;
  std::uint16_t session_id = 0;
  std::uint8_t protocol_version = 1;
  std::uint8_t interface_version = 1;
  SomeIpMessageType message_type = SomeIpMessageType::Notification;
  SomeIpReturnCode return_code = SomeIpReturnCode::Ok;
  std::vector<std::uint8_t> payload;

  /// 32-bit message id as used on the wire and as the trace's m_id.
  [[nodiscard]] std::uint32_t message_id() const {
    return (static_cast<std::uint32_t>(service_id) << 16) | method_id;
  }
  /// Length field: request id + version/type/return fields + payload.
  [[nodiscard]] std::uint32_t length() const {
    return static_cast<std::uint32_t>(8 + payload.size());
  }
};

inline constexpr std::size_t kSomeIpHeaderSize = 16;

/// Serialize header (big-endian, per spec) + payload.
std::vector<std::uint8_t> serialize(const SomeIpMessage& message);

/// Parse; throws std::invalid_argument on truncation or a length field
/// inconsistent with the buffer.
SomeIpMessage deserialize_someip(std::span<const std::uint8_t> bytes);

std::string to_display_string(const SomeIpMessage& message);

}  // namespace ivt::protocol
