// Bit-level payload codec shared by every protocol.
//
// In-vehicle signals are packed into message payloads as bit fields with a
// start bit, a bit length, a byte order and a raw->physical transform
// (DBC-style). This module implements the raw bit plumbing; the transform
// lives in ivt::signaldb.
//
// Bit numbering follows the DBC convention: bit b sits in byte b/8 at
// in-byte position b%8 (bit 0 = least significant bit of byte 0).
// - Intel (little endian): field occupies ascending bit numbers starting
//   at start_bit; start_bit addresses the field's LSB.
// - Motorola (big endian): start_bit addresses the field's MSB; the field
//   grows towards numerically *lower* in-byte positions and then into the
//   next byte (standard "motorola forward / sawtooth" layout).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ivt::protocol {

enum class ByteOrder : std::uint8_t { Intel, Motorola };

/// True when a field [start_bit, length] fits into `payload_size` bytes.
bool bit_field_fits(std::size_t payload_size, std::uint16_t start_bit,
                    std::uint16_t length, ByteOrder order);

/// Extract an unsigned raw value (length in [1,64]). Precondition: the
/// field fits (std::out_of_range otherwise).
std::uint64_t extract_bits(std::span<const std::uint8_t> payload,
                           std::uint16_t start_bit, std::uint16_t length,
                           ByteOrder order);

/// Insert `value`'s low `length` bits into the payload.
/// Precondition: the field fits (std::out_of_range otherwise).
void insert_bits(std::span<std::uint8_t> payload, std::uint16_t start_bit,
                 std::uint16_t length, ByteOrder order, std::uint64_t value);

/// Sign-extend a `length`-bit raw value to int64 (two's complement).
std::int64_t sign_extend(std::uint64_t raw, std::uint16_t length);

/// Reinterpret a 32-bit raw value as IEEE-754 float.
float raw_to_float32(std::uint32_t raw);
std::uint32_t float32_to_raw(float value);

/// Reinterpret a 64-bit raw value as IEEE-754 double.
double raw_to_float64(std::uint64_t raw);
std::uint64_t float64_to_raw(double value);

/// Hex rendering of a payload, e.g. "5A 01 FF".
std::string to_hex(std::span<const std::uint8_t> payload);

/// Parse "5A 01 FF" / "5a01ff" back into bytes; throws std::invalid_argument
/// on malformed input.
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace ivt::protocol
