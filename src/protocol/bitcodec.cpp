#include "protocol/bitcodec.hpp"

#include "errors/error.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ivt::protocol {

namespace {

/// Successor of bit position `bit` in Motorola layout: one position to the
/// "right" within the byte (towards LSB), wrapping to the MSB of the next
/// byte.
std::uint16_t motorola_next(std::uint16_t bit) {
  if (bit % 8 == 0) return static_cast<std::uint16_t>(bit + 15);
  return static_cast<std::uint16_t>(bit - 1);
}

void check_fits(std::size_t payload_size, std::uint16_t start_bit,
                std::uint16_t length, ByteOrder order) {
  if (!bit_field_fits(payload_size, start_bit, length, order)) {
    IVT_THROW(errors::Category::Decode, 
        "bit field [start=" + std::to_string(start_bit) +
        ", len=" + std::to_string(length) + "] does not fit in " +
        std::to_string(payload_size) + "-byte payload");
  }
}

}  // namespace

bool bit_field_fits(std::size_t payload_size, std::uint16_t start_bit,
                    std::uint16_t length, ByteOrder order) {
  if (length == 0 || length > 64) return false;
  const std::size_t total_bits = payload_size * 8;
  if (order == ByteOrder::Intel) {
    return static_cast<std::size_t>(start_bit) + length <= total_bits;
  }
  // Motorola: walk the layout.
  std::uint16_t bit = start_bit;
  for (std::uint16_t i = 0; i < length; ++i) {
    if (bit >= total_bits) return false;
    if (i + 1 < length) bit = motorola_next(bit);
  }
  return true;
}

std::uint64_t extract_bits(std::span<const std::uint8_t> payload,
                           std::uint16_t start_bit, std::uint16_t length,
                           ByteOrder order) {
  check_fits(payload.size(), start_bit, length, order);
  std::uint64_t value = 0;
  if (order == ByteOrder::Intel) {
    for (std::uint16_t i = 0; i < length; ++i) {
      const std::uint16_t bit = static_cast<std::uint16_t>(start_bit + i);
      const std::uint8_t b =
          (payload[bit / 8] >> (bit % 8)) & std::uint8_t{1};
      value |= static_cast<std::uint64_t>(b) << i;
    }
    return value;
  }
  // Motorola: first visited bit is the MSB of the field.
  std::uint16_t bit = start_bit;
  for (std::uint16_t i = 0; i < length; ++i) {
    const std::uint8_t b = (payload[bit / 8] >> (bit % 8)) & std::uint8_t{1};
    value = (value << 1) | b;
    bit = motorola_next(bit);
  }
  return value;
}

void insert_bits(std::span<std::uint8_t> payload, std::uint16_t start_bit,
                 std::uint16_t length, ByteOrder order, std::uint64_t value) {
  check_fits(payload.size(), start_bit, length, order);
  if (order == ByteOrder::Intel) {
    for (std::uint16_t i = 0; i < length; ++i) {
      const std::uint16_t bit = static_cast<std::uint16_t>(start_bit + i);
      const std::uint8_t mask = static_cast<std::uint8_t>(1U << (bit % 8));
      if ((value >> i) & 1ULL) {
        payload[bit / 8] |= mask;
      } else {
        payload[bit / 8] &= static_cast<std::uint8_t>(~mask);
      }
    }
    return;
  }
  std::uint16_t bit = start_bit;
  for (std::uint16_t i = 0; i < length; ++i) {
    const std::uint8_t mask = static_cast<std::uint8_t>(1U << (bit % 8));
    const std::uint64_t bit_value = (value >> (length - 1 - i)) & 1ULL;
    if (bit_value != 0) {
      payload[bit / 8] |= mask;
    } else {
      payload[bit / 8] &= static_cast<std::uint8_t>(~mask);
    }
    bit = motorola_next(bit);
  }
}

std::int64_t sign_extend(std::uint64_t raw, std::uint16_t length) {
  if (length == 0 || length >= 64) return static_cast<std::int64_t>(raw);
  const std::uint64_t sign_bit = 1ULL << (length - 1);
  if (raw & sign_bit) {
    raw |= ~((1ULL << length) - 1);
  }
  return static_cast<std::int64_t>(raw);
}

float raw_to_float32(std::uint32_t raw) { return std::bit_cast<float>(raw); }
std::uint32_t float32_to_raw(float value) {
  return std::bit_cast<std::uint32_t>(value);
}
double raw_to_float64(std::uint64_t raw) {
  return std::bit_cast<double>(raw);
}
std::uint64_t float64_to_raw(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

std::string to_hex(std::span<const std::uint8_t> payload) {
  static constexpr char kDigits[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(payload.size() * 3);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (i > 0) out += ' ';
    out += kDigits[payload[i] >> 4];
    out += kDigits[payload[i] & 0x0F];
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<std::uint8_t> out;
  int hi = -1;
  for (char c : hex) {
    if (c == ' ' || c == '\t') {
      if (hi >= 0) {
        IVT_THROW(errors::Category::Format, "from_hex: dangling nibble before space");
      }
      continue;
    }
    const int v = nibble(c);
    if (v < 0) {
      IVT_THROW(errors::Category::Format, std::string("from_hex: bad character '") +
                                  c + "'");
    }
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  if (hi >= 0) IVT_THROW(errors::Category::Format, "from_hex: odd nibble count");
  return out;
}

}  // namespace ivt::protocol
