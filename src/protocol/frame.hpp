// Protocol identifiers shared across the trace tooling.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace ivt::protocol {

enum class Protocol : std::uint8_t {
  Can = 0,
  CanFd = 1,
  Lin = 2,
  SomeIp = 3,
  FlexRay = 4,
};

std::string_view to_string(Protocol protocol);
std::optional<Protocol> parse_protocol(std::string_view name);

}  // namespace ivt::protocol
