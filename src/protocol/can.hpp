// Classic CAN and CAN-FD frames.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ivt::protocol {

/// A CAN 2.0 / CAN-FD data frame as recorded by a bus monitor.
struct CanFrame {
  std::uint32_t id = 0;        ///< 11-bit standard or 29-bit extended id
  bool extended_id = false;    ///< 29-bit id flag (IDE)
  bool fd = false;             ///< CAN-FD frame (EDL)
  std::vector<std::uint8_t> data;  ///< 0..8 bytes (classic) / 0..64 (FD)

  [[nodiscard]] std::size_t dlc() const;  ///< DLC field for current size

  /// Frame-level validity: id range, payload length legal for frame kind
  /// (FD payload sizes must be DLC-encodable: 0..8,12,16,20,24,32,48,64).
  [[nodiscard]] bool is_valid() const;
};

inline constexpr std::uint32_t kMaxStandardId = 0x7FF;
inline constexpr std::uint32_t kMaxExtendedId = 0x1FFFFFFF;

/// CAN-FD DLC (0..15) -> payload byte count (0..64).
std::size_t can_fd_dlc_to_length(std::uint8_t dlc);

/// Payload byte count -> smallest DLC whose length is >= `length`.
/// Throws std::invalid_argument for length > 64.
std::uint8_t can_fd_length_to_dlc(std::size_t length);

/// CRC-15 over id/dlc/data — the polynomial used on the wire (x^15 + x^14 +
/// x^10 + x^8 + x^7 + x^4 + x^3 + 1). Monitors use it to flag corrupted
/// frames; the fault injector uses it to create them.
std::uint16_t can_crc15(const CanFrame& frame);

/// Wire-ish serialization used by the trace format: [flags][id][len][data].
std::vector<std::uint8_t> serialize(const CanFrame& frame);
CanFrame deserialize_can(std::span<const std::uint8_t> bytes);

std::string to_display_string(const CanFrame& frame);

}  // namespace ivt::protocol
