// LIN 2.x frames (the paper's "K-LIN" channel).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ivt::protocol {

enum class LinChecksumModel : std::uint8_t {
  Classic,   ///< over data bytes only (LIN 1.x and diagnostic frames)
  Enhanced,  ///< over PID + data bytes (LIN 2.x)
};

/// A LIN frame as observed on the bus.
struct LinFrame {
  std::uint8_t id = 0;  ///< 6-bit frame identifier (0..63)
  std::vector<std::uint8_t> data;  ///< 1..8 bytes
  LinChecksumModel checksum_model = LinChecksumModel::Enhanced;

  [[nodiscard]] bool is_valid() const {
    return id <= 0x3F && !data.empty() && data.size() <= 8;
  }
};

/// Protected identifier: id plus the two parity bits P0/P1 (LIN 2.x spec).
std::uint8_t lin_protected_id(std::uint8_t id);

/// Recover the 6-bit id from a PID; throws std::invalid_argument when the
/// parity bits are inconsistent.
std::uint8_t lin_id_from_pid(std::uint8_t pid);

/// Carry-wrapping inverted-sum-8 checksum per the LIN spec.
std::uint8_t lin_checksum(const LinFrame& frame);

std::vector<std::uint8_t> serialize(const LinFrame& frame);
LinFrame deserialize_lin(std::span<const std::uint8_t> bytes);

std::string to_display_string(const LinFrame& frame);

}  // namespace ivt::protocol
