#include "protocol/can.hpp"

#include "errors/error.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "protocol/bitcodec.hpp"

namespace ivt::protocol {

namespace {

constexpr std::array<std::size_t, 16> kFdDlcTable = {
    0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64};

}  // namespace

std::size_t CanFrame::dlc() const {
  if (!fd) return data.size();
  return can_fd_length_to_dlc(data.size());
}

bool CanFrame::is_valid() const {
  if (extended_id ? id > kMaxExtendedId : id > kMaxStandardId) return false;
  if (!fd) return data.size() <= 8;
  if (data.size() > 64) return false;
  return std::find(kFdDlcTable.begin(), kFdDlcTable.end(), data.size()) !=
         kFdDlcTable.end();
}

std::size_t can_fd_dlc_to_length(std::uint8_t dlc) {
  if (dlc >= kFdDlcTable.size()) {
    IVT_THROW(errors::Category::Decode, "CAN-FD DLC out of range: " +
                                std::to_string(dlc));
  }
  return kFdDlcTable[dlc];
}

std::uint8_t can_fd_length_to_dlc(std::size_t length) {
  for (std::size_t dlc = 0; dlc < kFdDlcTable.size(); ++dlc) {
    if (kFdDlcTable[dlc] >= length) return static_cast<std::uint8_t>(dlc);
  }
  IVT_THROW(errors::Category::Spec, "CAN-FD payload too long: " +
                              std::to_string(length));
}

std::uint16_t can_crc15(const CanFrame& frame) {
  // CRC-15-CAN, MSB-first bitwise over a canonical byte rendering of the
  // frame header + payload.
  constexpr std::uint16_t kPoly = 0x4599;
  std::vector<std::uint8_t> bytes;
  bytes.push_back(static_cast<std::uint8_t>(frame.id >> 24));
  bytes.push_back(static_cast<std::uint8_t>(frame.id >> 16));
  bytes.push_back(static_cast<std::uint8_t>(frame.id >> 8));
  bytes.push_back(static_cast<std::uint8_t>(frame.id));
  bytes.push_back(static_cast<std::uint8_t>(frame.data.size()));
  bytes.insert(bytes.end(), frame.data.begin(), frame.data.end());

  std::uint16_t crc = 0;
  for (std::uint8_t byte : bytes) {
    for (int bit = 7; bit >= 0; --bit) {
      const bool in = ((byte >> bit) & 1) != 0;
      const bool top = (crc & 0x4000) != 0;
      crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
      if (in != top) crc ^= kPoly & 0x7FFF;
    }
  }
  return crc;
}

std::vector<std::uint8_t> serialize(const CanFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(6 + frame.data.size());
  std::uint8_t flags = 0;
  if (frame.extended_id) flags |= 0x01;
  if (frame.fd) flags |= 0x02;
  out.push_back(flags);
  out.push_back(static_cast<std::uint8_t>(frame.id >> 24));
  out.push_back(static_cast<std::uint8_t>(frame.id >> 16));
  out.push_back(static_cast<std::uint8_t>(frame.id >> 8));
  out.push_back(static_cast<std::uint8_t>(frame.id));
  out.push_back(static_cast<std::uint8_t>(frame.data.size()));
  out.insert(out.end(), frame.data.begin(), frame.data.end());
  return out;
}

CanFrame deserialize_can(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 6) {
    IVT_THROW(errors::Category::Decode, "CAN deserialize: truncated header");
  }
  CanFrame frame;
  frame.extended_id = (bytes[0] & 0x01) != 0;
  frame.fd = (bytes[0] & 0x02) != 0;
  frame.id = (static_cast<std::uint32_t>(bytes[1]) << 24) |
             (static_cast<std::uint32_t>(bytes[2]) << 16) |
             (static_cast<std::uint32_t>(bytes[3]) << 8) |
             static_cast<std::uint32_t>(bytes[4]);
  const std::size_t len = bytes[5];
  if (bytes.size() < 6 + len) {
    IVT_THROW(errors::Category::Decode, "CAN deserialize: truncated payload");
  }
  frame.data.assign(bytes.begin() + 6, bytes.begin() + 6 + len);
  return frame;
}

std::string to_display_string(const CanFrame& frame) {
  std::string out = frame.fd ? "CANFD " : "CAN ";
  char idbuf[16];
  std::snprintf(idbuf, sizeof(idbuf), frame.extended_id ? "%08X" : "%03X",
                frame.id);
  out += idbuf;
  out += " [";
  out += std::to_string(frame.data.size());
  out += "] ";
  out += to_hex(frame.data);
  return out;
}

}  // namespace ivt::protocol
