// FlexRay static-segment frames (minimal model: slot id, cycle, payload).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ivt::protocol {

struct FlexRayFrame {
  std::uint16_t slot_id = 1;  ///< 1..2047
  std::uint8_t cycle = 0;     ///< 0..63
  bool channel_a = true;
  std::vector<std::uint8_t> data;  ///< up to 254 bytes, even length on wire

  [[nodiscard]] bool is_valid() const {
    return slot_id >= 1 && slot_id <= 2047 && cycle <= 63 &&
           data.size() <= 254;
  }
};

/// FlexRay 11-bit header CRC over sync/startup bits, frame id and payload
/// length (polynomial 0x385, init 0x1A).
std::uint16_t flexray_header_crc(const FlexRayFrame& frame);

std::vector<std::uint8_t> serialize(const FlexRayFrame& frame);
FlexRayFrame deserialize_flexray(std::span<const std::uint8_t> bytes);

std::string to_display_string(const FlexRayFrame& frame);

}  // namespace ivt::protocol
